//! Figure 2 walkthrough: merging two 64-beam "KITTI" single shots.
//!
//! The paper's Figure 2 merges two HDL-64 frames taken two seconds apart
//! (emulating two cooperating vehicles) and shows that (1) the merged
//! cloud yields more detected cars than either single shot and (2) the
//! detection score of an already-detected car increases.
//!
//! Run with `cargo run -p cooper-core --example kitti_merge --release`.

use cooper_core::report::{evaluate_pair, EvaluationConfig};
use cooper_core::CooperPipeline;
use cooper_lidar_sim::scenario::t_junction;
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training SPOD detector…");
    let detector = SpodDetector::train_default(&TrainingConfig::standard());
    let pipeline = CooperPipeline::new(detector);

    let scene = t_junction();
    println!(
        "scenario: {} ({} ground-truth cars)\n",
        scene.name,
        scene.ground_truth_cars().len()
    );

    let eval = evaluate_pair(&pipeline, &scene, 0, &EvaluationConfig::default());
    println!("{}", eval.render_matrix());

    // A terminal rendition of the figure's merged-cloud panel.
    {
        use cooper_core::viz::{render_bev, BevViewConfig};
        use cooper_core::ExchangePacket;
        use cooper_geometry::{GpsFix, RigidTransform};
        use cooper_lidar_sim::{LidarScanner, PoseEstimate};

        let scanner = LidarScanner::new(scene.kind.beam_model());
        let (ia, ib) = scene.pairs[0];
        let origin = GpsFix::new(33.2075, -97.1526, 190.0);
        let scan_a = scanner.scan(&scene.world, &scene.observers[ia], 1);
        let scan_b = scanner.scan(&scene.world, &scene.observers[ib], 2);
        let est_a = PoseEstimate::from_pose(&scene.observers[ia], &origin);
        let est_b = PoseEstimate::from_pose(&scene.observers[ib], &origin);
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b)?;
        let result = pipeline.perceive(&scan_a, &est_a, &[packet], &origin);
        let world_to_a = RigidTransform::from_pose(&scene.observers[ia]).inverse();
        let gt: Vec<_> = scene
            .ground_truth_cars()
            .iter()
            .map(|g| g.transformed(&world_to_a))
            .collect();
        println!(
            "{}",
            render_bev(
                &result.fused_cloud.downsampled(37),
                &result.detections,
                &gt,
                &BevViewConfig {
                    extent_m: 60.0,
                    columns: 110
                },
            )
        );
    }

    println!(
        "single shot t1 detects {} cars, single shot t2 detects {} cars,",
        eval.detected_a(),
        eval.detected_b()
    );
    println!("the merged cloud detects {} cars.", eval.detected_coop());

    // The paper's second observation: scores increase after merging.
    let mut raised = 0;
    for row in &eval.rows {
        let best_single = match (row.score_a, row.score_b) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        if let (Some(best_single), Some(coop)) = (best_single, row.score_coop) {
            if coop > best_single {
                raised += 1;
                println!(
                    "car {}: score {:.2} -> {:.2} (+{:.0} %)",
                    row.gt_index,
                    best_single,
                    coop,
                    (f64::from(coop) - f64::from(best_single)) / f64::from(best_single) * 100.0
                );
            }
        }
    }
    println!("{raised} cars gained detection score through cooperation.");
    Ok(())
}
