//! A four-vehicle fleet patrolling a parking lot: rolling cooperative
//! perception over time.
//!
//! Demonstrates the paper's broader CAV vision (§II-A): vehicles that
//! stay within radio range keep exchanging frames step after step, and
//! every vehicle's perception is better than its own sensor allows.
//!
//! Run with `cargo run -p cooper-core --example fleet_patrol --release`.

use cooper_core::fleet::{straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle};
use cooper_core::CooperPipeline;
use cooper_lidar_sim::{scenario, BeamModel};
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

fn main() {
    println!("training SPOD detector…");
    let pipeline = CooperPipeline::new(SpodDetector::train_default(&TrainingConfig::standard()));

    let scene = scenario::tj_scenario_4();
    // Four carts crawl through the dense lot; one carries a 64-beam unit.
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .take(4)
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.5, 6),
            beams: if i == 0 {
                BeamModel::hdl64()
            } else {
                BeamModel::vlp16()
            },
        })
        .collect();
    let sim = FleetSimulation::new(scene.world, vehicles, FleetConfig::default());

    println!("running 6 steps with 4 vehicles…\n");
    let (reports, stats) = sim.run(&pipeline, 6);
    println!("step  vehicle  single  coop  packets  KiB_rx");
    for report in &reports {
        for v in &report.per_vehicle {
            println!(
                "{:>4}  {:>7}  {:>6}  {:>4}  {:>7}  {:>6.0}",
                report.step,
                v.vehicle_id,
                v.single_detections,
                v.cooperative_detections,
                v.packets_received,
                v.bytes_received as f64 / 1024.0
            );
        }
    }
    println!();
    if let Some(((a, b), steps)) = stats.longest_connection() {
        println!("longest connection: vehicles {a} and {b}, {steps} steps");
    }
    println!(
        "total exchange volume: {:.1} MiB over the run",
        stats.total_bytes as f64 / (1024.0 * 1024.0)
    );

    let gains: Vec<i64> = reports
        .iter()
        .flat_map(|r| r.per_vehicle.iter())
        .map(|v| v.cooperative_detections as i64 - v.single_detections as i64)
        .collect();
    let positive = gains.iter().filter(|&&g| g > 0).count();
    println!(
        "cooperation improved detection in {positive}/{} vehicle-steps",
        gains.len()
    );
}
