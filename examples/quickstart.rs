//! Quickstart: train SPOD, exchange one frame between two simulated
//! vehicles, and compare single-shot against cooperative perception.
//!
//! Run with `cargo run -p cooper-core --example quickstart --release`.

use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_geometry::GpsFix;
use cooper_lidar_sim::{scenario, GpsImuModel, LidarScanner};
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 0. Turn on telemetry: every pipeline stage below records spans
    //    and counters into the global registry, printed at the end.
    cooper_telemetry::enable();

    // 1. Train the SPOD detector on synthetic labelled scenes. The
    //    `fast` config takes a couple of seconds; the experiment harness
    //    uses `standard`.
    println!("training SPOD detector…");
    let detector = SpodDetector::train_default(&TrainingConfig::fast());
    let pipeline = CooperPipeline::new(detector);
    cooper_telemetry::reset(); // drop spans recorded during training

    // 2. Pick a scenario: a parking lot scanned by two 16-beam vehicles.
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (receiver_idx, transmitter_idx) = scene.pairs[0];

    // 3. Each vehicle scans and measures its own pose.
    let origin = GpsFix::new(33.2075, -97.1526, 190.0);
    let sensors = GpsImuModel::realistic();
    let mut rng = StdRng::seed_from_u64(7);
    let local_scan = scanner.scan(&scene.world, &scene.observers[receiver_idx], 1);
    let local_pose = sensors.measure(&scene.observers[receiver_idx], &origin, &mut rng);
    let remote_scan = scanner.scan(&scene.world, &scene.observers[transmitter_idx], 2);
    let remote_pose = sensors.measure(&scene.observers[transmitter_idx], &origin, &mut rng);

    // 4. Single-shot baseline.
    let single = pipeline.perceive_single(&local_scan);
    println!("single shot: {} cars detected", single.len());

    // 5. The transmitter builds an exchange packet (cloud + GPS + IMU)…
    let packet = ExchangePacket::build(transmitter_idx as u32, 0, &remote_scan, remote_pose)?;
    println!(
        "exchange packet: {} points, {} bytes on the wire",
        remote_scan.len(),
        packet.wire_size()
    );

    // 6. …and the receiver fuses and re-detects.
    let result = pipeline.perceive(&local_scan, &local_pose, &[packet], &origin);
    println!(
        "cooperative: {} cars detected on {} fused points",
        result.detections.len(),
        result.fused_cloud.len()
    );
    for d in &result.detections {
        println!("  {d}");
    }

    // 7. Where did the time go? The telemetry snapshot breaks the run
    //    down per stage (see the Observability section of README.md).
    println!("\n{}", cooper_telemetry::snapshot().render_table());
    Ok(())
}
