//! Figure 5 walkthrough: cooperative perception on sparse 16-beam
//! "T&J" data in a parking lot.
//!
//! The key observation the paper makes on this dataset: the merged
//! cloud reveals cars that were detected in *neither* single shot — the
//! failure case that object-level fusion can never fix, because neither
//! vehicle has a detection result to share.
//!
//! Run with `cargo run -p cooper-core --example tj_parking --release`.

use cooper_core::report::{evaluate_pair, EvaluationConfig};
use cooper_core::{CooperDifficulty, CooperPipeline};
use cooper_lidar_sim::scenario::tj_scenarios;
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

fn main() {
    println!("training SPOD detector…");
    let detector = SpodDetector::train_default(&TrainingConfig::standard());
    let pipeline = CooperPipeline::new(detector);
    let config = EvaluationConfig::default();

    let mut newly_discovered_total = 0;
    for scene in tj_scenarios() {
        println!("──────────────────────────────────────────");
        for pair_index in 0..scene.pairs.len() {
            let eval = evaluate_pair(&pipeline, &scene, pair_index, &config);
            println!("{}", eval.render_matrix());
            // "It is worth noting that there are three unmarked vehicles
            // in Fig. 5c" — cars detected cooperatively that no single
            // shot found.
            let discovered: Vec<usize> = eval
                .rows
                .iter()
                .filter(|r| {
                    r.score_coop.is_some()
                        && CooperDifficulty::classify(r.score_a, r.score_b)
                            == CooperDifficulty::Hard
                })
                .map(|r| r.gt_index)
                .collect();
            if !discovered.is_empty() {
                println!(
                    "newly discovered by cooperation (detected by neither single shot): cars {discovered:?}\n"
                );
                newly_discovered_total += discovered.len();
            }
        }
    }
    println!("──────────────────────────────────────────");
    println!("total cars discovered only through raw-data cooperation: {newly_discovered_total}");
}
