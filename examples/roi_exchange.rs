//! Demand-driven ROI exchange over a simulated DSRC channel.
//!
//! Shows the full networking path of §IV-G: extract a region of
//! interest from the transmitter's scan, subtract known static
//! background, wrap it in an exchange packet, fragment it to MTU size,
//! push it through a lossy DSRC channel, reassemble, and fuse — and,
//! when a burst eats the tail of the transfer, salvage the delivered
//! prefix with `salvage_prefix` + `ExchangePacket::from_partial_bytes`
//! instead of discarding the whole scan.
//!
//! Run with `cargo run -p cooper-v2x --example roi_exchange --release`.

use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_geometry::GpsFix;
use cooper_lidar_sim::{scenario, LidarScanner, PoseEstimate};
use cooper_pointcloud::roi::{extract_roi, RoiCategory, StaticMap};
use cooper_pointcloud::VoxelGridConfig;
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;
use cooper_v2x::{fragment, reassemble, salvage_prefix, DsrcChannel, DsrcConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training SPOD detector…");
    let pipeline = CooperPipeline::new(SpodDetector::train_default(&TrainingConfig::fast()));

    let scene = scenario::tj_scenario_2();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let origin = GpsFix::new(33.2075, -97.1526, 190.0);

    // The transmitter has been parked here a while: it already mapped
    // the static background over several scans.
    let mut static_map = StaticMap::new(VoxelGridConfig::voxelnet_car(), 3);
    for seed in 0..4 {
        static_map.observe(&scanner.scan(&scene.world, &scene.observers[tx], 100 + seed));
    }

    let local_scan = scanner.scan(&scene.world, &scene.observers[rx], 1);
    let remote_scan = scanner.scan(&scene.world, &scene.observers[tx], 2);
    println!("raw transmitter scan: {} points", remote_scan.len());

    // ROI extraction + background subtraction shrink the payload.
    let roi = extract_roi(&remote_scan, RoiCategory::FrontFov120);
    println!("after 120° ROI: {} points", roi.len());
    let dynamic = static_map.subtract_background(&roi);
    println!("after background subtraction: {} points", dynamic.len());

    // Build, serialize and fragment the packet.
    let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin);
    let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin);
    let packet = ExchangePacket::build(tx as u32, 0, &dynamic, est_tx)?;
    let wire = packet.to_bytes();
    let channel = DsrcChannel::new(DsrcConfig::default());
    let fragments = fragment(1, &wire, channel.config().mtu);
    println!(
        "packet: {} bytes -> {} DSRC fragments, {:.1} ms air time",
        wire.len(),
        fragments.len(),
        channel.airtime_for(wire.len()) * 1e3
    );

    // Receive side: reassemble, decode, fuse, detect.
    let received = reassemble(&fragments)?;
    let packet = ExchangePacket::from_bytes(&received)?;
    let result = pipeline.perceive(&local_scan, &est_rx, &[packet], &origin);
    let single = pipeline.perceive_single(&local_scan);
    println!(
        "detections: {} single-shot -> {} cooperative",
        single.len(),
        result.detections.len()
    );

    // Lossy variant: a burst eats the last 40% of the frames and the
    // delivery deadline expires before ARQ can fill the gap. The
    // contiguous prefix still decodes to a usable partial cloud.
    // (Fragment at a tight 100-byte MTU so the burst has frames to eat.)
    let fragments = fragment(2, &wire, 100);
    let survivors = &fragments[..fragments.len() - fragments.len() * 2 / 5];
    let salvaged = salvage_prefix(survivors)?;
    let (partial, delivered_fraction) = ExchangePacket::from_partial_bytes(&salvaged.bytes)?;
    let degraded = pipeline.perceive(&local_scan, &est_rx, &[partial], &origin);
    println!(
        "burst loss: {}/{} fragments delivered, {:.0}% of points salvaged, {} detections",
        salvaged.fragments_used,
        fragments.len(),
        delivered_fraction * 100.0,
        degraded.detections.len()
    );

    // Demand-driven variant (§IV-G): the receiver names only its
    // blocked wedges and cooperators answer with exactly that content.
    let requests = cooper_core::requests_from_blind_zones(
        rx as u32,
        &local_scan,
        est_rx,
        30.0,
        5f64.to_radians(),
        60.0,
        1.9,
    );
    println!("\nblind zones found: {}", requests.len());
    let mut demand_bytes = 0usize;
    let mut demand_packets = Vec::new();
    for request in &requests {
        let wedge = cooper_core::respond_to_roi_request(&remote_scan, &est_tx, request, &origin);
        let p = ExchangePacket::build(tx as u32, 1, &wedge, est_tx)?;
        demand_bytes += p.wire_size();
        demand_packets.push(p);
    }
    let demand = pipeline.perceive(&local_scan, &est_rx, &demand_packets, &origin);
    println!(
        "demand-driven exchange: {} bytes across {} wedges, {} detections",
        demand_bytes,
        demand_packets.len(),
        demand.detections.len()
    );
    Ok(())
}
