//! The `cooper` binary — see [`cooper_cli`] for the implementation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cooper_cli::parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = cooper_cli::run(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(if e.usage { 2 } else { 1 });
    }
}
