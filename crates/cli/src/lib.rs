//! Implementation of the `cooper` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell around [`run`]; all
//! parsing and dispatch lives here so it is unit-testable. Commands:
//!
//! ```text
//! cooper train     --out weights.bin [--scenes N] [--epochs N] [--seed N]
//! cooper scan      --scenario NAME --observer N --out scan.ply [--beams vlp16|hdl32|hdl64]
//! cooper detect    --input cloud.ply|cloud.xyz [--weights weights.bin] [--threshold T] [--bev]
//! cooper evaluate  --scenario NAME [--pair N] [--weights weights.bin]
//! cooper simulate  --scenario NAME [--seconds N] [--seed N] [--threads N] [--weights weights.bin]
//! cooper profile   --scenario NAME [--vehicles N] [--steps N] [--trace-out trace.json]
//! cooper convert   --input a.xyz --out b.ply
//! cooper scenarios
//! ```
//!
//! Every command accepts `--telemetry`, which enables the global
//! [`cooper_telemetry`] registry for the run and prints the snapshot
//! table (spans, counters, gauges, value histograms) afterwards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use cooper_core::channel::{ChannelModel, PerfectChannel};
use cooper_core::fleet::TransportDropReason;
use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle, TrustGuardConfig,
};
use cooper_core::report::{evaluate_pair, EvaluationConfig};
use cooper_core::tracking::TrackerConfig;
use cooper_core::viz::{render_bev, BevViewConfig};
use cooper_core::{AlignmentGuardConfig, CooperPipeline, ExchangePacket, GovernorConfig};
use cooper_geometry::{GpsFix, Pose, Vec3};
use cooper_lidar_sim::scenario::{self, Scenario};
use cooper_lidar_sim::{BeamModel, FaultPlan, LidarScanner, PoseEstimate};
use cooper_pointcloud::io::{read_pcd, read_ply, read_xyz, write_pcd, write_ply, write_xyz};
use cooper_pointcloud::roi::RoiCategory;
use cooper_pointcloud::PointCloud;
use cooper_spod::train::{train, TrainingConfig};
use cooper_spod::{DetectOptions, DetectScratch, FeatureFusionMode, SpodConfig, SpodDetector};
use cooper_v2x::{
    ArqConfig, BandwidthGovernor, DsrcChannel, DsrcConfig, ExchangeScheduler, GilbertElliott,
    LossModel, SharedMedium,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A CLI failure: the message shown to the user (exit code 1 or 2).
#[derive(Debug, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// `true` for usage errors (exit 2), `false` for runtime failures
    /// (exit 1).
    pub usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: true,
        }
    }
    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: false,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed `--flag value` options plus positional arguments.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional).
    pub command: String,
    /// `--flag value` pairs; bare flags map to `"true"`.
    pub options: HashMap<String, String>,
}

/// Bare flags (no value).
const BARE_FLAGS: &[&str] = &[
    "--align-guard",
    "--bev",
    "--delta-encode",
    "--features",
    "--help",
    "--incremental",
    "--telemetry",
    "--tracker",
    "--trust-guard",
];

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a usage error for missing command, unknown bare-flag usage or
/// a flag without a value.
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, CliError> {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter().peekable();
    match it.next() {
        Some(cmd) if !cmd.starts_with("--") => parsed.command = cmd.clone(),
        Some(flag) if flag == "--help" => {
            parsed.command = "help".into();
            return Ok(parsed);
        }
        _ => return Err(CliError::usage(usage())),
    }
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            return Err(CliError::usage(format!(
                "unexpected positional argument {arg:?}"
            )));
        }
        if BARE_FLAGS.contains(&arg.as_str()) {
            parsed.options.insert(arg.clone(), "true".into());
            continue;
        }
        match it.next() {
            Some(value) => {
                parsed.options.insert(arg.clone(), value.clone());
            }
            None => return Err(CliError::usage(format!("flag {arg} requires a value"))),
        }
    }
    Ok(parsed)
}

/// The usage text.
pub fn usage() -> String {
    "cooper — cooperative perception for connected autonomous vehicles

USAGE:
  cooper train     --out weights.bin [--scenes N] [--epochs N] [--seed N]
  cooper scan      --scenario NAME --observer N --out scan.ply [--beams vlp16|hdl32|hdl64] [--seed N]
  cooper detect    --input cloud.ply|cloud.xyz [--weights weights.bin] [--threshold T] [--bev]
  cooper evaluate  --scenario NAME [--pair N] [--weights weights.bin]
  cooper simulate  --scenario NAME [--seconds N] [--seed N] [--threads N] [--weights weights.bin]
                   [--channel perfect|iid|gilbert-elliott] [--loss P] [--arq-retries N]
                   [--roi full|front120|forward] [--delta-encode] [--keyframe-every N]
                   [--features] [--fusion max|adaptive]
                   [--fault-plan SPEC] [--align-guard] [--icp-iters N]
                   [--corruption P] [--trust-guard]
                   [--tracker] [--incremental]
  cooper profile   --scenario NAME [--vehicles N] [--steps N] [--threads N] [--seed N]
                   [--trace-out trace.json]
  cooper convert   --input a.xyz|a.ply|a.pcd --out b.xyz|b.ply|b.pcd
  cooper scenarios

Any command accepts --telemetry to print a span/metric snapshot table
after the run. `simulate --threads N` sets the worker-pool size for the
parallel fleet phases; its stdout is bit-identical at every N.
`simulate --channel` picks the fleet's transport model: perfect
(default, every in-range packet arrives), iid (independent per-frame
loss with probability --loss) or gilbert-elliott (two-state burst loss
with long-run rate --loss). --arq-retries N (with a lossy channel)
retransmits lost fragments up to N rounds within each step's delivery
deadline; what misses the deadline is salvaged as a partial cloud.
--roi and/or --delta-encode run the fleet through the bandwidth
governor: per transfer it picks an ROI (capped at --roi) from the
receiver's blind sectors and degrades gracefully under the channel's
air-time budget. --delta-encode switches broadcasts to wire-format v2
(static background subtracted, delta frames against the last keyframe,
a keyframe every --keyframe-every steps, default 5). --features adds
the feature-exchange tier to the governed candidate menu: senders offer
quantized BEV feature maps (wire-format v3) next to the raw frames and
a feature-preferring governor ships those instead of points; receivers
fuse them ahead of the detection head, elementwise max by default or
confidence-weighted with --fusion adaptive.
--tracker smooths each vehicle's cooperative detections across steps
with a track-level temporal filter (nearest-neighbour association,
confirm-after-2-hits, coast-through-misses): per-vehicle confirmed and
coasting track counts join the step lines and a per-vehicle tracker
summary is printed after the run. --incremental keeps a per-vehicle
perception cache across steps and routes detection through the
incremental SPOD path, so per-step perceive cost scales with how much
the scene changed; the printed reports are bit-identical either way.
--fault-plan injects faults into the fleet's broadcasts; the spec is
comma-separated VEHICLE:KIND[:PARAMS][@FROM[..UNTIL]] entries with pose
kinds drift:SIGMA, bias:EAST:NORTH, yaw:RAD, freeze and stale:AGE, plus
adversarial sender kinds ghost:N (N fabricated car-sized clusters in
every transmitted scan), replay (retransmit the scan captured at fault
onset, stamp and all) and corrupt:RATE (flip roughly RATE of outgoing
payload bytes at the source) — e.g. \"2:drift:0.5@3..8,3:ghost:2@4\".
--align-guard turns on the receiver-side alignment guard: every
received cloud is scored on sender/receiver overlap, ICP-refined when
recoverable (at most --icp-iters iterations, default 10) and rejected
to ego-only fallback when not. --corruption P (with a lossy channel)
damages delivered frames in flight with probability P — bit flips or
mid-frame truncation the link layer reports as corrupted. --trust-guard
turns on the content-integrity and sender-trust layer: broadcasts carry
CRC-32 trailers verified at the receiver, every delivered cloud is
screened against the ego scan's observed free space and the sender's
motion history (ghost clusters, teleports, replayed stamps), and
senders that keep failing are quarantined per receiver — their
transfers are skipped until the quarantine elapses and a clean
probation earns them back. Step lines gain per-vehicle violation and
quarantine columns, and a per-vehicle trust summary follows the run.
`profile` runs a fleet (default 4 vehicles, 2 steps) with the tracing
profiler on: it prints a ranked self-time table over the SPOD sub-phases
(preprocess, voxelize, vfe, conv1, conv2, bev, rpn, nms) and the
coverage of pipeline.perceive they explain, and with --trace-out PATH
writes a Chrome trace-event JSON (open in chrome://tracing or Perfetto;
one lane per worker thread) of every span and per-transfer trace mark.
`--scene` is accepted as an alias of --scenario.

Scenario names: kitti1 kitti2 kitti3 kitti4 tj1 tj2 tj3 tj4"
        .to_string()
}

fn scenario_by_name(name: &str) -> Result<Scenario, CliError> {
    Ok(match name {
        "kitti1" => scenario::t_junction(),
        "kitti2" => scenario::stop_sign(),
        "kitti3" => scenario::left_turn(),
        "kitti4" => scenario::curve(),
        "tj1" => scenario::tj_scenario_1(),
        "tj2" => scenario::tj_scenario_2(),
        "tj3" => scenario::tj_scenario_3(),
        "tj4" => scenario::tj_scenario_4(),
        other => {
            return Err(CliError::usage(format!(
                "unknown scenario {other:?} (run `cooper scenarios`)"
            )))
        }
    })
}

fn beams_by_name(name: &str) -> Result<BeamModel, CliError> {
    Ok(match name {
        "vlp16" => BeamModel::vlp16(),
        "hdl32" => BeamModel::hdl32(),
        "hdl64" => BeamModel::hdl64(),
        other => return Err(CliError::usage(format!("unknown beam model {other:?}"))),
    })
}

fn read_cloud(path: &str) -> Result<PointCloud, CliError> {
    let file =
        File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    let reader = BufReader::new(file);
    let result = if path.ends_with(".ply") {
        read_ply(reader)
    } else if path.ends_with(".pcd") {
        read_pcd(reader)
    } else {
        read_xyz(reader)
    };
    result.map_err(|e| CliError::runtime(format!("cannot parse {path}: {e}")))
}

fn write_cloud(cloud: &PointCloud, path: &str) -> Result<(), CliError> {
    let file =
        File::create(path).map_err(|e| CliError::runtime(format!("cannot create {path}: {e}")))?;
    let writer = BufWriter::new(file);
    let result = if path.ends_with(".ply") {
        write_ply(cloud, writer)
    } else if path.ends_with(".pcd") {
        write_pcd(cloud, writer)
    } else {
        write_xyz(cloud, writer)
    };
    result.map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

fn load_or_train_detector(options: &HashMap<String, String>) -> Result<SpodDetector, CliError> {
    match options.get("--weights") {
        Some(path) if Path::new(path).exists() => {
            let bytes = std::fs::read(path)
                .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
            SpodDetector::from_bytes(&bytes)
                .map_err(|e| CliError::runtime(format!("cannot load {path}: {e}")))
        }
        Some(path) => Err(CliError::runtime(format!(
            "weight file {path} does not exist"
        ))),
        None => {
            eprintln!("no --weights given; training a detector (fast config)…");
            Ok(SpodDetector::train_default(&TrainingConfig::fast()))
        }
    }
}

fn get_parse<T: std::str::FromStr>(
    options: &HashMap<String, String>,
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match options.get(flag) {
        Some(raw) => raw
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for {flag}: {raw:?}"))),
        None => Ok(default),
    }
}

fn require<'a>(options: &'a HashMap<String, String>, flag: &str) -> Result<&'a str, CliError> {
    options
        .get(flag)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("{flag} is required")))
}

/// Everything `cooper profile` measured, returned as data so callers
/// (and the profile smoke test) can assert on it without capturing
/// stdout.
#[derive(Debug)]
pub struct ProfileReport {
    /// Vehicles in the profiled fleet.
    pub vehicles: usize,
    /// Simulation steps profiled.
    pub steps: usize,
    /// Percentage of summed `pipeline.perceive` span time attributed to
    /// the named SPOD sub-phases' self time.
    pub coverage_pct: f64,
    /// Ranked self-time table (stage, count, self_ms, total_ms, share).
    pub table: String,
    /// Chrome trace-event JSON for the whole run (spans as duration
    /// slices on per-thread lanes, per-transfer marks as instants).
    pub trace_json: String,
    /// Number of distinct thread lanes in the trace.
    pub lane_count: usize,
}

/// Runs the perceive-phase profiler: a fleet simulation over `scene_name`
/// with telemetry and tracing enabled, returning the ranked self-time
/// table, the SPOD sub-phase coverage of `pipeline.perceive`, and the
/// Chrome trace.
///
/// Owns the global telemetry registry for the duration of the call
/// (resets it before and after), so callers must not run it concurrently
/// with other registry users.
///
/// # Errors
///
/// Returns a usage error for a zero `vehicle_count`/`steps` or an
/// unknown scenario.
pub fn run_profile(
    scene_name: &str,
    vehicle_count: usize,
    steps: usize,
    threads: Option<usize>,
    seed: u64,
) -> Result<ProfileReport, CliError> {
    if vehicle_count == 0 {
        return Err(CliError::usage("--vehicles must be at least 1"));
    }
    if steps == 0 {
        return Err(CliError::usage("--steps must be at least 1"));
    }
    let scene = scenario_by_name(scene_name)?;
    // Fleets larger than the scenario's observer set reuse the observer
    // poses shifted sideways ring by ring, so every vehicle still scans
    // meaningful geometry.
    let vehicles: Vec<FleetVehicle> = (0..vehicle_count)
        .map(|i| {
            let base = scene.observers[i % scene.observers.len()];
            let ring = (i / scene.observers.len()) as f64;
            let start = Pose::new(
                base.position + Vec3::new(3.0 * ring, 3.0 * ring, 0.0),
                base.attitude,
            );
            FleetVehicle {
                id: i as u32 + 1,
                trajectory: straight_trajectory(start, 1.0, steps),
                beams: scene.kind.beam_model(),
            }
        })
        .collect();
    // Untrained detector: the profiler measures where time goes, not
    // detection accuracy, and training would dwarf the traced run.
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let sim = FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed,
            threads,
            ..FleetConfig::default()
        },
    );
    cooper_telemetry::reset();
    cooper_telemetry::enable();
    cooper_telemetry::set_tracing(true);
    let mut channel = PerfectChannel;
    let (_reports, _stats) = sim.run_with_channel(&pipeline, steps, &mut channel);
    let snapshot = cooper_telemetry::snapshot();
    let trace = cooper_telemetry::take_trace();
    cooper_telemetry::set_tracing(false);
    cooper_telemetry::disable();
    cooper_telemetry::reset();

    let subphase_self: u64 = snapshot
        .self_times_by_name()
        .iter()
        .filter(|e| cooper_telemetry::names::SPOD_SUBPHASES.contains(&e.name.as_str()))
        .map(|e| e.self_us)
        .sum();
    // Perceive-phase CPU total: every entry into the pipeline during
    // phase 3 — cooperative `pipeline.perceive` plus the standalone
    // ego-baseline `pipeline.perceive_single` roots (the ones not
    // already nested inside a `pipeline.perceive`). Summing totals over
    // entry points counts each worker thread's time once, so the ratio
    // is meaningful at any thread count.
    let perceive_total: u64 = snapshot
        .spans
        .iter()
        .filter(|s| {
            s.name == cooper_telemetry::names::SPAN_PIPELINE_PERCEIVE
                || (s.name == cooper_telemetry::names::SPAN_PIPELINE_PERCEIVE_SINGLE
                    && !s
                        .path
                        .split('/')
                        .any(|seg| seg == cooper_telemetry::names::SPAN_PIPELINE_PERCEIVE))
        })
        .map(|s| s.total_us)
        .sum();
    let coverage_pct = if perceive_total == 0 {
        0.0
    } else {
        subphase_self as f64 / perceive_total as f64 * 100.0
    };
    Ok(ProfileReport {
        vehicles: vehicle_count,
        steps,
        coverage_pct,
        table: snapshot.render_self_time_table(),
        trace_json: trace.to_chrome_json(),
        lane_count: trace.lane_count,
    })
}

/// Executes a parsed command, printing results to stdout.
///
/// With `--telemetry`, the global [`cooper_telemetry`] registry is
/// enabled for the duration of the command and a snapshot table is
/// printed after a successful run.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on any failure.
pub fn run(parsed: &ParsedArgs) -> Result<(), CliError> {
    let telemetry = parsed.options.contains_key("--telemetry");
    if telemetry {
        cooper_telemetry::reset();
        cooper_telemetry::enable();
    }
    let result = dispatch(parsed);
    if telemetry {
        cooper_telemetry::disable();
        if result.is_ok() {
            println!("{}", cooper_telemetry::snapshot().render_table());
        }
        cooper_telemetry::reset();
    }
    result
}

fn dispatch(parsed: &ParsedArgs) -> Result<(), CliError> {
    match parsed.command.as_str() {
        "help" => {
            println!("{}", usage());
            Ok(())
        }
        "scenarios" => {
            println!("name     description");
            for (name, scene) in [
                ("kitti1", scenario::t_junction()),
                ("kitti2", scenario::stop_sign()),
                ("kitti3", scenario::left_turn()),
                ("kitti4", scenario::curve()),
                ("tj1", scenario::tj_scenario_1()),
                ("tj2", scenario::tj_scenario_2()),
                ("tj3", scenario::tj_scenario_3()),
                ("tj4", scenario::tj_scenario_4()),
            ] {
                println!(
                    "{name:8} {} — {} observers, {} pairs, {} cars",
                    scene.name,
                    scene.observers.len(),
                    scene.pairs.len(),
                    scene.ground_truth_cars().len()
                );
            }
            Ok(())
        }
        "train" => {
            let out = require(&parsed.options, "--out")?;
            let training = TrainingConfig {
                scenes: get_parse(&parsed.options, "--scenes", 120usize)?,
                epochs: get_parse(&parsed.options, "--epochs", 4usize)?,
                seed: get_parse(&parsed.options, "--seed", 42u64)?,
                ..TrainingConfig::standard()
            };
            eprintln!(
                "training on {} scenes × {} epochs…",
                training.scenes, training.epochs
            );
            let detector = train(SpodConfig::default(), &training);
            let bytes = detector.to_bytes();
            std::fs::write(out, &bytes)
                .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
            println!("wrote {} ({} bytes)", out, bytes.len());
            Ok(())
        }
        "scan" => {
            let scene = scenario_by_name(require(&parsed.options, "--scenario")?)?;
            let out = require(&parsed.options, "--out")?;
            let observer: usize = get_parse(&parsed.options, "--observer", 0)?;
            let seed: u64 = get_parse(&parsed.options, "--seed", 1)?;
            let beams = match parsed.options.get("--beams") {
                Some(name) => beams_by_name(name)?,
                None => scene.kind.beam_model(),
            };
            let pose = *scene.observers.get(observer).ok_or_else(|| {
                CliError::usage(format!(
                    "observer {observer} out of range (scenario has {})",
                    scene.observers.len()
                ))
            })?;
            let scan = LidarScanner::new(beams).scan(&scene.world, &pose, seed);
            write_cloud(&scan, out)?;
            println!("wrote {} points to {}", scan.len(), out);
            Ok(())
        }
        "detect" => {
            let cloud = read_cloud(require(&parsed.options, "--input")?)?;
            let detector = load_or_train_detector(&parsed.options)?;
            let threshold: f32 = get_parse(&parsed.options, "--threshold", 0.5)?;
            let options = DetectOptions::default().with_threshold(threshold);
            let detections = detector.detect_with(&cloud, &options, &mut DetectScratch::new());
            println!("{} detections on {} points:", detections.len(), cloud.len());
            for d in &detections {
                println!("  {d}");
            }
            if parsed.options.contains_key("--bev") {
                println!(
                    "{}",
                    render_bev(
                        &cloud.downsampled(1 + cloud.len() / 4000),
                        &detections,
                        &[],
                        &BevViewConfig::default()
                    )
                );
            }
            Ok(())
        }
        "evaluate" => {
            let scene = scenario_by_name(require(&parsed.options, "--scenario")?)?;
            let pair: usize = get_parse(&parsed.options, "--pair", 0)?;
            if pair >= scene.pairs.len() {
                return Err(CliError::usage(format!(
                    "pair {pair} out of range (scenario has {})",
                    scene.pairs.len()
                )));
            }
            let detector = load_or_train_detector(&parsed.options)?;
            let pipeline = CooperPipeline::new(detector);
            let eval = evaluate_pair(&pipeline, &scene, pair, &EvaluationConfig::default());
            println!("{}", eval.render_matrix());
            println!(
                "single A: {} cars ({:.0} %), single B: {} cars ({:.0} %), Cooper: {} cars ({:.0} %)",
                eval.detected_a(),
                eval.accuracy_a(),
                eval.detected_b(),
                eval.accuracy_b(),
                eval.detected_coop(),
                eval.accuracy_coop()
            );
            Ok(())
        }
        "simulate" => {
            let scene = scenario_by_name(require(&parsed.options, "--scenario")?)?;
            let seconds: usize = get_parse(&parsed.options, "--seconds", 3)?;
            let seed: u64 = get_parse(&parsed.options, "--seed", 1)?;
            let threads = parsed
                .options
                .get("--threads")
                .map(|raw| {
                    raw.parse::<usize>().map_err(|_| {
                        CliError::usage(format!("invalid value for --threads: {raw:?}"))
                    })
                })
                .transpose()?;
            if let Some(n) = threads {
                if n == 0 {
                    return Err(CliError::usage("--threads must be at least 1"));
                }
                cooper_exec::set_default_threads(Some(n));
            }
            // Validate the transport flags up front, before any work.
            let channel_kind = parsed
                .options
                .get("--channel")
                .map(String::as_str)
                .unwrap_or("perfect");
            let loss: f64 = get_parse(&parsed.options, "--loss", 0.1)?;
            let arq_retries: usize = get_parse(&parsed.options, "--arq-retries", 0)?;
            let fleet_loss_model = match channel_kind {
                "perfect" => None,
                "iid" => {
                    if !(0.0..1.0).contains(&loss) {
                        return Err(CliError::usage("--loss must be in [0, 1) for iid"));
                    }
                    Some(LossModel::Independent)
                }
                "gilbert-elliott" => {
                    if !(0.0..0.7).contains(&loss) {
                        return Err(CliError::usage(
                            "--loss must be in [0, 0.7) for gilbert-elliott",
                        ));
                    }
                    Some(LossModel::GilbertElliott(GilbertElliott::from_loss_rate(
                        loss,
                    )))
                }
                other => {
                    return Err(CliError::usage(format!(
                        "unknown --channel {other:?} (perfect, iid or gilbert-elliott)"
                    )))
                }
            };
            // Governor flags: any one turns the governed exchange
            // path on.
            let delta_encode = parsed.options.contains_key("--delta-encode");
            let features = parsed.options.contains_key("--features");
            let keyframe_every: u32 = get_parse(&parsed.options, "--keyframe-every", 5)?;
            if keyframe_every == 0 {
                return Err(CliError::usage("--keyframe-every must be at least 1"));
            }
            if parsed.options.contains_key("--fusion") && !features {
                return Err(CliError::usage("--fusion requires --features"));
            }
            let fusion_mode: FeatureFusionMode = match parsed.options.get("--fusion") {
                None => FeatureFusionMode::Max,
                Some(name) => name.parse().map_err(CliError::usage)?,
            };
            let roi_cap = match parsed.options.get("--roi").map(String::as_str) {
                None => None,
                Some("full") => Some(RoiCategory::FullFrame),
                Some("front120") => Some(RoiCategory::FrontFov120),
                Some("forward") => Some(RoiCategory::ForwardOneWay),
                Some(other) => {
                    return Err(CliError::usage(format!(
                        "unknown --roi {other:?} (full, front120 or forward)"
                    )))
                }
            };
            let governed = roi_cap.is_some() || delta_encode || features;
            // Robustness flags: pose-fault injection and the
            // receiver-side alignment guard.
            let fault_plan = parsed
                .options
                .get("--fault-plan")
                .map(|spec| {
                    FaultPlan::parse(spec)
                        .map_err(|e| CliError::usage(format!("invalid --fault-plan: {e}")))
                })
                .transpose()?;
            let align_guard = parsed.options.contains_key("--align-guard");
            if parsed.options.contains_key("--icp-iters") && !align_guard {
                return Err(CliError::usage("--icp-iters requires --align-guard"));
            }
            // Integrity flags: in-flight frame corruption and the
            // receiver-side trust layer (CRC trailers, consistency
            // guard, per-sender quarantine).
            let corruption: f64 = get_parse(&parsed.options, "--corruption", 0.0)?;
            if !(0.0..1.0).contains(&corruption) {
                return Err(CliError::usage("--corruption must be in [0, 1)"));
            }
            if corruption > 0.0 && fleet_loss_model.is_none() {
                return Err(CliError::usage(
                    "--corruption requires a lossy --channel (iid or gilbert-elliott)",
                ));
            }
            let trust_guard = parsed.options.contains_key("--trust-guard");
            // Temporal flags: track-level fusion and incremental
            // (change-proportional) perception.
            let tracker = parsed.options.contains_key("--tracker");
            let incremental = parsed.options.contains_key("--incremental");
            let icp_iters: usize = get_parse(
                &parsed.options,
                "--icp-iters",
                AlignmentGuardConfig::default().max_icp_iters,
            )?;
            let (rx, tx) = *scene
                .pairs
                .first()
                .ok_or_else(|| CliError::runtime("scenario has no cooperating pair"))?;
            let scanner = LidarScanner::new(scene.kind.beam_model());
            let scan_rx = scanner.scan(&scene.world, &scene.observers[rx], seed);
            let scan_tx = scanner.scan(&scene.world, &scene.observers[tx], seed + 1);

            // DSRC feasibility: exchange the pair's frames at the
            // paper's 1 Hz over a shared medium.
            let mut rng = StdRng::seed_from_u64(seed);
            let per_second: Vec<(PointCloud, PointCloud)> = (0..seconds.max(1))
                .map(|_| (scan_rx.clone(), scan_tx.clone()))
                .collect();
            let medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default()));
            let trace = ExchangeScheduler::paper_default(RoiCategory::FullFrame).simulate(
                &per_second,
                &medium,
                &mut rng,
            );

            // Cooperative perception on the same pair. The detector is
            // untrained unless --weights is given: `simulate` probes
            // latency and channel feasibility, not accuracy.
            let detector = match parsed.options.get("--weights") {
                Some(_) => load_or_train_detector(&parsed.options)?,
                None => SpodDetector::new(SpodConfig::default()),
            };
            let mut pipeline = CooperPipeline::new(detector).with_fusion_mode(fusion_mode);
            if align_guard {
                pipeline = pipeline.with_alignment_guard(
                    AlignmentGuardConfig::default().with_max_icp_iters(icp_iters),
                );
            }
            if tracker {
                pipeline = pipeline.with_tracker(TrackerConfig::default());
            }
            if incremental {
                pipeline = pipeline.with_incremental();
            }
            let origin = GpsFix::new(33.2075, -97.1526, 190.0);
            let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin);
            let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin);
            let packet = ExchangePacket::build(tx as u32, 0, &scan_tx, est_tx)
                .map_err(|e| CliError::runtime(format!("cannot build packet: {e}")))?;
            let result = pipeline.perceive(&scan_rx, &est_rx, &[packet], &origin);
            println!(
                "{}: {} s exchange, peak {:.2} Mbit/s, {} transfers dropped, feasible: {}",
                scene.name,
                per_second.len(),
                trace.peak_mbit(),
                trace.transfers_dropped,
                trace.feasible()
            );
            println!(
                "cooperative perception: {} packets fused, {} fused points, {} detections",
                result.packets_fused,
                result.fused_cloud.len(),
                result.detections.len()
            );

            // Full fleet loop over every observer. Everything printed
            // to stdout here is part of the determinism contract —
            // bit-identical at any --threads value (wall-clock timings
            // go to stderr).
            let vehicles: Vec<FleetVehicle> = scene
                .observers
                .iter()
                .enumerate()
                .map(|(i, pose)| FleetVehicle {
                    id: i as u32 + 1,
                    trajectory: straight_trajectory(*pose, 1.0, seconds.max(1)),
                    beams: scene.kind.beam_model(),
                })
                .collect();
            let sim = FleetSimulation::new(
                scene.world.clone(),
                vehicles,
                FleetConfig {
                    seed,
                    threads,
                    fault_plan,
                    trust: trust_guard.then(TrustGuardConfig::default),
                    ..FleetConfig::default()
                },
            );
            let mut channel: Box<dyn ChannelModel> = match fleet_loss_model {
                None => Box::new(PerfectChannel),
                Some(loss_model) => {
                    let config = DsrcConfig {
                        loss_probability: if channel_kind == "iid" { loss } else { 0.0 },
                        loss_model,
                        corruption_probability: corruption,
                        ..DsrcConfig::default()
                    };
                    let mut medium = SharedMedium::new(DsrcChannel::new(config)).with_seed(seed);
                    if arq_retries > 0 {
                        medium = medium.with_arq(ArqConfig {
                            max_retries: arq_retries,
                            ..ArqConfig::default()
                        });
                    }
                    Box::new(medium)
                }
            };
            let (reports, stats) = if governed {
                let mut policy = BandwidthGovernor::new(roi_cap.unwrap_or(RoiCategory::FullFrame));
                if features {
                    policy = policy.with_features();
                }
                let governor = GovernorConfig {
                    delta_encode,
                    keyframe_every,
                    features,
                    ..GovernorConfig::default()
                };
                sim.run_governed(
                    &pipeline,
                    seconds.max(1),
                    channel.as_mut(),
                    &mut policy,
                    &governor,
                )
            } else {
                sim.run_with_channel(&pipeline, seconds.max(1), channel.as_mut())
            };
            println!(
                "fleet: {} vehicles × {} steps ({} channel)",
                scene.observers.len(),
                reports.len(),
                channel_kind
            );
            for report in &reports {
                for v in &report.per_vehicle {
                    let track_suffix = if tracker {
                        format!(
                            " tracks {} ({} coasting)",
                            v.confirmed_tracks, v.coasting_tracks
                        )
                    } else {
                        String::new()
                    };
                    let trust_suffix = if trust_guard {
                        format!(
                            " violations {} quarantined {}",
                            v.trust_violations, v.quarantined_peers
                        )
                    } else {
                        String::new()
                    };
                    println!(
                        "  step {} v{}: single {} coop {} rx {} partial {} drops {} bytes {}{}{}",
                        report.step,
                        v.vehicle_id,
                        v.single_detections,
                        v.cooperative_detections,
                        v.packets_received,
                        v.packets_partial,
                        v.packets_dropped,
                        v.bytes_received,
                        track_suffix,
                        trust_suffix
                    );
                }
                for drop in &report.encode_drops {
                    println!(
                        "  step {} v{}: encode drop ({})",
                        report.step, drop.vehicle_id, drop.kind
                    );
                }
                for drop in &report.transport_drops {
                    match &drop.reason {
                        TransportDropReason::DeadlineExceeded => println!(
                            "  step {} v{}->v{}: deadline exceeded",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::PartialDelivery {
                            delivered_bytes,
                            total_bytes,
                        } => println!(
                            "  step {} v{}->v{}: partial delivery {}/{} bytes",
                            report.step, drop.from, drop.to, delivered_bytes, total_bytes
                        ),
                        TransportDropReason::SalvageFailed { kind } => println!(
                            "  step {} v{}->v{}: salvage failed ({kind})",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::BudgetExceeded => println!(
                            "  step {} v{}->v{}: skipped, air-time budget exceeded",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::AlignmentRejected { residual_mm } => println!(
                            "  step {} v{}->v{}: alignment rejected (residual {residual_mm} mm)",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::Corrupted => println!(
                            "  step {} v{}->v{}: corrupted in flight",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::IntegrityFailed => println!(
                            "  step {} v{}->v{}: integrity check failed (CRC mismatch)",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::Quarantined => println!(
                            "  step {} v{}->v{}: sender quarantined",
                            report.step, drop.from, drop.to
                        ),
                        TransportDropReason::ConsistencyRejected { ghost_points } => println!(
                            "  step {} v{}->v{}: consistency rejected ({ghost_points} ghost points)",
                            report.step, drop.from, drop.to
                        ),
                    }
                }
                eprintln!(
                    "  step {} timings: scan {} us, exchange {} us, perceive {} us",
                    report.step,
                    report.timings.scan_us,
                    report.timings.exchange_us,
                    report.timings.perceive_us
                );
            }
            println!("fleet bytes exchanged: {}", stats.total_bytes);
            if governed {
                let saved: u64 = stats.bytes_saved.values().sum();
                println!("governor bytes saved: {saved}");
                for (id, bytes) in &stats.bytes_saved {
                    println!("  v{id}: {bytes} bytes saved");
                }
            }
            if tracker {
                for (id, t) in &stats.tracks {
                    println!(
                        "  v{id} tracker: {} detections in, {} matched, {} spawned, \
                         {} promoted, {} coasted, {} dropped",
                        t.detections_in, t.matched, t.spawned, t.promoted, t.coasted, t.dropped
                    );
                }
            }
            if align_guard {
                for (id, a) in &stats.alignment {
                    let mean_before = a.residual_before_m_sum / a.evaluated.max(1) as f64;
                    let mean_after = a.residual_after_m_sum / a.evaluated.max(1) as f64;
                    println!(
                        "  v{id} alignment guard: {} evaluated, {} refined, {} rejected, \
                         mean residual {:.3} -> {:.3} m",
                        a.evaluated, a.refined, a.rejected, mean_before, mean_after
                    );
                }
            }
            if trust_guard {
                for (id, t) in &stats.trust {
                    println!(
                        "  v{id} trust: {} violations charged, {} quarantines, \
                         {} transfers blocked, {} reinstated",
                        t.violations, t.quarantines, t.blocked_transfers, t.reinstated
                    );
                }
            }
            if let Some(((a, b), steps)) = stats.longest_connection() {
                println!("longest connection: v{a}-v{b} for {steps} steps");
            }
            Ok(())
        }
        "profile" => {
            let scene_name = parsed
                .options
                .get("--scenario")
                .or_else(|| parsed.options.get("--scene"))
                .map(String::as_str)
                .ok_or_else(|| CliError::usage("--scenario (or --scene) is required"))?;
            let vehicle_count: usize = get_parse(&parsed.options, "--vehicles", 4)?;
            let steps: usize = get_parse(&parsed.options, "--steps", 2)?;
            let seed: u64 = get_parse(&parsed.options, "--seed", 1)?;
            let threads = parsed
                .options
                .get("--threads")
                .map(|raw| {
                    raw.parse::<usize>().map_err(|_| {
                        CliError::usage(format!("invalid value for --threads: {raw:?}"))
                    })
                })
                .transpose()?;
            if threads == Some(0) {
                return Err(CliError::usage("--threads must be at least 1"));
            }
            let report = run_profile(scene_name, vehicle_count, steps, threads, seed)?;
            println!(
                "profile: {} vehicles × {} steps on {}",
                report.vehicles, report.steps, scene_name
            );
            print!("{}", report.table);
            println!(
                "perceive coverage: {:.1}% of pipeline.perceive time in named SPOD sub-phases",
                report.coverage_pct
            );
            if let Some(path) = parsed.options.get("--trace-out") {
                std::fs::write(path, &report.trace_json)
                    .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
                println!(
                    "wrote Chrome trace ({} thread lanes) to {path}",
                    report.lane_count
                );
            }
            Ok(())
        }
        "convert" => {
            let cloud = read_cloud(require(&parsed.options, "--input")?)?;
            let out = require(&parsed.options, "--out")?;
            write_cloud(&cloud, out)?;
            println!("wrote {} points to {}", cloud.len(), out);
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse_args(&args(&["scan", "--scenario", "tj1", "--out", "x.ply"])).unwrap();
        assert_eq!(p.command, "scan");
        assert_eq!(p.options["--scenario"], "tj1");
        assert_eq!(p.options["--out"], "x.ply");
    }

    #[test]
    fn bare_flags_need_no_value() {
        let p = parse_args(&args(&["detect", "--input", "a.xyz", "--bev"])).unwrap();
        assert_eq!(p.options["--bev"], "true");
    }

    #[test]
    fn missing_value_is_usage_error() {
        let e = parse_args(&args(&["scan", "--scenario"])).unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--scenario"));
    }

    #[test]
    fn empty_and_help() {
        assert!(parse_args(&[]).unwrap_err().usage);
        let p = parse_args(&args(&["--help"])).unwrap();
        assert_eq!(p.command, "help");
        run(&p).unwrap();
    }

    #[test]
    fn align_guard_is_a_bare_flag() {
        let p = parse_args(&args(&["simulate", "--scenario", "tj1", "--align-guard"])).unwrap();
        assert_eq!(p.options["--align-guard"], "true");
    }

    #[test]
    fn bad_fault_plan_is_usage_error() {
        let p = parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--fault-plan",
            "bogus",
        ]))
        .unwrap();
        let e = run(&p).unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--fault-plan"));
    }

    #[test]
    fn icp_iters_requires_align_guard() {
        let p = parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--icp-iters",
            "5",
        ]))
        .unwrap();
        let e = run(&p).unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--align-guard"));
    }

    #[test]
    fn unexpected_positional_rejected() {
        let e = parse_args(&args(&["scan", "oops"])).unwrap_err();
        assert!(e.usage);
    }

    #[test]
    fn unknown_command_and_scenario() {
        let e = run(&parse_args(&args(&["frobnicate"])).unwrap()).unwrap_err();
        assert!(e.usage);
        let e2 = run(&parse_args(&args(&["scan", "--scenario", "nope", "--out", "x"])).unwrap())
            .unwrap_err();
        assert!(e2.message.contains("unknown scenario"));
    }

    #[test]
    fn scenarios_listing_runs() {
        run(&parse_args(&args(&["scenarios"])).unwrap()).unwrap();
    }

    #[test]
    fn scan_convert_round_trip() {
        let dir = std::env::temp_dir().join("cooper-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ply = dir.join("scan.ply");
        let xyz = dir.join("scan.xyz");
        run(&parse_args(&args(&[
            "scan",
            "--scenario",
            "tj1",
            "--observer",
            "0",
            "--out",
            ply.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        run(&parse_args(&args(&[
            "convert",
            "--input",
            ply.to_str().unwrap(),
            "--out",
            xyz.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let a = read_cloud(ply.to_str().unwrap()).unwrap();
        let b = read_cloud(xyz.to_str().unwrap()).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn scan_rejects_bad_observer() {
        let e = run(&parse_args(&args(&[
            "scan",
            "--scenario",
            "tj1",
            "--observer",
            "99",
            "--out",
            "/tmp/x.ply",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn detect_requires_existing_weights_when_given() {
        let e =
            run(&parse_args(&args(&["detect", "--input", "/definitely/not/here.xyz"])).unwrap())
                .unwrap_err();
        assert!(!e.usage);
    }

    #[test]
    fn profile_rejects_bad_arguments() {
        // Argument validation only — these paths never touch the
        // global registry, which `simulate_covers_core_spod_and_v2x_spans`
        // owns within this test binary.
        let e = run(&parse_args(&args(&["profile"])).unwrap()).unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--scenario"));
        let e = run(&parse_args(&args(&["profile", "--scene", "nope"])).unwrap()).unwrap_err();
        assert!(e.message.contains("unknown scenario"));
        let e =
            run(&parse_args(&args(&["profile", "--scenario", "tj1", "--vehicles", "0"])).unwrap())
                .unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--vehicles"));
        let e = run(&parse_args(&args(&["profile", "--scenario", "tj1", "--steps", "0"])).unwrap())
            .unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--steps"));
        let e =
            run(&parse_args(&args(&["profile", "--scenario", "tj1", "--threads", "0"])).unwrap())
                .unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--threads"));
    }

    #[test]
    fn simulate_covers_core_spod_and_v2x_spans() {
        // One sequential test owns the global registry: first the
        // --telemetry flag path (enables, prints, resets), then a
        // manual enable so the snapshot can be inspected.
        let p = parse_args(&args(&["simulate", "--scenario", "tj1", "--telemetry"])).unwrap();
        run(&p).unwrap();

        cooper_telemetry::reset();
        cooper_telemetry::enable();
        let p2 = parse_args(&args(&["simulate", "--scenario", "tj1"])).unwrap();
        run(&p2).unwrap();
        cooper_telemetry::disable();
        let snap = cooper_telemetry::snapshot();
        cooper_telemetry::reset();
        for prefix in ["pipeline.", "spod.", "v2x.", "packet."] {
            assert!(
                snap.spans.iter().any(|s| s.name.starts_with(prefix)),
                "no {prefix}* span in snapshot:\n{}",
                snap.render_table()
            );
        }
    }

    #[test]
    fn simulate_rejects_bad_thread_counts() {
        let zero =
            run(&parse_args(&args(&["simulate", "--scenario", "tj1", "--threads", "0"])).unwrap())
                .unwrap_err();
        assert!(zero.usage);
        assert!(zero.message.contains("--threads"));
        let junk = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--threads",
            "many",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(junk.usage);
        assert!(junk.message.contains("--threads"));
    }

    #[test]
    fn simulate_rejects_bad_channel_flags() {
        let unknown = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--channel",
            "carrier-pigeon",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(unknown.usage);
        assert!(unknown.message.contains("--channel"));
        let bad_loss = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--channel",
            "gilbert-elliott",
            "--loss",
            "0.9",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(bad_loss.usage);
        assert!(bad_loss.message.contains("--loss"));
    }

    #[test]
    fn simulate_runs_lossy_channels_with_arq() {
        for channel in ["iid", "gilbert-elliott"] {
            run(&parse_args(&args(&[
                "simulate",
                "--scenario",
                "tj1",
                "--seconds",
                "1",
                "--channel",
                channel,
                "--loss",
                "0.1",
                "--arq-retries",
                "3",
            ]))
            .unwrap())
            .unwrap();
        }
    }

    #[test]
    fn simulate_runs_governed_exchange() {
        // Perfect channel, ROI cap + delta encoding.
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "2",
            "--roi",
            "forward",
            "--delta-encode",
            "--keyframe-every",
            "2",
        ]))
        .unwrap())
        .unwrap();
        // Governed path over a lossy shared medium.
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "1",
            "--roi",
            "front120",
            "--channel",
            "iid",
            "--loss",
            "0.1",
        ]))
        .unwrap())
        .unwrap();
    }

    #[test]
    fn simulate_runs_temporal_flags() {
        // Tracker + incremental perception over the governed delta
        // exchange: the full temporal composition must run end to end.
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "2",
            "--delta-encode",
            "--tracker",
            "--incremental",
        ]))
        .unwrap())
        .unwrap();
        // Each flag also works alone.
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "1",
            "--tracker",
        ]))
        .unwrap())
        .unwrap();
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "1",
            "--incremental",
        ]))
        .unwrap())
        .unwrap();
    }

    #[test]
    fn simulate_runs_feature_exchange() {
        // Feature tier alone turns the governed path on; adaptive
        // fusion exercises the non-default receiver-side combine.
        run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--seconds",
            "2",
            "--features",
            "--fusion",
            "adaptive",
        ]))
        .unwrap())
        .unwrap();
    }

    #[test]
    fn simulate_rejects_bad_fusion_flags() {
        let orphan = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--fusion",
            "adaptive",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(orphan.usage);
        assert!(orphan.message.contains("--features"));
        let unknown = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--features",
            "--fusion",
            "median",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(unknown.usage);
        assert!(unknown.message.contains("fusion mode"));
    }

    #[test]
    fn simulate_rejects_bad_governor_flags() {
        let bad_roi = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--roi",
            "sideways",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(bad_roi.usage);
        assert!(bad_roi.message.contains("--roi"));
        let zero_cadence = run(&parse_args(&args(&[
            "simulate",
            "--scenario",
            "tj1",
            "--delta-encode",
            "--keyframe-every",
            "0",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(zero_cadence.usage);
        assert!(zero_cadence.message.contains("--keyframe-every"));
    }

    #[test]
    fn invalid_numeric_flag() {
        let e =
            run(&parse_args(&args(&["evaluate", "--scenario", "tj1", "--pair", "abc"])).unwrap())
                .unwrap_err();
        assert!(e.usage);
        assert!(e.message.contains("--pair"));
    }
}
