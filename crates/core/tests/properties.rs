//! Property-based tests for the Cooper core: packet codec and
//! alignment.

use cooper_core::{alignment_transform, ExchangePacket};
use cooper_geometry::{Attitude, GpsFix, Pose, RigidTransform, Vec3};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::{Point, PointCloud};
use proptest::prelude::*;

fn origin() -> GpsFix {
    GpsFix::new(33.2075, -97.1526, 190.0)
}

fn cloud(max: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(
        (-90.0..90.0f64, -90.0..90.0f64, -4.0..4.0f64, 0.0..1.0f32),
        0..max,
    )
    .prop_map(|pts| {
        pts.into_iter()
            .map(|(x, y, z, r)| Point::new(Vec3::new(x, y, z), r))
            .collect()
    })
}

fn pose() -> impl Strategy<Value = Pose> {
    (
        -200.0..200.0f64,
        -200.0..200.0f64,
        0.5..3.0f64,
        -3.0..3.0f64,
        -0.1..0.1f64,
        -0.1..0.1f64,
    )
        .prop_map(|(x, y, z, yaw, pitch, roll)| {
            Pose::new(Vec3::new(x, y, z), Attitude::new(yaw, pitch, roll))
        })
}

proptest! {
    #[test]
    fn packet_round_trip(c in cloud(200), p in pose(), id in 0u32..1000, seq in 0u32..1000) {
        let est = PoseEstimate::from_pose(&p, &origin());
        let packet = ExchangePacket::build(id, seq, &c, est).unwrap();
        let parsed = ExchangePacket::from_bytes(&packet.to_bytes()).unwrap();
        prop_assert_eq!(parsed.vehicle_id(), id);
        prop_assert_eq!(parsed.sequence(), seq);
        let decoded = parsed.cloud().unwrap();
        prop_assert_eq!(decoded.len(), c.len());
        for (a, b) in c.iter().zip(decoded.iter()) {
            prop_assert!((a.position - b.position).norm() <= 0.009);
        }
        // The pose survives byte-exactly (f64 fields are copied, not
        // quantized).
        prop_assert!((parsed.pose().gps.latitude - est.gps.latitude).abs() < 1e-12);
        prop_assert!((parsed.pose().attitude.yaw - est.attitude.yaw).abs() < 1e-12);
    }

    #[test]
    fn alignment_matches_ground_truth_transform(tx in pose(), rx in pose(), px in -50.0..50.0f64, py in -50.0..50.0f64) {
        let est_tx = PoseEstimate::from_pose(&tx, &origin());
        let est_rx = PoseEstimate::from_pose(&rx, &origin());
        let via_gps = alignment_transform(&est_tx, &est_rx, &origin());
        let direct = RigidTransform::between(&tx, &rx);
        let p = Vec3::new(px, py, -1.0);
        // The equirectangular GPS approximation introduces sub-mm error
        // at V2V ranges.
        prop_assert!((via_gps.apply(p) - direct.apply(p)).norm() < 5e-3);
    }

    #[test]
    fn alignment_transforms_compose_to_identity(a in pose(), b in pose(), px in -50.0..50.0f64, py in -50.0..50.0f64) {
        let est_a = PoseEstimate::from_pose(&a, &origin());
        let est_b = PoseEstimate::from_pose(&b, &origin());
        let forward = alignment_transform(&est_a, &est_b, &origin());
        let back = alignment_transform(&est_b, &est_a, &origin());
        let p = Vec3::new(px, py, -1.0);
        // Aligning a→b then b→a must return every point to where it
        // started (up to the equirectangular approximation error).
        prop_assert!(
            (back.apply(forward.apply(p)) - p).norm() < 1e-6,
            "composition moved {p} by {}",
            (back.apply(forward.apply(p)) - p).norm()
        );
    }

    #[test]
    fn truncation_never_panics(c in cloud(50), p in pose(), cut_fraction in 0.0..1.0f64) {
        let est = PoseEstimate::from_pose(&p, &origin());
        let packet = ExchangePacket::build(0, 0, &c, est).unwrap();
        let bytes = packet.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        // Must return an error or a valid packet, never panic.
        let _ = ExchangePacket::from_bytes(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    }
}

proptest! {
    #[test]
    fn packet_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = ExchangePacket::from_bytes(&bytes);
    }

    #[test]
    fn roi_request_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = cooper_core::RoiRequest::from_bytes(&bytes);
    }

    #[test]
    fn partial_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = ExchangePacket::from_partial_bytes(&bytes);
    }

    #[test]
    fn partial_salvage_of_truncated_packets_is_bounded(
        c in cloud(80),
        p in pose(),
        integrity in any::<bool>(),
        cut_fraction in 0.0..1.0f64,
        flip_at in 0usize..4096,
        flip_mask in 0u8..=255,
    ) {
        // Structure-aware salvage fuzz: a real packet (optionally
        // CRC-framed), truncated anywhere and with one byte mutated.
        // The salvage path must never panic, and on success the
        // recovered packet must be self-consistent: decodable, no
        // larger than the original, and with a sane salvage fraction.
        let est = PoseEstimate::from_pose(&p, &origin());
        let mut packet = ExchangePacket::build(7, 3, &c, est).unwrap();
        if integrity {
            packet = packet.with_integrity().unwrap();
        }
        let bytes = packet.to_bytes();
        let cut = (((bytes.len() as f64) * cut_fraction) as usize).min(bytes.len());
        let mut partial = bytes[..cut].to_vec();
        if flip_mask != 0 {
            let flip_index = flip_at.min(partial.len().saturating_sub(1));
            if let Some(b) = partial.get_mut(flip_index) {
                *b ^= flip_mask;
            }
        }
        match ExchangePacket::from_partial_bytes(&partial) {
            Ok((salvaged, fraction)) => {
                prop_assert!((0.0..=1.0).contains(&fraction));
                let recovered = salvaged.cloud().unwrap();
                prop_assert!(recovered.len() <= c.len());
                // The re-encoded salvage must itself round-trip.
                let again = ExchangePacket::from_bytes(&salvaged.to_bytes()).unwrap();
                prop_assert_eq!(again.cloud().unwrap().len(), recovered.len());
            }
            Err(_) => {}
        }
    }
}
