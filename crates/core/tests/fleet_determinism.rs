//! Cross-thread-count determinism of the temporal fleet paths.
//!
//! The fleet's contract is that every deterministic report field is
//! bit-identical at any `FleetConfig::threads` setting. This suite
//! stresses the contract where it is easiest to break: with per-vehicle
//! *state* threaded across steps — the tracker's track table and the
//! incremental perception caches — and with the governed v2 delta
//! exchange feeding that state reconstructed clouds instead of raw
//! scans.

use cooper_core::fleet::{straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle};
use cooper_core::governor::SendFirstPolicy;
use cooper_core::tracking::TrackerConfig;
use cooper_core::{CooperPipeline, GovernorConfig, PerfectChannel};
use cooper_lidar_sim::{scenario, BeamModel};
use cooper_spod::{SpodConfig, SpodDetector};

fn build(threads: Option<usize>) -> FleetSimulation {
    let scene = scenario::tj_scenario_1();
    let vehicles = vec![
        FleetVehicle {
            id: 1,
            trajectory: straight_trajectory(scene.observers[0], 1.0, 4),
            beams: BeamModel::vlp16().with_azimuth_steps(200),
        },
        FleetVehicle {
            id: 2,
            trajectory: straight_trajectory(scene.observers[1], 1.0, 4),
            beams: BeamModel::vlp16().with_azimuth_steps(200),
        },
        FleetVehicle {
            id: 7,
            trajectory: straight_trajectory(scene.observers[0], -1.0, 4),
            beams: BeamModel::vlp16().with_azimuth_steps(200),
        },
    ];
    FleetSimulation::new(
        scene.world,
        vehicles,
        FleetConfig {
            seed: 42,
            threads,
            ..FleetConfig::default()
        },
    )
}

fn temporal_pipeline() -> CooperPipeline {
    CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
        .with_tracker(TrackerConfig::default())
        .with_incremental()
}

#[test]
fn tracked_incremental_fleet_is_thread_count_invariant() {
    let p = temporal_pipeline();
    let (r1, s1) = build(Some(1)).run(&p, 3);
    let (r2, s2) = build(Some(2)).run(&p, 3);
    let (r4, s4) = build(Some(4)).run(&p, 3);
    assert_eq!(s1, s2);
    assert_eq!(s1, s4);
    for ((a, b), c) in r1.iter().zip(&r2).zip(&r4) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        assert_eq!(a.deterministic_view(), c.deterministic_view());
    }
}

#[test]
fn governed_delta_tracked_incremental_fleet_is_thread_count_invariant() {
    // The hardest composition: v2 delta streams reconstructed per
    // sender, fed through per-vehicle perception caches, smoothed by
    // per-vehicle trackers — all under the governed exchange. Reports
    // must still be bit-identical at 1, 2 and 4 threads.
    let p = temporal_pipeline();
    let cfg = GovernorConfig::default();
    let run = |threads| {
        let mut policy = SendFirstPolicy;
        build(Some(threads)).run_governed(&p, 3, &mut PerfectChannel, &mut policy, &cfg)
    };
    let (r1, s1) = run(1);
    let (r2, s2) = run(2);
    let (r4, s4) = run(4);
    assert_eq!(s1, s2);
    assert_eq!(s1, s4);
    assert!(!s1.tracks.is_empty(), "trackers ran for every vehicle");
    for ((a, b), c) in r1.iter().zip(&r2).zip(&r4) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        assert_eq!(a.deterministic_view(), c.deterministic_view());
    }
}

#[test]
fn incremental_governed_fleet_matches_stateless_pipeline() {
    // Incremental perception is an optimisation, not a semantic change:
    // the governed run's reports must be bit-identical with and without
    // the caches (tracker disabled so both pipelines agree on the
    // report surface).
    let base = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let incremental =
        CooperPipeline::new(SpodDetector::new(SpodConfig::default())).with_incremental();
    let cfg = GovernorConfig::default();
    let run = |p: &CooperPipeline| {
        let mut policy = SendFirstPolicy;
        build(Some(2)).run_governed(p, 3, &mut PerfectChannel, &mut policy, &cfg)
    };
    let (rb, sb) = run(&base);
    let (ri, si) = run(&incremental);
    assert_eq!(sb, si);
    for (a, b) in rb.iter().zip(&ri) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}
