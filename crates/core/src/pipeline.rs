//! The cooperative-perception pipeline: fuse, then detect.

use std::sync::Mutex;

use cooper_exec::Executor;
use cooper_geometry::{GpsFix, Pose};
use cooper_lidar_sim::{ObjectClass, PoseEstimate};
use cooper_pointcloud::{FrameKind, PointCloud};
use cooper_spod::bev::{BevMap, Z_STRUCTURE_CHANNELS};
use cooper_spod::{
    fuse_bev, transform_bev, DetectOptions, DetectScratch, Detection, FeatureFusionMode,
    FeaturizeCache, SpodDetector,
};
use cooper_telemetry::names as telemetry_names;

use crate::temporal::TemporalAggregator;
use crate::tracking::{Tracker, TrackerConfig};
use crate::{
    alignment_transform, guard_alignment, AlignmentGuardConfig, CooperError, ExchangePacket,
    GuardDecision,
};

/// Per-receiver carried perception state for the incremental perceive
/// paths ([`CooperPipeline::perceive_single_cached`] /
/// [`CooperPipeline::perceive_cached`]).
///
/// A receiver runs two detection streams per step — its own scan and
/// the cooperative fused cloud — whose inputs evolve independently, so
/// each stream gets its own [`FeaturizeCache`]. The fields are wrapped
/// in mutexes so a fleet can hold one `PerceptionCache` per vehicle in
/// a shared slice while its single/cooperative perceive tasks run on
/// different workers; each stream's cache is only ever locked by that
/// stream's task, so lock order cannot affect results.
#[derive(Debug, Default)]
pub struct PerceptionCache {
    single: Mutex<FeaturizeCache>,
    cooperative: Mutex<FeaturizeCache>,
}

impl PerceptionCache {
    /// An empty cache; first perceives through it run from scratch.
    pub fn new() -> Self {
        PerceptionCache::default()
    }

    /// Drops all carried state for both streams.
    pub fn clear(&self) {
        self.single
            .lock()
            .expect("perception cache poisoned")
            .clear();
        self.cooperative
            .lock()
            .expect("perception cache poisoned")
            .clear();
    }
}

/// The outcome of one cooperative perception step.
#[derive(Debug, Clone)]
pub struct CooperativeResult {
    /// The fused cloud in the receiver's sensor frame.
    pub fused_cloud: PointCloud,
    /// Detections on the fused cloud.
    pub detections: Vec<Detection>,
    /// Number of remote packets successfully fused — derived from the
    /// merges that actually happened, not from the input length.
    pub packets_fused: usize,
}

/// Everything one call to [`CooperPipeline::perceive`] produced: the
/// fused cloud, the detections on it, and an explicit account of every
/// packet that could not be fused.
///
/// This replaces the old strict/lossy pair of entry points. A caller
/// that wants strict semantics checks [`FusionOutcome::drops`] (or uses
/// [`FusionOutcome::into_strict`]); a robust receiver just uses the
/// result — fusion never aborts.
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// The fused cloud in the receiver's sensor frame.
    pub fused_cloud: PointCloud,
    /// Detections on the fused cloud.
    pub detections: Vec<Detection>,
    /// Number of remote packets successfully fused.
    pub packets_fused: usize,
    /// One entry per packet that failed to decode, identifying the
    /// sender and the error. Empty on a clean fuse.
    pub drops: Vec<PacketDrop>,
    /// One entry per packet the alignment guard evaluated, in input
    /// order. Empty when the pipeline runs without a guard.
    pub alignment: Vec<AlignmentRecord>,
}

impl FusionOutcome {
    /// Converts to the old strict contract: `Err` with the first drop's
    /// error when any packet failed, `Ok` with the fused result
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns the first packet decoding error encountered.
    pub fn into_strict(self) -> Result<CooperativeResult, CooperError> {
        match self.drops.into_iter().next() {
            Some(drop) => Err(drop.error),
            None => Ok(CooperativeResult {
                fused_cloud: self.fused_cloud,
                detections: self.detections,
                packets_fused: self.packets_fused,
            }),
        }
    }
}

/// Why one received packet was excluded from fusion.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketDrop {
    /// Position of the packet in the input slice.
    pub index: usize,
    /// Transmitting vehicle's identifier from the packet header.
    pub vehicle_id: u32,
    /// The decode error that caused the drop.
    pub error: CooperError,
}

/// What the alignment guard concluded about one received packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentRecord {
    /// Position of the packet in the input slice.
    pub index: usize,
    /// Transmitting vehicle's identifier from the packet header.
    pub vehicle_id: u32,
    /// The guard's verdict for this packet.
    pub decision: GuardDecision,
    /// Matched residual under the GPS/IMU transform, metres.
    pub residual_before_m: f64,
    /// Matched residual under the transform actually used, metres.
    pub residual_after_m: f64,
}

/// Aligns and merges every decodable packet into a copy of
/// `local_cloud`, collecting a [`PacketDrop`] per failure. All fusion
/// entry points share this helper so their semantics and telemetry
/// cannot drift apart.
///
/// With a `guard`, every decoded cloud is validated (and possibly
/// ICP-refined) before merging; guard-rejected clouds surface as
/// [`CooperError::AlignmentRejected`] drops, and every verdict is
/// recorded as an [`AlignmentRecord`].
fn fuse_packets(
    local_cloud: &PointCloud,
    local_pose: &PoseEstimate,
    packets: &[ExchangePacket],
    origin: &GpsFix,
    guard: Option<&AlignmentGuardConfig>,
) -> (PointCloud, usize, Vec<PacketDrop>, Vec<AlignmentRecord>) {
    let _span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_FUSE);
    let mut fused_count = 0usize;
    let mut merged_points = 0u64;
    let mut drops = Vec::new();
    let mut alignment = Vec::new();
    // Pass 1: decode and (optionally) guard every packet, keeping the
    // accepted clouds with their alignment transforms.
    let mut accepted = Vec::with_capacity(packets.len());
    for (index, packet) in packets.iter().enumerate() {
        match packet.cloud() {
            Ok(remote_cloud) => {
                let mut transform = alignment_transform(packet.pose(), local_pose, origin);
                if let Some(cfg) = guard {
                    let report = guard_alignment(local_cloud, &remote_cloud, &transform, cfg);
                    record_guard_telemetry(&report);
                    alignment.push(AlignmentRecord {
                        index,
                        vehicle_id: packet.vehicle_id(),
                        decision: report.decision,
                        residual_before_m: report.residual_before_m,
                        residual_after_m: report.residual_after_m,
                    });
                    if !report.decision.is_accepted() {
                        drops.push(PacketDrop {
                            index,
                            vehicle_id: packet.vehicle_id(),
                            error: CooperError::AlignmentRejected {
                                residual_m: report.residual_after_m,
                            },
                        });
                        continue;
                    }
                    transform = report.transform;
                }
                merged_points += remote_cloud.len() as u64;
                fused_count += 1;
                accepted.push((remote_cloud, transform));
            }
            Err(error) => {
                if cooper_telemetry::is_enabled() {
                    cooper_telemetry::counter_add(
                        &format!("{}{}", telemetry_names::PIPELINE_DROP_PREFIX, error.kind()),
                        1,
                    );
                }
                drops.push(PacketDrop {
                    index,
                    vehicle_id: packet.vehicle_id(),
                    error,
                });
            }
        }
    }
    // Pass 2: one exact-capacity allocation for the union — knowing
    // every accepted cloud's size up front avoids the grow-and-copy
    // churn of merging into an incrementally reallocated buffer.
    let total: usize = local_cloud.len() + accepted.iter().map(|(c, _)| c.len()).sum::<usize>();
    let mut fused = PointCloud::with_capacity(total);
    fused.merge(local_cloud);
    for (remote_cloud, transform) in &accepted {
        fused.merge_transformed(remote_cloud, transform);
    }
    cooper_telemetry::counter_add(telemetry_names::PIPELINE_PACKETS_FUSED, fused_count as u64);
    cooper_telemetry::counter_add(
        telemetry_names::PIPELINE_PACKETS_DROPPED,
        drops.len() as u64,
    );
    cooper_telemetry::counter_add(telemetry_names::PIPELINE_POINTS_MERGED, merged_points);
    (fused, fused_count, drops, alignment)
}

/// Emits the guard's per-packet telemetry: `align.residual` (the
/// post-decision residual in millimetres, finite values only) and the
/// `align.refined` / `align.rejected` / `align.evaluated` counters.
fn record_guard_telemetry(report: &crate::GuardReport) {
    if !cooper_telemetry::is_enabled() {
        return;
    }
    cooper_telemetry::counter_add(telemetry_names::ALIGN_EVALUATED, 1);
    if report.residual_after_m.is_finite() {
        cooper_telemetry::record_value(
            telemetry_names::ALIGN_RESIDUAL,
            (report.residual_after_m * 1000.0).round() as u64,
        );
    }
    match report.decision {
        GuardDecision::AcceptedRefined => {
            cooper_telemetry::counter_add(telemetry_names::ALIGN_REFINED, 1)
        }
        GuardDecision::Rejected | GuardDecision::InsufficientOverlap => {
            cooper_telemetry::counter_add(telemetry_names::ALIGN_REJECTED, 1)
        }
        GuardDecision::AcceptedClean => {}
    }
}

/// The Cooper perception pipeline: a trained SPOD detector plus the
/// align-and-merge machinery of Equations 1–3.
///
/// One pipeline instance serves both single-shot and cooperative
/// perception, because the paper's key design point is that the *same*
/// detector runs on both kinds of input.
#[derive(Debug, Clone)]
pub struct CooperPipeline {
    detector: SpodDetector,
    score_threshold: f32,
    guard: Option<AlignmentGuardConfig>,
    fusion_mode: FeatureFusionMode,
    tracker: Option<TrackerConfig>,
    incremental: bool,
}

impl CooperPipeline {
    /// Creates a pipeline around a trained detector, using the
    /// detector's configured score threshold.
    pub fn new(detector: SpodDetector) -> Self {
        let score_threshold = detector.config().score_threshold;
        CooperPipeline {
            detector,
            score_threshold,
            guard: None,
            fusion_mode: FeatureFusionMode::Max,
            tracker: None,
            incremental: false,
        }
    }

    /// Enables track-level temporal fusion: fleet runs keep one
    /// [`Tracker`] per vehicle and feed it the cooperative detections
    /// every step, smoothing positions and carrying confidence across
    /// detection gaps.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`TrackerConfig::validate`].
    pub fn with_tracker(mut self, config: TrackerConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid tracker config: {msg}");
        }
        self.tracker = Some(config);
        self
    }

    /// The tracker configuration, when track-level fusion is enabled.
    pub fn tracker_config(&self) -> Option<&TrackerConfig> {
        self.tracker.as_ref()
    }

    /// A fresh tracker built from the configured parameters, or `None`
    /// when tracking is not enabled.
    pub fn make_tracker(&self) -> Option<Tracker> {
        self.tracker.map(Tracker::new)
    }

    /// Enables incremental perception: fleet runs keep one
    /// [`PerceptionCache`] per vehicle and route detection through
    /// [`SpodDetector::detect_incremental`], so per-step perceive cost
    /// scales with scene *change* instead of scene *size*. Results are
    /// bit-identical to the from-scratch path.
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// `true` when incremental perception is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Overrides the detection score threshold.
    pub fn with_score_threshold(mut self, threshold: f32) -> Self {
        self.score_threshold = threshold;
        self
    }

    /// Selects how received BEV feature frames (wire-format v3) are
    /// fused with the receiver's own features: elementwise max
    /// (F-Cooper's operator, the default) or adaptive per-cell
    /// confidence weighting. Point-cloud packets are unaffected.
    pub fn with_fusion_mode(mut self, mode: FeatureFusionMode) -> Self {
        self.fusion_mode = mode;
        self
    }

    /// The active feature-fusion operator.
    pub fn fusion_mode(&self) -> FeatureFusionMode {
        self.fusion_mode
    }

    /// Enables the alignment guard: every received cloud is validated
    /// (and, when recoverable, ICP-refined) before fusion; unverifiable
    /// clouds are excluded and reported as
    /// [`CooperError::AlignmentRejected`] drops.
    pub fn with_alignment_guard(mut self, cfg: AlignmentGuardConfig) -> Self {
        self.guard = Some(cfg);
        self
    }

    /// The active alignment-guard configuration, if any.
    pub fn alignment_guard(&self) -> Option<&AlignmentGuardConfig> {
        self.guard.as_ref()
    }

    /// The underlying detector.
    pub fn detector(&self) -> &SpodDetector {
        &self.detector
    }

    /// Single-shot perception: detect cars on one vehicle's own scan —
    /// the paper's baseline.
    pub fn perceive_single(&self, cloud: &PointCloud) -> Vec<Detection> {
        self.perceive_single_with(cloud, &Executor::sequential(), &mut DetectScratch::new())
    }

    /// [`perceive_single`](Self::perceive_single) with an explicit
    /// executor and a caller-owned scratch arena, for callers (the fleet
    /// stepper, benches) that run many perceive calls and want to
    /// parallelize the detector internals while reusing its buffers.
    pub fn perceive_single_with(
        &self,
        cloud: &PointCloud,
        executor: &Executor,
        scratch: &mut DetectScratch,
    ) -> Vec<Detection> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_PERCEIVE_SINGLE);
        let options = DetectOptions::default()
            .with_class(ObjectClass::Car)
            .with_threshold(self.score_threshold)
            .with_executor(*executor);
        self.detector.detect_with(cloud, &options, scratch)
    }

    /// [`perceive_single_with`](Self::perceive_single_with) with
    /// change-proportional cost: carries perception state in `cache`
    /// across steps and recomputes only what the scan changed
    /// ([`SpodDetector::detect_incremental`]). Bit-identical to the
    /// from-scratch path on any input.
    pub fn perceive_single_cached(
        &self,
        cloud: &PointCloud,
        executor: &Executor,
        scratch: &mut DetectScratch,
        cache: &PerceptionCache,
    ) -> Vec<Detection> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_PERCEIVE_SINGLE);
        let options = DetectOptions::default()
            .with_class(ObjectClass::Car)
            .with_threshold(self.score_threshold)
            .with_executor(*executor);
        let mut stream = cache.single.lock().expect("perception cache poisoned");
        self.detector
            .detect_incremental(cloud, &options, scratch, &mut stream)
    }

    /// Temporal self-fusion perception — the paper's Figure-2 procedure
    /// as an online step: fuse the retained past frames into the
    /// current scan's frame ([`TemporalAggregator::fused_in`]), detect
    /// on the densified union, then record the current frame for future
    /// steps.
    pub fn perceive_temporal(
        &self,
        aggregator: &mut TemporalAggregator,
        pose: &Pose,
        scan: &PointCloud,
    ) -> Vec<Detection> {
        let fused = aggregator.fused_in(pose, scan);
        let detections = self.perceive_single(&fused);
        aggregator.push(*pose, scan.clone());
        detections
    }

    /// Single-shot perception over all target classes.
    pub fn perceive_single_all_classes(&self, cloud: &PointCloud) -> Vec<Detection> {
        let options = DetectOptions::default().with_threshold(self.score_threshold);
        self.detector
            .detect_with(cloud, &options, &mut DetectScratch::new())
    }

    /// Fuses remote packets into the receiver's frame (Equations 1–3 +
    /// Equation 2) without running detection.
    ///
    /// # Errors
    ///
    /// Returns the first packet decoding error encountered. Alignment
    /// itself cannot fail once a packet decodes: the pose is validated
    /// at decode time.
    pub fn fuse(
        &self,
        local_cloud: &PointCloud,
        local_pose: &PoseEstimate,
        packets: &[ExchangePacket],
        origin: &GpsFix,
    ) -> Result<PointCloud, CooperError> {
        let (fused, _, drops, _) = fuse_packets(
            local_cloud,
            local_pose,
            packets,
            origin,
            self.guard.as_ref(),
        );
        match drops.into_iter().next() {
            Some(drop) => Err(drop.error),
            None => Ok(fused),
        }
    }

    /// Full cooperative perception — the single entry point: align and
    /// merge every decodable packet into the receiver's frame
    /// (Equations 1–3 + Equation 2), run SPOD on the fused cloud, and
    /// report undecodable packets as [`PacketDrop`]s instead of
    /// aborting.
    pub fn perceive(
        &self,
        local_cloud: &PointCloud,
        local_pose: &PoseEstimate,
        packets: &[ExchangePacket],
        origin: &GpsFix,
    ) -> FusionOutcome {
        self.perceive_with(
            local_cloud,
            local_pose,
            packets,
            origin,
            &Executor::sequential(),
            &mut DetectScratch::new(),
        )
    }

    /// [`perceive`](Self::perceive) with an explicit executor and a
    /// caller-owned scratch arena; the executor parallelizes the SPOD
    /// internals on the fused cloud, and the scratch's rulebook arena is
    /// reused across calls.
    ///
    /// Inboxes may mix payload levels. Point-cloud packets (v1/v2) fuse
    /// at the raw level as before; feature-frame packets (v3) are
    /// decoded, re-binned into the receiver's BEV grid under the GPS/IMU
    /// transform, and fused with the receiver's own features by the
    /// configured [`FeatureFusionMode`] before the RPN head (F-Cooper).
    /// The alignment guard only applies to point packets — a feature
    /// frame carries no raw points to verify with ICP, so its GPS/IMU
    /// transform is trusted as-is. [`FusionOutcome::fused_cloud`] holds
    /// the point-level union only; feature packets contribute no points.
    pub fn perceive_with(
        &self,
        local_cloud: &PointCloud,
        local_pose: &PoseEstimate,
        packets: &[ExchangePacket],
        origin: &GpsFix,
        executor: &Executor,
        scratch: &mut DetectScratch,
    ) -> FusionOutcome {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_PERCEIVE);
        // Partition the inbox: v3 payloads fuse at the feature level,
        // everything else (including undecodable headers, which the
        // point path reports as drops) at the point level.
        let mut point_packets = Vec::with_capacity(packets.len());
        let mut point_indices = Vec::with_capacity(packets.len());
        let mut feature_packets = Vec::new();
        for (index, packet) in packets.iter().enumerate() {
            let is_features = packet
                .frame_info()
                .is_ok_and(|info| info.kind == FrameKind::Features);
            if is_features {
                feature_packets.push((index, packet));
            } else {
                point_indices.push(index);
                point_packets.push(packet.clone());
            }
        }
        if feature_packets.is_empty() {
            let (fused_cloud, fused_count, drops, alignment) = fuse_packets(
                local_cloud,
                local_pose,
                packets,
                origin,
                self.guard.as_ref(),
            );
            let detections = self.perceive_single_with(&fused_cloud, executor, scratch);
            return FusionOutcome {
                fused_cloud,
                detections,
                packets_fused: fused_count,
                drops,
                alignment,
            };
        }
        let (fused_cloud, mut fused_count, mut drops, mut alignment) = fuse_packets(
            local_cloud,
            local_pose,
            &point_packets,
            origin,
            self.guard.as_ref(),
        );
        // fuse_packets saw the point subset; restore input positions.
        for drop in &mut drops {
            drop.index = point_indices[drop.index];
        }
        for record in &mut alignment {
            record.index = point_indices[record.index];
        }
        let remote_maps = self.decode_feature_maps(
            &feature_packets,
            local_pose,
            origin,
            &mut fused_count,
            &mut drops,
        );
        drops.sort_by_key(|d| d.index);
        let options = DetectOptions::default()
            .with_class(ObjectClass::Car)
            .with_threshold(self.score_threshold)
            .with_executor(*executor);
        let local_bev = self
            .detector
            .featurize_with(&fused_cloud, &options, scratch);
        let fused_bev = {
            let _fuse_span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_FUSE_FEATURES);
            let mut maps: Vec<&BevMap> = Vec::with_capacity(1 + remote_maps.len());
            maps.push(&local_bev);
            maps.extend(remote_maps.iter());
            fuse_bev(&maps, self.fusion_mode)
        };
        let detections = self.detector.detect_bev(&fused_bev, &options);
        FusionOutcome {
            fused_cloud,
            detections,
            packets_fused: fused_count,
            drops,
            alignment,
        }
    }

    /// [`perceive_with`](Self::perceive_with) with change-proportional
    /// cost: the fused point cloud is detected through the cooperative
    /// stream of `cache`, so steps whose fused cloud is bitwise-stable
    /// (static scenes, delta-frame reconstructions) skip most of the
    /// SPOD trunk. Bit-identical to the from-scratch path.
    ///
    /// Inboxes containing v3 feature frames fall back to
    /// [`perceive_with`](Self::perceive_with) — feature fusion happens
    /// at the BEV level, past the stages the cache carries.
    #[allow(clippy::too_many_arguments)]
    pub fn perceive_cached(
        &self,
        local_cloud: &PointCloud,
        local_pose: &PoseEstimate,
        packets: &[ExchangePacket],
        origin: &GpsFix,
        executor: &Executor,
        scratch: &mut DetectScratch,
        cache: &PerceptionCache,
    ) -> FusionOutcome {
        let any_features = packets.iter().any(|packet| {
            packet
                .frame_info()
                .is_ok_and(|info| info.kind == FrameKind::Features)
        });
        if any_features {
            return self.perceive_with(local_cloud, local_pose, packets, origin, executor, scratch);
        }
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_PERCEIVE);
        let (fused_cloud, fused_count, drops, alignment) = fuse_packets(
            local_cloud,
            local_pose,
            packets,
            origin,
            self.guard.as_ref(),
        );
        let detections = {
            let _single = cooper_telemetry::span!(telemetry_names::SPAN_PIPELINE_PERCEIVE_SINGLE);
            let options = DetectOptions::default()
                .with_class(ObjectClass::Car)
                .with_threshold(self.score_threshold)
                .with_executor(*executor);
            let mut stream = cache.cooperative.lock().expect("perception cache poisoned");
            self.detector
                .detect_incremental(&fused_cloud, &options, scratch, &mut stream)
        };
        FusionOutcome {
            fused_cloud,
            detections,
            packets_fused: fused_count,
            drops,
            alignment,
        }
    }

    /// Decodes and aligns every v3 packet into the receiver's BEV grid,
    /// recording undecodable or channel-mismatched frames as drops.
    fn decode_feature_maps(
        &self,
        feature_packets: &[(usize, &ExchangePacket)],
        local_pose: &PoseEstimate,
        origin: &GpsFix,
        fused_count: &mut usize,
        drops: &mut Vec<PacketDrop>,
    ) -> Vec<BevMap> {
        let expected_channels = self.detector.config().channels + Z_STRUCTURE_CHANNELS;
        let grid = &self.detector.config().voxel_grid;
        let mut remote_maps = Vec::with_capacity(feature_packets.len());
        let mut dropped = 0u64;
        for &(index, packet) in feature_packets {
            let outcome = packet.feature_frame().and_then(|frame| {
                if frame.channels() == expected_channels {
                    Ok(frame)
                } else {
                    Err(CooperError::FeatureMismatch {
                        expected: expected_channels,
                        actual: frame.channels(),
                    })
                }
            });
            match outcome {
                Ok(frame) => {
                    let transform = alignment_transform(packet.pose(), local_pose, origin);
                    remote_maps.push(transform_bev(
                        &BevMap::from_feature_frame(&frame),
                        &transform,
                        grid,
                    ));
                    *fused_count += 1;
                }
                Err(error) => {
                    if cooper_telemetry::is_enabled() {
                        cooper_telemetry::counter_add(
                            &format!("{}{}", telemetry_names::PIPELINE_DROP_PREFIX, error.kind()),
                            1,
                        );
                    }
                    dropped += 1;
                    drops.push(PacketDrop {
                        index,
                        vehicle_id: packet.vehicle_id(),
                        error,
                    });
                }
            }
        }
        cooper_telemetry::counter_add(
            telemetry_names::PIPELINE_FEATURES_FUSED,
            remote_maps.len() as u64,
        );
        cooper_telemetry::counter_add(
            telemetry_names::PIPELINE_PACKETS_FUSED,
            remote_maps.len() as u64,
        );
        cooper_telemetry::counter_add(telemetry_names::PIPELINE_PACKETS_DROPPED, dropped);
        remote_maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
    use cooper_lidar_sim::{scenario, LidarScanner};
    use cooper_spod::{SpodConfig, SpodDetector};

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    fn untrained_pipeline() -> CooperPipeline {
        CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
    }

    #[test]
    fn fuse_aligns_remote_points() {
        let pipeline = untrained_pipeline();
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_pose = scene.observers[0];
        let tx_pose = scene.observers[1];
        let local = scanner.scan(&scene.world, &rx_pose, 1);
        let remote = scanner.scan(&scene.world, &tx_pose, 2);

        let rx_est = PoseEstimate::from_pose(&rx_pose, &origin());
        let tx_est = PoseEstimate::from_pose(&tx_pose, &origin());
        let packet = ExchangePacket::build(2, 0, &remote, tx_est).unwrap();
        let fused = pipeline
            .fuse(&local, &rx_est, &[packet], &origin())
            .unwrap();
        assert_eq!(fused.len(), local.len() + remote.len());

        // The remote points, aligned into the receiver frame, must land
        // on the same world surfaces: check a sample against the direct
        // ground-truth transform.
        let direct = RigidTransform::between(&tx_pose, &rx_pose);
        let sample = remote.as_slice()[remote.len() / 2];
        let expected = direct.apply(sample.position);
        let fused_sample = fused.as_slice()[local.len() + remote.len() / 2];
        assert!(
            (fused_sample.position - expected).norm() < 0.02,
            "alignment error {}",
            (fused_sample.position - expected).norm()
        );
    }

    /// Builds a packet whose payload is corrupted so decoding fails
    /// while the header still parses.
    fn corrupt_payload(good: &ExchangePacket) -> ExchangePacket {
        let mut bytes = good.to_bytes().to_vec();
        let header = bytes.len() - good.payload_len();
        bytes[header] = b'Z';
        ExchangePacket::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn perceive_counts_packets() {
        let pipeline = untrained_pipeline();
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let est = PoseEstimate::from_pose(&pose, &origin());
        let cloud = PointCloud::new();
        let p1 = ExchangePacket::build(1, 0, &cloud, est).unwrap();
        let p2 = ExchangePacket::build(2, 0, &cloud, est).unwrap();
        let outcome = pipeline.perceive(&cloud, &est, &[p1, p2], &origin());
        assert_eq!(outcome.packets_fused, 2);
        assert!(outcome.detections.is_empty());
        assert!(outcome.drops.is_empty());
    }

    #[test]
    fn perceive_skips_corrupt_packets_and_reports_drops() {
        let pipeline = untrained_pipeline();
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let est = PoseEstimate::from_pose(&pose, &origin());
        let mut cloud = PointCloud::new();
        cloud.push(cooper_pointcloud::Point::new(
            Vec3::new(5.0, 0.0, -1.0),
            0.5,
        ));
        let good = ExchangePacket::build(1, 0, &cloud, est).unwrap();
        let bad = corrupt_payload(&good);
        let outcome = pipeline.perceive(&cloud, &est, &[good, bad], &origin());
        assert_eq!(outcome.packets_fused, 1);
        assert_eq!(outcome.drops.len(), 1);
        assert_eq!(outcome.drops[0].index, 1);
        assert_eq!(outcome.drops[0].vehicle_id, 1);
        assert_eq!(outcome.drops[0].error.kind(), "codec");
        assert_eq!(outcome.fused_cloud.len(), 2);
    }

    #[test]
    fn into_strict_surfaces_first_drop_error() {
        let pipeline = untrained_pipeline();
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let est = PoseEstimate::from_pose(&pose, &origin());
        let mut cloud = PointCloud::new();
        cloud.push(cooper_pointcloud::Point::new(
            Vec3::new(5.0, 0.0, -1.0),
            0.5,
        ));
        let good = ExchangePacket::build(1, 0, &cloud, est).unwrap();
        let bad = corrupt_payload(&good);
        let err = pipeline
            .perceive(&cloud, &est, &[good.clone(), bad.clone()], &origin())
            .into_strict()
            .unwrap_err();
        assert_eq!(err.kind(), "codec");
        assert!(pipeline.fuse(&cloud, &est, &[bad], &origin()).is_err());
        // A clean outcome converts to Ok.
        let ok = pipeline
            .perceive(&cloud, &est, &[good], &origin())
            .into_strict()
            .unwrap();
        assert_eq!(ok.packets_fused, 1);
    }

    #[test]
    fn guarded_perceive_rejects_bad_pose_and_accepts_clean() {
        let pipeline = untrained_pipeline().with_alignment_guard(AlignmentGuardConfig::default());
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_pose = scene.observers[0];
        let tx_pose = scene.observers[1];
        let local = scanner.scan(&scene.world, &rx_pose, 1);
        let remote = scanner.scan(&scene.world, &tx_pose, 2);
        let rx_est = PoseEstimate::from_pose(&rx_pose, &origin());
        let tx_est = PoseEstimate::from_pose(&tx_pose, &origin());

        // Clean pose: fused, recorded as accepted.
        let good = ExchangePacket::build(2, 0, &remote, tx_est).unwrap();
        let outcome = pipeline.perceive(&local, &rx_est, &[good], &origin());
        assert_eq!(outcome.packets_fused, 1);
        assert_eq!(outcome.alignment.len(), 1);
        assert!(outcome.alignment[0].decision.is_accepted());

        // Grossly wrong pose: excluded, reported as AlignmentRejected,
        // detections equal the ego-only result.
        let mut bad_est = tx_est;
        bad_est.gps = bad_est.gps.offset_by(Vec3::new(40.0, -25.0, 0.0));
        let bad = ExchangePacket::build(2, 1, &remote, bad_est).unwrap();
        let outcome = pipeline.perceive(&local, &rx_est, &[bad], &origin());
        assert_eq!(outcome.packets_fused, 0);
        assert_eq!(outcome.fused_cloud.len(), local.len());
        assert_eq!(outcome.drops.len(), 1);
        assert_eq!(outcome.drops[0].error.kind(), "alignment_rejected");
        assert!(!outcome.alignment[0].decision.is_accepted());
        let ego = pipeline.perceive_single(&local);
        assert_eq!(outcome.detections.len(), ego.len());
    }

    #[test]
    fn unguarded_perceive_records_no_alignment() {
        let pipeline = untrained_pipeline();
        assert!(pipeline.alignment_guard().is_none());
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let est = PoseEstimate::from_pose(&pose, &origin());
        let cloud = PointCloud::new();
        let p1 = ExchangePacket::build(1, 0, &cloud, est).unwrap();
        let outcome = pipeline.perceive(&cloud, &est, &[p1], &origin());
        assert!(outcome.alignment.is_empty());
    }

    #[test]
    fn perceive_fuses_feature_packets_at_the_bev_level() {
        let pipeline = untrained_pipeline();
        assert_eq!(pipeline.fusion_mode(), cooper_spod::FeatureFusionMode::Max);
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_pose = scene.observers[0];
        let tx_pose = scene.observers[1];
        let local = scanner.scan(&scene.world, &rx_pose, 1);
        let remote = scanner.scan(&scene.world, &tx_pose, 2);
        let rx_est = PoseEstimate::from_pose(&rx_pose, &origin());
        let tx_est = PoseEstimate::from_pose(&tx_pose, &origin());
        // The sender runs the SPOD front half and ships features.
        let frame = pipeline.detector().featurize(&remote).to_feature_frame();
        assert!(!frame.is_empty());
        let packet = ExchangePacket::build_features(2, 0, &frame, tx_est).unwrap();
        assert_eq!(packet.frame_info().unwrap().kind, FrameKind::Features);
        let outcome = pipeline.perceive(&local, &rx_est, &[packet], &origin());
        assert_eq!(outcome.packets_fused, 1);
        assert!(outcome.drops.is_empty());
        // Feature packets contribute no raw points.
        assert_eq!(outcome.fused_cloud.len(), local.len());
        // The guard never sees feature frames.
        assert!(outcome.alignment.is_empty());
    }

    #[test]
    fn perceive_reports_feature_channel_mismatch_with_input_index() {
        let pipeline = untrained_pipeline();
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let est = PoseEstimate::from_pose(&pose, &origin());
        let mut cloud = PointCloud::new();
        cloud.push(cooper_pointcloud::Point::new(
            Vec3::new(5.0, 0.0, -1.0),
            0.5,
        ));
        let good = ExchangePacket::build(1, 0, &cloud, est).unwrap();
        let frame = cooper_pointcloud::FeatureFrame::new(2, vec![(0, 0)], vec![0.5, 0.25]);
        let bad = ExchangePacket::build_features(3, 0, &frame, est).unwrap();
        let outcome = pipeline.perceive(&cloud, &est, &[good, bad], &origin());
        assert_eq!(outcome.packets_fused, 1);
        assert_eq!(outcome.drops.len(), 1);
        assert_eq!(outcome.drops[0].index, 1);
        assert_eq!(outcome.drops[0].vehicle_id, 3);
        assert_eq!(outcome.drops[0].error.kind(), "feature_mismatch");
    }

    #[test]
    fn perceive_cached_matches_perceive_over_steps() {
        let pipeline = untrained_pipeline().with_score_threshold(0.4);
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_pose = scene.observers[0];
        let rx_est = PoseEstimate::from_pose(&rx_pose, &origin());
        let local = scanner.scan(&scene.world, &rx_pose, 1);
        let cache = PerceptionCache::new();
        let executor = Executor::sequential();
        let mut scratch = DetectScratch::new();
        // Three steps: the sender's scan changes, repeats, then changes
        // again — every step must match the uncached path bit for bit.
        for seed in [2u64, 2, 5] {
            let tx_pose = scene.observers[1];
            let remote = scanner.scan(&scene.world, &tx_pose, seed);
            let tx_est = PoseEstimate::from_pose(&tx_pose, &origin());
            let packet = ExchangePacket::build(2, 0, &remote, tx_est).unwrap();
            let cached = pipeline.perceive_cached(
                &local,
                &rx_est,
                &[packet.clone()],
                &origin(),
                &executor,
                &mut scratch,
                &cache,
            );
            let plain = pipeline.perceive(&local, &rx_est, &[packet], &origin());
            assert_eq!(cached.detections, plain.detections);
            assert_eq!(cached.fused_cloud, plain.fused_cloud);
            assert_eq!(cached.packets_fused, plain.packets_fused);
        }
        // Clearing resets without changing results.
        cache.clear();
        let single_cached =
            pipeline.perceive_single_cached(&local, &executor, &mut scratch, &cache);
        assert_eq!(single_cached, pipeline.perceive_single(&local));
    }

    #[test]
    fn perceive_cached_falls_back_on_feature_packets() {
        let pipeline = untrained_pipeline();
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_est = PoseEstimate::from_pose(&scene.observers[0], &origin());
        let tx_est = PoseEstimate::from_pose(&scene.observers[1], &origin());
        let local = scanner.scan(&scene.world, &scene.observers[0], 1);
        let remote = scanner.scan(&scene.world, &scene.observers[1], 2);
        let frame = pipeline.detector().featurize(&remote).to_feature_frame();
        let packet = ExchangePacket::build_features(2, 0, &frame, tx_est).unwrap();
        let cache = PerceptionCache::new();
        let cached = pipeline.perceive_cached(
            &local,
            &rx_est,
            &[packet.clone()],
            &origin(),
            &Executor::sequential(),
            &mut DetectScratch::new(),
            &cache,
        );
        let plain = pipeline.perceive(&local, &rx_est, &[packet], &origin());
        assert_eq!(cached.detections, plain.detections);
        assert_eq!(cached.packets_fused, plain.packets_fused);
    }

    #[test]
    fn tracker_builder_round_trip() {
        let pipeline = untrained_pipeline();
        assert!(pipeline.tracker_config().is_none());
        assert!(pipeline.make_tracker().is_none());
        assert!(!pipeline.incremental());
        let pipeline = pipeline
            .with_tracker(crate::tracking::TrackerConfig::default())
            .with_incremental();
        assert!(pipeline.tracker_config().is_some());
        assert!(pipeline.make_tracker().unwrap().tracks().is_empty());
        assert!(pipeline.incremental());
    }

    #[test]
    #[should_panic(expected = "invalid tracker config")]
    fn with_tracker_rejects_bad_config() {
        let bad = crate::tracking::TrackerConfig {
            gate_distance: -1.0,
            ..Default::default()
        };
        let _ = untrained_pipeline().with_tracker(bad);
    }

    #[test]
    fn perceive_temporal_fuses_then_records() {
        let pipeline = untrained_pipeline().with_score_threshold(0.4);
        let scene = scenario::t_junction();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let mut agg = TemporalAggregator::new(3);
        let past_pose = scene.observers[1];
        let past_scan = scanner.scan(&scene.world, &past_pose, 7);
        agg.push(past_pose, past_scan);
        let pose = scene.observers[0];
        let scan = scanner.scan(&scene.world, &pose, 8);
        // Reference: detect on the fused cloud directly.
        let expected = pipeline.perceive_single(&agg.fused_in(&pose, &scan));
        let got = pipeline.perceive_temporal(&mut agg, &pose, &scan);
        assert_eq!(got, expected);
        // The current frame was recorded for the next step.
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn fusion_mode_builder_selects_adaptive() {
        let pipeline =
            untrained_pipeline().with_fusion_mode(cooper_spod::FeatureFusionMode::Adaptive);
        assert_eq!(
            pipeline.fusion_mode(),
            cooper_spod::FeatureFusionMode::Adaptive
        );
    }

    #[test]
    fn threshold_override() {
        let pipeline = untrained_pipeline().with_score_threshold(0.9);
        assert_eq!(pipeline.score_threshold, 0.9);
        // Untrained heads score 0.5 — nothing clears 0.9.
        let mut cloud = PointCloud::new();
        cloud.push(cooper_pointcloud::Point::new(
            Vec3::new(5.0, 0.0, -1.0),
            0.5,
        ));
        assert!(pipeline.perceive_single(&cloud).is_empty());
    }
}
