//! Multi-vehicle fleet simulation.
//!
//! The paper frames Cooper as "an entry to a broader platform for CAV"
//! where "vehicles on adjacent districts or crowded zones can keep
//! connection for a longer duration, thereby enhancing cooperative
//! sensing" (§II-A). This module provides the time-stepped multi-vehicle
//! loop behind that vision: every step, each vehicle scans, broadcasts
//! an ROI-filtered exchange packet to every cooperator within radio
//! range, fuses what it received and runs detection — while the
//! simulation tracks per-pair connection durations and exchanged bytes.

use std::collections::HashMap;

use cooper_geometry::{GpsFix, Pose};
use cooper_lidar_sim::{BeamModel, GpsImuModel, LidarScanner, World};
use cooper_pointcloud::roi::{extract_roi, RoiCategory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{CooperPipeline, ExchangePacket};

/// One vehicle in the fleet: an id, a pose trajectory (one pose per
/// step) and its LiDAR unit.
#[derive(Debug, Clone)]
pub struct FleetVehicle {
    /// Vehicle identifier, unique in the fleet.
    pub id: u32,
    /// Pose per simulation step; the vehicle holds its last pose when
    /// the trajectory is shorter than the run.
    pub trajectory: Vec<Pose>,
    /// The vehicle's LiDAR.
    pub beams: BeamModel,
}

impl FleetVehicle {
    /// The pose at `step` (clamped to the trajectory end).
    ///
    /// # Panics
    ///
    /// Panics when the trajectory is empty.
    pub fn pose_at(&self, step: usize) -> Pose {
        assert!(
            !self.trajectory.is_empty(),
            "vehicle {} has no trajectory",
            self.id
        );
        self.trajectory[step.min(self.trajectory.len() - 1)]
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Vehicles exchange only when within this planar distance.
    pub comms_range_m: f64,
    /// ROI category applied to broadcast frames.
    pub roi: RoiCategory,
    /// GPS/IMU model producing the exchanged pose estimates.
    pub sensor_model: GpsImuModel,
    /// GPS anchor of the shared frame.
    pub origin: GpsFix,
    /// Base seed for scan noise.
    pub seed: u64,
    /// Wall-clock duration of one step, seconds; dynamic entities
    /// (non-zero [`cooper_lidar_sim::Entity::velocity`]) advance by this
    /// much between steps.
    pub step_duration_s: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            comms_range_m: 150.0,
            roi: RoiCategory::FullFrame,
            sensor_model: GpsImuModel::realistic(),
            origin: GpsFix::new(33.2075, -97.1526, 190.0),
            seed: 0,
            step_duration_s: 1.0,
        }
    }
}

/// Per-vehicle outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleStepReport {
    /// The vehicle.
    pub vehicle_id: u32,
    /// Cars detected from the vehicle's own scan alone.
    pub single_detections: usize,
    /// Cars detected after fusing all received packets.
    pub cooperative_detections: usize,
    /// Packets fused this step.
    pub packets_received: usize,
    /// Exchange bytes received this step.
    pub bytes_received: usize,
}

/// Wall-clock cost of one step's phases, microseconds. Filled on every
/// run, telemetry enabled or not — the measurement is two `Instant`
/// reads per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTimings {
    /// Scanning and broadcast-packet building across the fleet.
    pub scan_us: u64,
    /// Connection tracking and packet delivery.
    pub exchange_us: u64,
    /// Single and cooperative perception across the fleet.
    pub perceive_us: u64,
}

impl StepTimings {
    /// Total measured time of the step's phases.
    pub fn total_us(&self) -> u64 {
        self.scan_us + self.exchange_us + self.perceive_us
    }
}

/// The outcome of one simulation step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStepReport {
    /// Step index.
    pub step: usize,
    /// One entry per vehicle, in fleet order.
    pub per_vehicle: Vec<VehicleStepReport>,
    /// Where this step's wall-clock time went.
    pub timings: StepTimings,
}

/// Aggregate statistics of a completed run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Steps during which each (low id, high id) pair was in radio
    /// range — the paper's "connection duration".
    pub connection_steps: HashMap<(u32, u32), usize>,
    /// Total exchange bytes moved over the whole run.
    pub total_bytes: u64,
}

impl FleetStats {
    /// The longest-lived connection, if any pair ever connected.
    pub fn longest_connection(&self) -> Option<((u32, u32), usize)> {
        self.connection_steps
            .iter()
            .max_by_key(|(_, &steps)| steps)
            .map(|(&pair, &steps)| (pair, steps))
    }
}

/// A time-stepped multi-vehicle cooperative-perception simulation.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    world: World,
    vehicles: Vec<FleetVehicle>,
    config: FleetConfig,
}

impl FleetSimulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics when `vehicles` is empty, any trajectory is empty, or ids
    /// collide.
    pub fn new(world: World, vehicles: Vec<FleetVehicle>, config: FleetConfig) -> Self {
        assert!(!vehicles.is_empty(), "fleet must have at least one vehicle");
        for v in &vehicles {
            assert!(
                !v.trajectory.is_empty(),
                "vehicle {} has no trajectory",
                v.id
            );
        }
        let mut ids: Vec<u32> = vehicles.iter().map(|v| v.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), vehicles.len(), "duplicate vehicle ids");
        FleetSimulation {
            world,
            vehicles,
            config,
        }
    }

    /// The fleet.
    pub fn vehicles(&self) -> &[FleetVehicle] {
        &self.vehicles
    }

    /// Runs `steps` simulation steps, returning per-step reports and
    /// aggregate statistics. Every exchange is delivered (an ideal
    /// channel); use [`FleetSimulation::run_with_packet_filter`] to
    /// model a lossy or contended medium.
    pub fn run(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
    ) -> (Vec<FleetStepReport>, FleetStats) {
        self.run_with_packet_filter(pipeline, steps, |_, _, _, _| true)
    }

    /// Like [`FleetSimulation::run`], with a delivery filter: for each
    /// directed transfer the callback receives `(step, from_id, to_id,
    /// wire_bytes)` and returns whether the packet arrives. This is the
    /// hook a channel model (loss, contention, budget) plugs into —
    /// see `cooper-v2x` for implementations.
    pub fn run_with_packet_filter<F>(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
        mut deliver: F,
    ) -> (Vec<FleetStepReport>, FleetStats)
    where
        F: FnMut(usize, u32, u32, usize) -> bool,
    {
        let _run_span = cooper_telemetry::span!("fleet.run");
        let mut reports = Vec::with_capacity(steps);
        let mut stats = FleetStats::default();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xF1EE7);
        let mut world = self.world.clone();

        for step in 0..steps {
            let _step_span = cooper_telemetry::span!("fleet.step");
            let mut timings = StepTimings::default();

            // Phase 1: every vehicle scans and broadcasts.
            struct Broadcast {
                scan: cooper_pointcloud::PointCloud,
                pose: Pose,
                packet: ExchangePacket,
            }
            let scan_start = std::time::Instant::now();
            let broadcasts: Vec<Broadcast> = {
                let _scan_span = cooper_telemetry::span!("fleet.scan");
                self.vehicles
                    .iter()
                    .enumerate()
                    .map(|(idx, v)| {
                        let pose = v.pose_at(step);
                        let scanner = LidarScanner::new(v.beams.clone());
                        let scan = scanner.scan(
                            &world,
                            &pose,
                            self.config.seed ^ ((step as u64) << 24) ^ idx as u64,
                        );
                        let estimate =
                            self.config
                                .sensor_model
                                .measure(&pose, &self.config.origin, &mut rng);
                        let roi_scan = extract_roi(&scan, self.config.roi);
                        let packet = ExchangePacket::build(v.id, step as u32, &roi_scan, estimate)
                            .expect("sensor-frame scans always encode");
                        Broadcast { scan, pose, packet }
                    })
                    .collect()
            };
            timings.scan_us = scan_start.elapsed().as_micros() as u64;

            // Phase 2: track connections.
            let exchange_start = std::time::Instant::now();
            for i in 0..self.vehicles.len() {
                for j in (i + 1)..self.vehicles.len() {
                    let d = broadcasts[i].pose.delta_d(&broadcasts[j].pose);
                    if d <= self.config.comms_range_m {
                        let key = (
                            self.vehicles[i].id.min(self.vehicles[j].id),
                            self.vehicles[i].id.max(self.vehicles[j].id),
                        );
                        *stats.connection_steps.entry(key).or_insert(0) += 1;
                    }
                }
            }
            timings.exchange_us = exchange_start.elapsed().as_micros() as u64;

            // Phase 3: every vehicle fuses what it can hear and detects.
            let mut per_vehicle = Vec::with_capacity(self.vehicles.len());
            for (i, me) in broadcasts.iter().enumerate() {
                let exchange_start = std::time::Instant::now();
                let (packets, bytes_received) = {
                    let _exchange_span = cooper_telemetry::span!("fleet.exchange");
                    let my_pose = &me.pose;
                    let mut packets = Vec::new();
                    let mut bytes_received = 0usize;
                    for (j, other) in broadcasts.iter().enumerate() {
                        if i == j || my_pose.delta_d(&other.pose) > self.config.comms_range_m {
                            continue;
                        }
                        if !deliver(
                            step,
                            self.vehicles[j].id,
                            self.vehicles[i].id,
                            other.packet.wire_size(),
                        ) {
                            continue;
                        }
                        bytes_received += other.packet.wire_size();
                        packets.push(other.packet.clone());
                    }
                    (packets, bytes_received)
                };
                timings.exchange_us += exchange_start.elapsed().as_micros() as u64;
                stats.total_bytes += bytes_received as u64;

                let perceive_start = std::time::Instant::now();
                let my_estimate =
                    self.config
                        .sensor_model
                        .measure(&me.pose, &self.config.origin, &mut rng);
                let (single, cooperative) = {
                    let _perceive_span = cooper_telemetry::span!("fleet.perceive");
                    let single = pipeline.perceive_single(&me.scan).len();
                    let cooperative = pipeline
                        .perceive_cooperative(&me.scan, &my_estimate, &packets, &self.config.origin)
                        .expect("freshly built packets always decode")
                        .detections
                        .len();
                    (single, cooperative)
                };
                timings.perceive_us += perceive_start.elapsed().as_micros() as u64;

                if cooper_telemetry::is_enabled() {
                    cooper_telemetry::counter_add("fleet.bytes_received", bytes_received as u64);
                    cooper_telemetry::emit(
                        cooper_telemetry::TelemetryEvent::new("fleet.vehicle_step")
                            .with("step", step)
                            .with("vehicle", self.vehicles[i].id)
                            .with("single_detections", single)
                            .with("cooperative_detections", cooperative)
                            .with("packets_received", packets.len())
                            .with("bytes_received", bytes_received),
                    );
                }
                per_vehicle.push(VehicleStepReport {
                    vehicle_id: self.vehicles[i].id,
                    single_detections: single,
                    cooperative_detections: cooperative,
                    packets_received: packets.len(),
                    bytes_received,
                });
            }
            reports.push(FleetStepReport {
                step,
                per_vehicle,
                timings,
            });
            world = world.advanced(self.config.step_duration_s);
        }
        (reports, stats)
    }
}

/// Builds a straight constant-speed trajectory: `steps` poses advancing
/// `speed_m_per_step` along the heading of `start`.
pub fn straight_trajectory(start: Pose, speed_m_per_step: f64, steps: usize) -> Vec<Pose> {
    let dir = cooper_geometry::Vec3::new(start.attitude.yaw.cos(), start.attitude.yaw.sin(), 0.0);
    (0..steps)
        .map(|s| {
            Pose::new(
                start.position + dir * (speed_m_per_step * s as f64),
                start.attitude,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Vec3};
    use cooper_lidar_sim::scenario;
    use cooper_spod::{SpodConfig, SpodDetector};

    fn pipeline() -> CooperPipeline {
        CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
    }

    fn small_fleet() -> FleetSimulation {
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: straight_trajectory(scene.observers[0], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: straight_trajectory(scene.observers[1], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        FleetSimulation::new(scene.world, vehicles, FleetConfig::default())
    }

    #[test]
    fn run_produces_reports_per_step_and_vehicle() {
        let sim = small_fleet();
        let (reports, stats) = sim.run(&pipeline(), 3);
        assert_eq!(reports.len(), 3);
        for (step, report) in reports.iter().enumerate() {
            assert_eq!(report.step, step);
            assert_eq!(report.per_vehicle.len(), 2);
            for v in &report.per_vehicle {
                assert_eq!(v.packets_received, 1, "both vehicles are in range");
                assert!(v.bytes_received > 0);
            }
        }
        assert_eq!(stats.connection_steps.get(&(1, 2)), Some(&3));
        assert!(stats.total_bytes > 0);
        assert_eq!(stats.longest_connection().unwrap().0, (1, 2));
        for report in &reports {
            assert!(
                report.timings.scan_us > 0,
                "scanning two vehicles takes measurable time"
            );
            assert_eq!(
                report.timings.total_us(),
                report.timings.scan_us + report.timings.exchange_us + report.timings.perceive_us
            );
        }
    }

    #[test]
    fn out_of_range_vehicles_do_not_exchange() {
        let scene = scenario::tj_scenario_1();
        let far_pose = Pose::new(Vec3::new(500.0, 500.0, 1.9), Attitude::level());
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![far_pose],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
        ];
        let sim = FleetSimulation::new(scene.world, vehicles, FleetConfig::default());
        let (reports, stats) = sim.run(&pipeline(), 1);
        for v in &reports[0].per_vehicle {
            assert_eq!(v.packets_received, 0);
            assert_eq!(v.bytes_received, 0);
        }
        assert!(stats.connection_steps.is_empty());
    }

    #[test]
    fn trajectory_clamps_at_end() {
        let v = FleetVehicle {
            id: 1,
            trajectory: straight_trajectory(Pose::origin(), 2.0, 3),
            beams: BeamModel::vlp16(),
        };
        assert_eq!(v.pose_at(2), v.pose_at(99));
        assert!((v.pose_at(1).position.x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn straight_trajectory_follows_heading() {
        let start = Pose::new(Vec3::ZERO, Attitude::from_yaw(std::f64::consts::FRAC_PI_2));
        let t = straight_trajectory(start, 3.0, 3);
        assert!((t[2].position.y - 6.0).abs() < 1e-12);
        assert!(t[2].position.x.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate vehicle ids")]
    fn duplicate_ids_rejected() {
        let scene = scenario::tj_scenario_1();
        let v = FleetVehicle {
            id: 1,
            trajectory: vec![scene.observers[0]],
            beams: BeamModel::vlp16(),
        };
        let _ = FleetSimulation::new(scene.world, vec![v.clone(), v], FleetConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn empty_fleet_rejected() {
        let _ = FleetSimulation::new(World::new(), vec![], FleetConfig::default());
    }
}
