//! Multi-vehicle fleet simulation.
//!
//! The paper frames Cooper as "an entry to a broader platform for CAV"
//! where "vehicles on adjacent districts or crowded zones can keep
//! connection for a longer duration, thereby enhancing cooperative
//! sensing" (§II-A). This module provides the time-stepped multi-vehicle
//! loop behind that vision: every step, each vehicle scans, broadcasts
//! an ROI-filtered exchange packet to every cooperator within radio
//! range, fuses what it received and runs detection — while the
//! simulation tracks per-pair connection durations and exchanged bytes.
//!
//! # Execution model
//!
//! Each step runs as three phases with barriers between them:
//!
//! 1. **Scan/encode (parallel)** — per vehicle: LiDAR scan, pose
//!    measurement, ROI filter, packet build. Independent across
//!    vehicles, mapped over a [`cooper_exec::Executor`].
//! 2. **Exchange (serial)** — connection tracking and per-transfer
//!    delivery decisions through the [`ChannelModel`]. Serial by
//!    design: a shared medium's answer for one transfer depends on
//!    every transfer before it, so delivery must observe one global
//!    order (step, then receiver id, then sender order).
//! 3. **Fuse/detect (parallel)** — per vehicle: fuse the delivered
//!    packets and run SPOD, again mapped over the executor.
//!
//! Determinism contract: the reports (everything except wall-clock
//! [`StepTimings`]) are **bit-identical at any
//! [`FleetConfig::threads`] setting**. Randomness is drawn from
//! per-(vehicle, step) derived RNG streams rather than one sequential
//! generator, so no vehicle's draw depends on who computed before it.

use std::collections::BTreeMap;

use cooper_exec::Executor;
use cooper_geometry::{GpsFix, Pose, RigidTransform, Vec3};
use cooper_lidar_sim::{
    BeamModel, FaultInjector, FaultPlan, GpsImuModel, LidarScanner, PoseEstimate, World,
};
use cooper_pointcloud::roi::{blind_sectors, extract_roi, BlindSector, RoiCategory, StaticMap};
use cooper_pointcloud::{
    DeltaDecoder, DeltaEncoder, FeatureFrame, FrameKind, PointCloud, CRC_TRAILER_BYTES,
};
use cooper_spod::{filter_bev_roi, DetectOptions, DetectScratch};
use cooper_telemetry::names as telemetry_names;
use cooper_telemetry::trace::stage as trace_stage;
use cooper_telemetry::TraceId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::channel::{ChannelModel, Delivery, PerfectChannel, TransferCtx};
use crate::consistency::{check_consistency, ConsistencyConfig, FreeSpaceIndex, SenderHistory};
use crate::governor::{GovernorConfig, GovernorPolicy, GovernorVerdict, TransferCandidate};
use crate::tracking::{Tracker, TrackerStepSummary};
use crate::trust::{TrustConfig, TrustLedger, TrustTransition, TrustVehicleStats};
use crate::{
    alignment_transform, CooperError, CooperPipeline, Detection, ExchangePacket, GuardDecision,
    PerceptionCache, TransferOffer,
};

/// One vehicle in the fleet: an id, a pose trajectory (one pose per
/// step) and its LiDAR unit.
#[derive(Debug, Clone)]
pub struct FleetVehicle {
    /// Vehicle identifier, unique in the fleet.
    pub id: u32,
    /// Pose per simulation step; the vehicle holds its last pose when
    /// the trajectory is shorter than the run.
    pub trajectory: Vec<Pose>,
    /// The vehicle's LiDAR.
    pub beams: BeamModel,
}

impl FleetVehicle {
    /// The pose at `step` (clamped to the trajectory end).
    ///
    /// # Panics
    ///
    /// Panics when the trajectory is empty.
    pub fn pose_at(&self, step: usize) -> Pose {
        assert!(
            !self.trajectory.is_empty(),
            "vehicle {} has no trajectory",
            self.id
        );
        self.trajectory[step.min(self.trajectory.len() - 1)]
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Vehicles exchange only when within this planar distance.
    pub comms_range_m: f64,
    /// ROI category applied to broadcast frames.
    pub roi: RoiCategory,
    /// GPS/IMU model producing the exchanged pose estimates.
    pub sensor_model: GpsImuModel,
    /// GPS anchor of the shared frame.
    pub origin: GpsFix,
    /// Base seed for scan noise and measurement streams.
    pub seed: u64,
    /// Wall-clock duration of one step, seconds; dynamic entities
    /// (non-zero [`cooper_lidar_sim::Entity::velocity`]) advance by this
    /// much between steps.
    pub step_duration_s: f64,
    /// Worker threads for the parallel phases. `None` uses the process
    /// default ([`cooper_exec::default_threads`]); the reports are
    /// bit-identical for every setting.
    pub threads: Option<usize>,
    /// Pose faults injected into the exchanged (and receive-side) pose
    /// estimates — GPS drift and bias, IMU yaw bias, frozen poses,
    /// stale scan stamps. `None` (or an empty plan) runs fault-free.
    /// Faults are drawn from per-(vehicle, step) streams, so faulted
    /// runs keep the bit-identical-at-any-thread-count contract.
    /// Adversarial kinds (`ghost:`, `replay`, `corrupt:`) tamper with
    /// the vehicle's *broadcast* content instead of its measurements.
    pub fault_plan: Option<FaultPlan>,
    /// Content-integrity and sender-trust layer. `None` (the default)
    /// runs exactly as before. When set, senders CRC-frame their
    /// payloads and receivers verify them on arrival, every received
    /// cloud passes the [`crate::consistency`] guard before fusion, and
    /// a per-(receiver, sender) [`TrustLedger`] quarantines peers whose
    /// packets keep failing — their transfers are skipped outright (the
    /// governor never prices their candidates) until probation
    /// re-admits them.
    pub trust: Option<TrustGuardConfig>,
}

/// Configuration of the integrity-and-trust layer
/// ([`FleetConfig::trust`]): the trust state machine plus the
/// content-consistency guard it draws violations from.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrustGuardConfig {
    /// Trust state-machine thresholds.
    pub trust: TrustConfig,
    /// Consistency-guard tuning.
    pub consistency: ConsistencyConfig,
}

impl TrustGuardConfig {
    /// Checks both halves of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.trust.validate()?;
        self.consistency.validate()
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            comms_range_m: 150.0,
            roi: RoiCategory::FullFrame,
            sensor_model: GpsImuModel::realistic(),
            origin: GpsFix::new(33.2075, -97.1526, 190.0),
            seed: 0,
            step_duration_s: 1.0,
            threads: None,
            fault_plan: None,
            trust: None,
        }
    }
}

/// Salts separating the independent RNG streams derived per
/// (vehicle, step): the transmit-side pose measurement and the
/// receive-side pose measurement.
const TX_MEASURE_STREAM: u64 = 0x7A5E_11DA_7E00_0001;
const RX_MEASURE_STREAM: u64 = 0x7A5E_11DA_7E00_0002;
/// Stream salt for at-source payload bit flips
/// ([`cooper_lidar_sim::FaultKind::PayloadCorruption`]).
const TX_CORRUPT_STREAM: u64 = 0x7A5E_11DA_7E00_0003;

/// Converts a guard residual in metres to the millimetre fixed-point
/// representation carried by
/// [`TransportDropReason::AlignmentRejected`]; non-finite or
/// out-of-range residuals saturate to `u32::MAX`.
fn residual_to_mm(residual_m: f64) -> u32 {
    let mm = (residual_m * 1000.0).round();
    if mm.is_finite() && (0.0..u32::MAX as f64).contains(&mm) {
        mm as u32
    } else {
        u32::MAX
    }
}

/// Derives the seed of one (vehicle, step, salt) RNG stream from the
/// fleet seed — a SplitMix64 finalizer over the combined identity.
/// Every stream is independent of execution order, which is what makes
/// the parallel phases bit-identical to the serial ones.
fn stream_seed(seed: u64, vehicle_id: u32, step: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ salt
        ^ u64::from(vehicle_id).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies the trust layer's CRC trailer and any active at-source
/// corruption fault to an outgoing packet, in that order — flips land
/// *after* the checksum is computed, so a corrupting sender's frames
/// fail the receiver's integrity check instead of carrying a fresh
/// valid CRC over garbage.
fn finalize_tx_packet(
    packet: ExchangePacket,
    trust_on: bool,
    corrupt_rate: f64,
    seed: u64,
    vehicle_id: u32,
    step: usize,
) -> Result<ExchangePacket, CooperError> {
    let packet = if trust_on {
        packet.with_integrity()?
    } else {
        packet
    };
    if corrupt_rate > 0.0 {
        Ok(packet.with_flipped_payload_bytes(
            corrupt_rate,
            stream_seed(seed, vehicle_id, step, TX_CORRUPT_STREAM),
        ))
    } else {
        Ok(packet)
    }
}

/// Per-vehicle outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleStepReport {
    /// The vehicle.
    pub vehicle_id: u32,
    /// Cars detected from the vehicle's own scan alone.
    pub single_detections: usize,
    /// Cars detected after fusing all received packets.
    pub cooperative_detections: usize,
    /// Packets delivered to this vehicle this step (salvaged partial
    /// deliveries included).
    pub packets_received: usize,
    /// Received packets that failed to decode and were excluded from
    /// fusion.
    pub packets_dropped: usize,
    /// Of the packets received, how many arrived as salvaged partial
    /// deliveries (deadline expired mid-transfer; only the contiguous
    /// prefix was fused).
    pub packets_partial: usize,
    /// Exchange bytes received this step.
    pub bytes_received: usize,
    /// Confirmed tracks held by this vehicle's tracker after the step's
    /// update. Zero when the pipeline has no tracker
    /// ([`CooperPipeline::with_tracker`]).
    pub confirmed_tracks: usize,
    /// Of the confirmed tracks, how many are coasting — held alive
    /// through a momentary miss instead of being re-detected this step.
    /// Zero when the pipeline has no tracker.
    pub coasting_tracks: usize,
    /// Packets this vehicle excluded for integrity or content reasons
    /// this step — CRC failures, alignment rejections, consistency
    /// violations — each charged to its sender as a trust violation.
    /// Zero when the trust layer is off ([`FleetConfig::trust`]).
    pub trust_violations: u32,
    /// Senders this vehicle currently holds in quarantine (after this
    /// step's trust update). Zero when the trust layer is off.
    pub quarantined_peers: u32,
}

/// Why an in-range transfer the channel was asked about did not arrive
/// whole — the fleet-level record of graceful degradation under a lossy
/// transport.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportDropReason {
    /// The delivery deadline expired before any usable prefix arrived;
    /// the receiver fell back to ego-only perception for this sender.
    DeadlineExceeded,
    /// The deadline expired mid-transfer: the contiguous prefix was
    /// salvaged and fused, the tail was lost. Use
    /// [`TransportDropReason::fraction`] for the delivered ratio.
    PartialDelivery {
        /// Contiguous leading wire bytes that arrived.
        delivered_bytes: usize,
        /// Total wire bytes of the packet.
        total_bytes: usize,
    },
    /// A partial delivery arrived but its prefix could not be decoded
    /// into a usable packet (not even the headers survived).
    SalvageFailed {
        /// Stable error label ([`crate::CooperError::kind`]).
        kind: String,
    },
    /// The bandwidth governor skipped the transfer: no candidate
    /// encoding — not even the narrowest ROI as a delta frame — fit the
    /// channel's remaining air-time budget. Nothing was put on the wire.
    BudgetExceeded,
    /// The packet arrived but the receiver's alignment guard could not
    /// verify (or ICP-repair) the claimed transform; the cloud was
    /// excluded from fusion and the receiver degraded to ego-only
    /// perception for this sender.
    AlignmentRejected {
        /// Post-refinement matched residual, millimetres
        /// (`u32::MAX` when no verifiable overlap existed at all).
        residual_mm: u32,
    },
    /// The link layer delivered the payload damaged — bit flips or a
    /// mid-frame truncation past ARQ's clean prefix; nothing of it was
    /// usable and the receiver fell back to ego-only perception for
    /// this sender.
    Corrupted,
    /// The packet arrived whole but its CRC-32 integrity trailer failed
    /// verification at the receiver; the content was discarded before
    /// decode and the failure charged to the sender as a trust
    /// violation.
    IntegrityFailed,
    /// The receiver has the sender quarantined
    /// ([`crate::TrustLedger`]): the transfer was skipped before
    /// anything was priced or put on the air.
    Quarantined,
    /// The consistency guard ([`crate::consistency`]) flagged the
    /// packet's content as physically impossible — ghost points in
    /// ego-observed free space, a teleporting centroid, or a replayed
    /// stamp — and excluded it from fusion.
    ConsistencyRejected {
        /// Remote points found in ego-observed free space (zero for
        /// teleport and replay verdicts).
        ghost_points: u32,
    },
}

impl TransportDropReason {
    /// Fraction of the packet that arrived, in `[0, 1]` (zero for
    /// everything but partial deliveries).
    pub fn fraction(&self) -> f64 {
        match self {
            TransportDropReason::PartialDelivery {
                delivered_bytes,
                total_bytes,
            } => {
                if *total_bytes == 0 {
                    0.0
                } else {
                    *delivered_bytes as f64 / *total_bytes as f64
                }
            }
            _ => 0.0,
        }
    }
}

/// One degraded transfer of a step: who was sending to whom, and what
/// became of it. Ordered the same way delivery decisions are made
/// (receiver id order, then sender order), so the list is part of the
/// deterministic report surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportDrop {
    /// Transmitting vehicle's id.
    pub from: u32,
    /// Receiving vehicle's id.
    pub to: u32,
    /// What happened to the transfer.
    pub reason: TransportDropReason,
}

/// A broadcast that never happened: the vehicle's scan failed to encode
/// into an exchange packet this step. The vehicle still perceives on
/// its own scan; its cooperators simply receive nothing from it — the
/// simulation-level analogue of a [`crate::PacketDrop`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodeDrop {
    /// The vehicle whose broadcast failed.
    pub vehicle_id: u32,
    /// Stable error label ([`crate::CooperError::kind`]).
    pub kind: String,
}

/// Wall-clock cost of one step's phases, microseconds. Filled on every
/// run, telemetry enabled or not — the measurement is two `Instant`
/// reads per phase. Timings are the one part of a report that is *not*
/// covered by the determinism contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTimings {
    /// Scanning and broadcast-packet building across the fleet.
    pub scan_us: u64,
    /// Connection tracking and packet delivery.
    pub exchange_us: u64,
    /// Single and cooperative perception across the fleet.
    pub perceive_us: u64,
}

impl StepTimings {
    /// Total measured time of the step's phases.
    pub fn total_us(&self) -> u64 {
        self.scan_us + self.exchange_us + self.perceive_us
    }
}

/// The outcome of one simulation step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStepReport {
    /// Step index.
    pub step: usize,
    /// One entry per vehicle, in fleet order.
    pub per_vehicle: Vec<VehicleStepReport>,
    /// Broadcasts that failed to encode this step, in fleet order.
    pub encode_drops: Vec<EncodeDrop>,
    /// Transfers that missed their deadline or arrived partially this
    /// step (in delivery-decision order), followed by clouds the
    /// receivers' alignment guards rejected (in fleet order, then
    /// packet order).
    pub transport_drops: Vec<TransportDrop>,
    /// Where this step's wall-clock time went.
    pub timings: StepTimings,
}

impl FleetStepReport {
    /// The deterministic portion of the report — everything except the
    /// wall-clock timings. Two runs of the same simulation (at any
    /// thread count) produce equal values here; use this in divergence
    /// checks instead of comparing whole reports.
    pub fn deterministic_view(
        &self,
    ) -> (usize, &[VehicleStepReport], &[EncodeDrop], &[TransportDrop]) {
        (
            self.step,
            &self.per_vehicle,
            &self.encode_drops,
            &self.transport_drops,
        )
    }
}

/// Aggregate statistics of a completed run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Steps during which each (low id, high id) pair was in radio
    /// range — the paper's "connection duration". Ordered map, so
    /// iteration (and serialization) is deterministic.
    pub connection_steps: BTreeMap<(u32, u32), usize>,
    /// Total exchange bytes moved over the whole run.
    pub total_bytes: u64,
    /// Per sending vehicle, wire bytes the bandwidth governor avoided
    /// putting on the air relative to an ungoverned v1 full-frame
    /// exchange — ROI narrowing, delta encoding and budget skips all
    /// count. Empty for ungoverned runs. Ordered map, so iteration is
    /// deterministic.
    pub bytes_saved: BTreeMap<u32, u64>,
    /// Per receiving vehicle, what its alignment guard concluded over
    /// the whole run. Empty when the pipeline has no guard (or nothing
    /// was received). Ordered map, so iteration is deterministic.
    pub alignment: BTreeMap<u32, AlignmentVehicleStats>,
    /// Per vehicle, what its tracker did over the whole run. Empty when
    /// the pipeline has no tracker
    /// ([`CooperPipeline::with_tracker`]). Ordered map, so iteration is
    /// deterministic.
    pub tracks: BTreeMap<u32, TrackVehicleStats>,
    /// Per receiving vehicle, its trust-layer activity over the whole
    /// run — violations charged, quarantines imposed, transfers
    /// blocked, senders reinstated. Empty when the trust layer is off
    /// ([`FleetConfig::trust`]). Ordered map, so iteration is
    /// deterministic.
    pub trust: BTreeMap<u32, TrustVehicleStats>,
}

impl FleetStats {
    /// The longest-lived connection, if any pair ever connected. Ties
    /// go to the lowest-id pair, so the answer is deterministic.
    pub fn longest_connection(&self) -> Option<((u32, u32), usize)> {
        self.connection_steps
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&pair, &steps)| (pair, steps))
    }
}

/// One receiver's aggregate alignment-guard outcomes over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AlignmentVehicleStats {
    /// Received clouds the guard scored.
    pub evaluated: u64,
    /// Clouds accepted only after ICP refinement.
    pub refined: u64,
    /// Clouds rejected (unverifiable or unrepairable) and excluded
    /// from fusion.
    pub rejected: u64,
    /// Sum of finite pre-refinement residuals, metres — divide by
    /// [`AlignmentVehicleStats::evaluated`] for the mean.
    pub residual_before_m_sum: f64,
    /// Sum of finite post-refinement residuals, metres.
    pub residual_after_m_sum: f64,
}

impl AlignmentVehicleStats {
    /// Folds one pipeline verdict into the aggregate.
    fn absorb(&mut self, record: &crate::AlignmentRecord) {
        self.evaluated += 1;
        match record.decision {
            GuardDecision::AcceptedRefined => self.refined += 1,
            GuardDecision::Rejected | GuardDecision::InsufficientOverlap => self.rejected += 1,
            GuardDecision::AcceptedClean => {}
        }
        if record.residual_before_m.is_finite() {
            self.residual_before_m_sum += record.residual_before_m;
        }
        if record.residual_after_m.is_finite() {
            self.residual_after_m_sum += record.residual_after_m;
        }
    }
}

/// One vehicle's aggregate tracker activity over a run — what happened
/// to its cooperative detections once the temporal layer smoothed them
/// across steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackVehicleStats {
    /// Cooperative detections fed into the tracker.
    pub detections_in: u64,
    /// Detections associated with an existing track.
    pub matched: u64,
    /// New tentative tracks spawned from unmatched detections.
    pub spawned: u64,
    /// Tracks promoted to confirmed.
    pub promoted: u64,
    /// Confirmed tracks that coasted through a missed step.
    pub coasted: u64,
    /// Tracks dropped after exhausting their miss budget.
    pub dropped: u64,
}

impl TrackVehicleStats {
    /// Folds one step's tracker summary into the aggregate.
    fn absorb(&mut self, detections_in: usize, summary: &TrackerStepSummary) {
        self.detections_in += detections_in as u64;
        self.matched += summary.matched as u64;
        self.spawned += summary.spawned as u64;
        self.promoted += summary.promoted as u64;
        self.coasted += summary.coasted as u64;
        self.dropped += summary.dropped as u64;
    }
}

/// A time-stepped multi-vehicle cooperative-perception simulation.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    world: World,
    vehicles: Vec<FleetVehicle>,
    config: FleetConfig,
}

/// What phase 1 produces per vehicle: the raw scan, the true pose, the
/// measured pose estimate, the broadcast packet (`None` when encoding
/// failed, or always in governed mode where packets are built per
/// transfer in phase 2) and, in governed mode, the vehicle's blind
/// sectors (its demand as a receiver).
struct Broadcast {
    scan: PointCloud,
    pose: Pose,
    estimate: PoseEstimate,
    /// Frame stamp the vehicle puts on its packets — the current step,
    /// unless a stale-scan fault re-stamped it.
    stamp: u32,
    packet: Option<ExchangePacket>,
    blind: Vec<BlindSector>,
    /// ROI-filtered quantized BEV feature frames per [`roi_index`],
    /// prepared in phase 1 when the governed config enables the feature
    /// tier ([`GovernorConfig::features`]); `None` otherwise.
    feature_frames: [Option<FeatureFrame>; 3],
    /// The scan as the vehicle *transmits* it, when adversarial fault
    /// kinds made it diverge from [`Broadcast::scan`]: a replayed
    /// capture, ghost clusters appended, or both. `None` = honest.
    tx_scan: Option<PointCloud>,
    /// Estimate attached to outgoing packets (the replayed capture's
    /// under [`cooper_lidar_sim::FaultKind::ScanReplay`]).
    tx_estimate: PoseEstimate,
    /// Stamp attached to outgoing packets.
    tx_stamp: u32,
    /// At-source payload bit-flip rate applied to outgoing packets;
    /// zero when no corruption fault is active.
    tx_corrupt_rate: f64,
}

impl Broadcast {
    /// The scan the vehicle broadcasts — tampered when an adversarial
    /// fault is active, the honest sensor scan otherwise.
    fn tx_scan(&self) -> &PointCloud {
        self.tx_scan.as_ref().unwrap_or(&self.scan)
    }
}

/// One unit of phase-3 work, indexed by vehicle position: the vehicle's
/// ego-only detection, or its cooperative fuse-and-detect. Splitting the
/// two roughly doubles the parallelism available to the fuse/detect
/// phase (2n independent detector runs instead of n paired ones), which
/// is where nearly all of a step's wall-clock time goes.
#[derive(Debug, Clone, Copy)]
enum PerceiveTask {
    Single(usize),
    Cooperative(usize),
}

/// What one [`PerceiveTask`] produced. The cooperative variant's report
/// carries a placeholder `single_detections`; the serial merge loop
/// fills it from the matching [`PerceiveTaskOutput::Single`] result.
enum PerceiveTaskOutput {
    Single(usize),
    Cooperative {
        report: VehicleStepReport,
        /// The cooperative detections themselves — the serial merge
        /// loop feeds them to the vehicle's tracker (when the pipeline
        /// has one) in fleet order, keeping track state deterministic.
        detections: Vec<Detection>,
        align_drops: Vec<TransportDrop>,
        align_stats: AlignmentVehicleStats,
        /// Packets the consistency guard excluded from fusion (trust
        /// layer on only).
        consistency_drops: Vec<TransportDrop>,
        /// Fresh per-sender motion histories, applied to the shared map
        /// by the serial merge loop.
        history_updates: Vec<((u32, u32), SenderHistory)>,
    },
}

/// Per-vehicle transmit-side codec state of a governed run: the static
/// background map and the keyframe/delta reference, both persistent
/// across steps.
struct TxCodecState {
    map: StaticMap,
    enc: DeltaEncoder,
}

/// The mutable state of a governed exchange, threaded through
/// [`FleetSimulation::run_loop`].
struct GovernedLoop<'a> {
    policy: &'a mut dyn GovernorPolicy,
    config: GovernorConfig,
    /// Indexed like `vehicles`.
    tx_states: Vec<TxCodecState>,
    /// Per receiver index, one stateful wire-format decoder per sender
    /// id — reconstructs delta streams back into full clouds.
    rx_decoders: Vec<BTreeMap<u32, DeltaDecoder>>,
}

/// One sender's prepared content for a governed step: the candidate
/// menu plus lazily built packets.
struct SenderFrame {
    /// `false` when the probe build failed (broken pose estimate): the
    /// sender broadcasts nothing this step.
    ok: bool,
    keyframe_due: bool,
    background_subtracted: bool,
    /// Wire size of the ungoverned v1 full-frame packet — the baseline
    /// `bytes_saved` is measured against.
    baseline_bytes: usize,
    /// ROI-filtered content per `[roi_index][kind_index]`.
    clouds: [[Option<PointCloud>; 2]; 3],
    /// Packets built on first use per `[roi_index][kind_index]`.
    packets: [[Option<ExchangePacket>; 2]; 3],
    /// Feature-tier (v3) packets built on first use per `[roi_index]`;
    /// their content lives in [`Broadcast::feature_frames`].
    feature_packets: [Option<ExchangePacket>; 3],
    candidates: Vec<TransferCandidate>,
}

fn roi_index(roi: RoiCategory) -> usize {
    match roi {
        RoiCategory::FullFrame => 0,
        RoiCategory::FrontFov120 => 1,
        RoiCategory::ForwardOneWay => 2,
    }
}

fn kind_index(kind: FrameKind) -> usize {
    match kind {
        FrameKind::Keyframe => 0,
        FrameKind::Delta => 1,
        FrameKind::Features => {
            unreachable!("feature frames are stored per ROI, outside the point kind arrays")
        }
    }
}

/// The mutable per-step outputs phase 2 writes, bundled so the governed
/// and ungoverned exchange paths share one signature.
struct ExchangeOutputs<'a> {
    encode_drops: &'a mut Vec<EncodeDrop>,
    inboxes: &'a mut [Vec<ExchangePacket>],
    /// Parallel to `inboxes`: `true` when the entry was reconstructed
    /// from a delta stream and therefore mixes points captured at the
    /// keyframe step with the current one. The consistency guard skips
    /// its free-space sweep for such composites — a moving sender's
    /// smeared keyframe points sit in genuinely free space.
    composite: &'a mut [Vec<bool>],
    bytes_received: &'a mut [usize],
    partial_counts: &'a mut [usize],
    transport_drops: &'a mut Vec<TransportDrop>,
    stats: &'a mut FleetStats,
}

impl FleetSimulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics when `vehicles` is empty, any trajectory is empty, or ids
    /// collide.
    pub fn new(world: World, vehicles: Vec<FleetVehicle>, config: FleetConfig) -> Self {
        assert!(!vehicles.is_empty(), "fleet must have at least one vehicle");
        for v in &vehicles {
            assert!(
                !v.trajectory.is_empty(),
                "vehicle {} has no trajectory",
                v.id
            );
        }
        let mut ids: Vec<u32> = vehicles.iter().map(|v| v.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), vehicles.len(), "duplicate vehicle ids");
        FleetSimulation {
            world,
            vehicles,
            config,
        }
    }

    /// The fleet.
    pub fn vehicles(&self) -> &[FleetVehicle] {
        &self.vehicles
    }

    /// Runs `steps` simulation steps, returning per-step reports and
    /// aggregate statistics. Every exchange is delivered (a
    /// [`PerfectChannel`]); use [`FleetSimulation::run_with_channel`]
    /// to model a lossy or contended medium.
    pub fn run(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
    ) -> (Vec<FleetStepReport>, FleetStats) {
        self.run_with_channel(pipeline, steps, &mut PerfectChannel)
    }

    /// Like [`FleetSimulation::run`], with delivery decided by a
    /// [`ChannelModel`]: for each directed in-range transfer the model
    /// receives a [`TransferCtx`] and returns whether the packet
    /// arrives. `cooper-v2x` implements the trait for its shared-medium
    /// and scheduler types; closures with the signature
    /// `FnMut(usize, u32, u32, usize) -> bool` also work.
    ///
    /// Delivery is consulted serially in deterministic order — by
    /// step, then receiver id order, then sender order — so stateful
    /// channels see the same sequence at any thread count.
    pub fn run_with_channel(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
        channel: &mut dyn ChannelModel,
    ) -> (Vec<FleetStepReport>, FleetStats) {
        self.run_loop(pipeline, steps, channel, None)
    }

    /// Like [`FleetSimulation::run_with_channel`], with phase-2 delivery
    /// governed by a [`GovernorPolicy`]: instead of broadcasting one
    /// pre-built ROI packet to every cooperator, each directed transfer
    /// offers the policy a menu of encodings — ROI category × frame
    /// kind, priced in wire bytes and air time — together with the
    /// receiver's blind sectors and the channel's remaining air-time
    /// headroom. The policy picks one (or skips, recorded as a
    /// [`TransportDropReason::BudgetExceeded`]).
    ///
    /// With [`GovernorConfig::delta_encode`] enabled, senders maintain a
    /// [`StaticMap`] and keyframe/delta reference across steps and
    /// encode wire-format **v2** frames (background subtracted, delta
    /// against the last keyframe on a [`GovernorConfig::keyframe_every`]
    /// cadence); receivers reconstruct the stream with per-sender
    /// [`DeltaDecoder`] state before fusion. Bytes avoided relative to
    /// the ungoverned v1 full-frame exchange accumulate per sender in
    /// [`FleetStats::bytes_saved`].
    ///
    /// The determinism contract holds: the policy is consulted serially
    /// in delivery order, so reports stay bit-identical at any thread
    /// count (given a deterministic policy).
    ///
    /// # Panics
    ///
    /// Panics when `governor` fails [`GovernorConfig::validate`].
    pub fn run_governed(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
        channel: &mut dyn ChannelModel,
        policy: &mut dyn GovernorPolicy,
        governor: &GovernorConfig,
    ) -> (Vec<FleetStepReport>, FleetStats) {
        if let Err(message) = governor.validate() {
            panic!("invalid governor config: {message}");
        }
        let governed = GovernedLoop {
            policy,
            config: governor.clone(),
            tx_states: self
                .vehicles
                .iter()
                .map(|_| TxCodecState {
                    map: StaticMap::new(governor.grid, governor.static_threshold),
                    enc: DeltaEncoder::new(governor.grid, governor.keyframe_every),
                })
                .collect(),
            rx_decoders: self.vehicles.iter().map(|_| BTreeMap::new()).collect(),
        };
        self.run_loop(pipeline, steps, channel, Some(governed))
    }

    fn run_loop(
        &self,
        pipeline: &CooperPipeline,
        steps: usize,
        channel: &mut dyn ChannelModel,
        mut governed: Option<GovernedLoop<'_>>,
    ) -> (Vec<FleetStepReport>, FleetStats) {
        let _run_span = cooper_telemetry::span!(telemetry_names::SPAN_FLEET_RUN);
        let governed_cfg = governed.as_ref().map(|g| g.config.clone());
        let injector = self
            .config
            .fault_plan
            .as_ref()
            .filter(|plan| !plan.is_empty())
            .map(|plan| {
                FaultInjector::new(
                    plan.clone(),
                    self.config.sensor_model,
                    self.config.origin,
                    self.config.seed,
                )
            });
        if let Some(tg) = &self.config.trust {
            if let Err(message) = tg.validate() {
                panic!("invalid trust config: {message}");
            }
        }
        let trust_guard = self.config.trust;
        let executor = Executor::new(self.config.threads);
        let mut reports = Vec::with_capacity(steps);
        let mut stats = FleetStats::default();
        let mut world = self.world.clone();
        // Trust-layer state, all owned here and advanced serially: the
        // per-(receiver, sender) ledger, the consistency guard's
        // per-pair histories (read in parallel phase 3, written in the
        // serial merge), and per-vehicle replayed-broadcast captures
        // (read in parallel phase 1, written serially after it).
        let mut trust_ledger = TrustLedger::new();
        let mut histories: BTreeMap<(u32, u32), SenderHistory> = BTreeMap::new();
        let mut replay_cache: Vec<Option<(usize, PointCloud, PoseEstimate, u32)>> =
            self.vehicles.iter().map(|_| None).collect();
        // Per-vehicle temporal state, persistent across steps: a
        // tracker when the pipeline enables track-level fusion, and a
        // perception cache when it enables incremental perception. Both
        // are indexed like `vehicles`; each cache is touched only by
        // its own vehicle's phase-3 tasks, so the parallel fan-out
        // stays deterministic.
        let mut trackers: Vec<Option<Tracker>> = self
            .vehicles
            .iter()
            .map(|_| pipeline.make_tracker())
            .collect();
        let caches: Vec<PerceptionCache> = if pipeline.incremental() {
            self.vehicles
                .iter()
                .map(|_| PerceptionCache::new())
                .collect()
        } else {
            Vec::new()
        };

        for step in 0..steps {
            let _step_span = cooper_telemetry::span!(telemetry_names::SPAN_FLEET_STEP);
            let mut timings = StepTimings::default();

            // Phase 1 (parallel): every vehicle scans, measures its
            // pose and builds its broadcast packet.
            let scan_start = std::time::Instant::now();
            let phase1: Vec<(Broadcast, Option<EncodeDrop>)> = {
                let _scan_span = cooper_telemetry::span!(telemetry_names::SPAN_FLEET_SCAN);
                executor.map(&self.vehicles, |idx, v| {
                    let pose = v.pose_at(step);
                    let scanner = LidarScanner::new(v.beams.clone());
                    let scan = scanner.scan(
                        &world,
                        &pose,
                        self.config.seed ^ ((step as u64) << 24) ^ idx as u64,
                    );
                    let mut rng = StdRng::seed_from_u64(stream_seed(
                        self.config.seed,
                        v.id,
                        step,
                        TX_MEASURE_STREAM,
                    ));
                    let clean =
                        self.config
                            .sensor_model
                            .measure(&pose, &self.config.origin, &mut rng);
                    let (estimate, stamp) = match &injector {
                        Some(inj) => {
                            let faulted = inj.measure(v.id, step, &|s| v.pose_at(s), clean);
                            (faulted.estimate, faulted.stamp_step as u32)
                        }
                        None => (clean, step as u32),
                    };
                    // Adversarial sender faults: what this vehicle
                    // *transmits* may diverge from what it senses — a
                    // replayed capture, ghost clusters, or an at-source
                    // corruption rate. The honest `scan`/`estimate`
                    // still drive its own perception in phase 3.
                    let scan_faults = injector
                        .as_ref()
                        .map(|inj| inj.scan_faults(v.id, step))
                        .unwrap_or_default();
                    let mut tx_scan: Option<PointCloud> = None;
                    let mut tx_estimate = estimate;
                    let mut tx_stamp = stamp;
                    if let Some(onset) = scan_faults.replay_from {
                        // The capture happens serially after phase 1, so
                        // the onset step itself still transmits live.
                        if let Some((cached_onset, cached_scan, cached_estimate, cached_stamp)) =
                            replay_cache[idx].as_ref()
                        {
                            if *cached_onset == onset {
                                tx_scan = Some(cached_scan.clone());
                                tx_estimate = *cached_estimate;
                                tx_stamp = *cached_stamp;
                            }
                        }
                    }
                    if scan_faults.ghost_clusters > 0 {
                        if let Some(inj) = &injector {
                            let mut cloud = tx_scan.take().unwrap_or_else(|| scan.clone());
                            for point in inj.ghost_cloud(v.id, step).iter() {
                                cloud.push(*point);
                            }
                            tx_scan = Some(cloud);
                        }
                    }
                    let tx_corrupt_rate = scan_faults.corrupt_rate;
                    if let Some(gcfg) = &governed_cfg {
                        // Governed mode: packets are built per transfer
                        // in phase 2; phase 1 computes this vehicle's
                        // receive-side demand instead — plus, with the
                        // feature tier enabled, the SPOD front half over
                        // its own scan, ROI-clipped per wedge so phase 2
                        // only has to price and wrap the frames.
                        let blind = blind_sectors(
                            &scan,
                            gcfg.blind_bins,
                            gcfg.occluder_range_m,
                            gcfg.min_sector_width_rad,
                            gcfg.ground_z_below_m,
                        );
                        let feature_frames = if gcfg.features {
                            // Sequential internals: the per-vehicle
                            // fan-out of phase 1 already saturates the
                            // workers, exactly like phase 3. Features
                            // describe what the vehicle *transmits*, so
                            // an adversarial tx scan is featurized too.
                            let bev = pipeline.detector().featurize_with(
                                tx_scan.as_ref().unwrap_or(&scan),
                                &DetectOptions::default().with_executor(Executor::sequential()),
                                &mut DetectScratch::new(),
                            );
                            let grid = &pipeline.detector().config().voxel_grid;
                            [
                                RoiCategory::FullFrame,
                                RoiCategory::FrontFov120,
                                RoiCategory::ForwardOneWay,
                            ]
                            .map(|roi| Some(filter_bev_roi(&bev, grid, roi).to_feature_frame()))
                        } else {
                            Default::default()
                        };
                        return (
                            Broadcast {
                                scan,
                                pose,
                                estimate,
                                stamp,
                                packet: None,
                                blind,
                                feature_frames,
                                tx_scan,
                                tx_estimate,
                                tx_stamp,
                                tx_corrupt_rate,
                            },
                            None,
                        );
                    }
                    let roi_scan = extract_roi(tx_scan.as_ref().unwrap_or(&scan), self.config.roi);
                    let built = ExchangePacket::build(v.id, tx_stamp, &roi_scan, tx_estimate)
                        .and_then(|packet| {
                            finalize_tx_packet(
                                packet,
                                trust_guard.is_some(),
                                tx_corrupt_rate,
                                self.config.seed,
                                v.id,
                                step,
                            )
                        });
                    match built {
                        Ok(packet) => (
                            Broadcast {
                                scan,
                                pose,
                                estimate,
                                stamp,
                                packet: Some(packet),
                                blind: Vec::new(),
                                feature_frames: Default::default(),
                                tx_scan,
                                tx_estimate,
                                tx_stamp,
                                tx_corrupt_rate,
                            },
                            None,
                        ),
                        Err(error) => {
                            if cooper_telemetry::is_enabled() {
                                cooper_telemetry::counter_add(
                                    &format!(
                                        "{}{}",
                                        telemetry_names::FLEET_ENCODE_DROP_PREFIX,
                                        error.kind()
                                    ),
                                    1,
                                );
                            }
                            (
                                Broadcast {
                                    scan,
                                    pose,
                                    estimate,
                                    stamp,
                                    packet: None,
                                    blind: Vec::new(),
                                    feature_frames: Default::default(),
                                    tx_scan,
                                    tx_estimate,
                                    tx_stamp,
                                    tx_corrupt_rate,
                                },
                                Some(EncodeDrop {
                                    vehicle_id: v.id,
                                    kind: error.kind().to_string(),
                                }),
                            )
                        }
                    }
                })
            };
            let mut broadcasts = Vec::with_capacity(phase1.len());
            let mut encode_drops = Vec::new();
            for (broadcast, drop) in phase1 {
                broadcasts.push(broadcast);
                encode_drops.extend(drop);
            }
            // Serial replay-capture update: a scan-replay fault captures
            // the sender's broadcast at its onset step and freezes it;
            // phase 1 above reads the capture immutably, so every later
            // step retransmits the same frame with the same stamp.
            if let Some(inj) = &injector {
                for (idx, b) in broadcasts.iter().enumerate() {
                    match inj.scan_faults(self.vehicles[idx].id, step).replay_from {
                        Some(onset) => {
                            let captured = replay_cache[idx].as_ref().map(|(o, ..)| *o);
                            if captured != Some(onset) {
                                replay_cache[idx] =
                                    Some((onset, b.scan.clone(), b.estimate, b.stamp));
                            }
                        }
                        None => replay_cache[idx] = None,
                    }
                }
            }
            timings.scan_us = scan_start.elapsed().as_micros() as u64;

            // Phase 2 (serial): connection tracking and delivery
            // decisions, in one global order the channel can rely on.
            let exchange_start = std::time::Instant::now();
            let mut inboxes: Vec<Vec<ExchangePacket>> = Vec::new();
            inboxes.resize_with(self.vehicles.len(), Vec::new);
            let mut inbox_composite: Vec<Vec<bool>> = vec![Vec::new(); self.vehicles.len()];
            let mut bytes_received = vec![0usize; self.vehicles.len()];
            let mut partial_counts = vec![0usize; self.vehicles.len()];
            let mut transport_drops: Vec<TransportDrop> = Vec::new();
            {
                let _exchange_span = cooper_telemetry::span!(telemetry_names::SPAN_FLEET_EXCHANGE);
                channel.on_step_begin(step);
                for i in 0..self.vehicles.len() {
                    for j in (i + 1)..self.vehicles.len() {
                        let d = broadcasts[i].pose.delta_d(&broadcasts[j].pose);
                        if d <= self.config.comms_range_m {
                            let key = (
                                self.vehicles[i].id.min(self.vehicles[j].id),
                                self.vehicles[i].id.max(self.vehicles[j].id),
                            );
                            *stats.connection_steps.entry(key).or_insert(0) += 1;
                        }
                    }
                }
                let ledger = trust_guard.is_some().then_some(&trust_ledger);
                if let Some(g) = governed.as_mut() {
                    self.exchange_governed(
                        step,
                        channel,
                        ledger,
                        g,
                        &broadcasts,
                        ExchangeOutputs {
                            encode_drops: &mut encode_drops,
                            inboxes: &mut inboxes,
                            composite: &mut inbox_composite,
                            bytes_received: &mut bytes_received,
                            partial_counts: &mut partial_counts,
                            transport_drops: &mut transport_drops,
                            stats: &mut stats,
                        },
                    );
                } else {
                    self.exchange_ungoverned(
                        step,
                        channel,
                        ledger,
                        &broadcasts,
                        ExchangeOutputs {
                            encode_drops: &mut encode_drops,
                            inboxes: &mut inboxes,
                            composite: &mut inbox_composite,
                            bytes_received: &mut bytes_received,
                            partial_counts: &mut partial_counts,
                            transport_drops: &mut transport_drops,
                            stats: &mut stats,
                        },
                    );
                }
            }
            timings.exchange_us = exchange_start.elapsed().as_micros() as u64;

            // Phase 3 (parallel): every vehicle fuses its inbox and
            // detects, fanned out as 2n independent tasks — each
            // vehicle's ego-only detection and its cooperative perceive
            // are separate work items, dynamically claimed by workers
            // that each carry a reusable [`DetectScratch`] arena. The
            // detector runs its internals sequentially here: with 2n
            // tasks the fan-out already saturates the workers, and
            // nested spawning would oversubscribe them. Cooperative
            // tasks also return their alignment-guard fallout (rejection
            // drops and verdict aggregates), merged serially below in
            // fleet order to keep the report surface deterministic.
            let perceive_start = std::time::Instant::now();
            let inner = Executor::sequential();
            let tasks: Vec<PerceiveTask> = (0..broadcasts.len())
                .flat_map(|i| [PerceiveTask::Single(i), PerceiveTask::Cooperative(i)])
                .collect();
            let phase3: Vec<PerceiveTaskOutput> = {
                let _perceive_span = cooper_telemetry::span!(telemetry_names::SPAN_FLEET_PERCEIVE);
                executor.map_in(&tasks, DetectScratch::new, |_, task, scratch| match *task {
                    PerceiveTask::Single(i) => {
                        PerceiveTaskOutput::Single(if pipeline.incremental() {
                            pipeline
                                .perceive_single_cached(
                                    &broadcasts[i].scan,
                                    &inner,
                                    scratch,
                                    &caches[i],
                                )
                                .len()
                        } else {
                            pipeline
                                .perceive_single_with(&broadcasts[i].scan, &inner, scratch)
                                .len()
                        })
                    }
                    PerceiveTask::Cooperative(i) => {
                        let me = &broadcasts[i];
                        let id = self.vehicles[i].id;
                        let mut rng = StdRng::seed_from_u64(stream_seed(
                            self.config.seed,
                            id,
                            step,
                            RX_MEASURE_STREAM,
                        ));
                        let clean = self.config.sensor_model.measure(
                            &me.pose,
                            &self.config.origin,
                            &mut rng,
                        );
                        let my_estimate = match &injector {
                            Some(inj) => {
                                inj.measure(id, step, &|s| self.vehicles[i].pose_at(s), clean)
                                    .estimate
                            }
                            None => clean,
                        };
                        // Consistency guard (trust layer on): screen
                        // every delivered cloud against the ego scan's
                        // observed free space and the sender's motion
                        // history before it reaches fusion. Histories
                        // are read from the snapshot taken before the
                        // parallel fan-out; updates apply serially.
                        let mut consistency_drops: Vec<TransportDrop> = Vec::new();
                        let mut history_updates: Vec<((u32, u32), SenderHistory)> = Vec::new();
                        let filtered: Option<Vec<ExchangePacket>> = trust_guard.map(|tg| {
                            let ego_index = FreeSpaceIndex::build(&me.scan, &tg.consistency);
                            // Composite (delta-reconstructed) clouds mix
                            // keyframe-step points with current ones; a
                            // moving sender smears those through space
                            // the ego genuinely observed as free. Skip
                            // the free-space sweep for them (an empty
                            // index yields zero ghost evidence) while
                            // keeping the replay and teleport checks.
                            let empty_index =
                                FreeSpaceIndex::build(&PointCloud::new(), &tg.consistency);
                            let mut kept = Vec::with_capacity(inboxes[i].len());
                            for (k, pkt) in inboxes[i].iter().enumerate() {
                                let Ok(cloud) = pkt.cloud() else {
                                    // Feature frames and undecodable
                                    // payloads flow through; the fusion
                                    // pipeline owns those verdicts.
                                    kept.push(pkt.clone());
                                    continue;
                                };
                                let sweep_index =
                                    if inbox_composite[i].get(k).copied().unwrap_or(false) {
                                        &empty_index
                                    } else {
                                        &ego_index
                                    };
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::GUARD_CONSISTENCY_CHECKS,
                                        1,
                                    );
                                }
                                let align = alignment_transform(
                                    pkt.pose(),
                                    &my_estimate,
                                    &self.config.origin,
                                );
                                let in_ego = cloud.transformed(&align);
                                let mut centroid = Vec3::new(0.0, 0.0, 0.0);
                                for p in cloud.iter() {
                                    centroid += p.position;
                                }
                                centroid /= cloud.len().max(1) as f64;
                                let world_centroid = RigidTransform::from_pose(
                                    &pkt.pose().to_pose(&self.config.origin),
                                )
                                .apply(centroid);
                                let key = (id, pkt.vehicle_id());
                                let (verdict, next) = check_consistency(
                                    sweep_index,
                                    &in_ego,
                                    world_centroid,
                                    pkt.sequence(),
                                    histories.get(&key),
                                    self.config.step_duration_s,
                                    &tg.consistency,
                                );
                                history_updates.push((key, next));
                                if verdict.is_consistent() {
                                    kept.push(pkt.clone());
                                    continue;
                                }
                                let ghost_points = verdict.ghost_points();
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::GUARD_CONSISTENCY_REJECTS,
                                        1,
                                    );
                                    cooper_telemetry::counter_add(
                                        telemetry_names::GUARD_CONSISTENCY_GHOST_POINTS,
                                        ghost_points as u64,
                                    );
                                }
                                if cooper_telemetry::is_tracing() {
                                    cooper_telemetry::trace_mark_with(
                                        TraceId::new(step, pkt.vehicle_id(), id),
                                        trace_stage::CONSISTENCY_REJECTED,
                                        true,
                                        ghost_points as u64,
                                    );
                                }
                                consistency_drops.push(TransportDrop {
                                    from: pkt.vehicle_id(),
                                    to: id,
                                    reason: TransportDropReason::ConsistencyRejected {
                                        ghost_points: ghost_points as u32,
                                    },
                                });
                            }
                            kept
                        });
                        let fusion_inbox: &[ExchangePacket] =
                            filtered.as_deref().unwrap_or(&inboxes[i]);
                        let outcome = if pipeline.incremental() {
                            pipeline.perceive_cached(
                                &me.scan,
                                &my_estimate,
                                fusion_inbox,
                                &self.config.origin,
                                &inner,
                                scratch,
                                &caches[i],
                            )
                        } else {
                            pipeline.perceive_with(
                                &me.scan,
                                &my_estimate,
                                fusion_inbox,
                                &self.config.origin,
                                &inner,
                                scratch,
                            )
                        };
                        let mut align_stats = AlignmentVehicleStats::default();
                        for record in &outcome.alignment {
                            align_stats.absorb(record);
                        }
                        let align_drops: Vec<TransportDrop> = outcome
                            .drops
                            .iter()
                            .filter_map(|drop| match drop.error {
                                CooperError::AlignmentRejected { residual_m } => {
                                    Some(TransportDrop {
                                        from: drop.vehicle_id,
                                        to: id,
                                        reason: TransportDropReason::AlignmentRejected {
                                            residual_mm: residual_to_mm(residual_m),
                                        },
                                    })
                                }
                                _ => None,
                            })
                            .collect();
                        // Terminal trace marks: every delivered packet's
                        // causal chain ends here — fused into detection
                        // input, rejected by the alignment guard, or
                        // dropped by a decode failure.
                        if cooper_telemetry::is_tracing() {
                            for (k, pkt) in fusion_inbox.iter().enumerate() {
                                let trace = TraceId::new(step, pkt.vehicle_id(), id);
                                match outcome.drops.iter().find(|d| d.index == k) {
                                    Some(drop) => match drop.error {
                                        CooperError::AlignmentRejected { residual_m } => {
                                            cooper_telemetry::trace_mark_with(
                                                trace,
                                                trace_stage::ALIGN_REJECTED,
                                                true,
                                                u64::from(residual_to_mm(residual_m)),
                                            );
                                        }
                                        _ => cooper_telemetry::trace_mark(
                                            trace,
                                            trace_stage::DECODE_FAILED,
                                            true,
                                        ),
                                    },
                                    None => cooper_telemetry::trace_mark(
                                        trace,
                                        trace_stage::FUSED,
                                        true,
                                    ),
                                }
                            }
                        }
                        let report = VehicleStepReport {
                            vehicle_id: id,
                            single_detections: 0,
                            cooperative_detections: outcome.detections.len(),
                            packets_received: inboxes[i].len(),
                            packets_dropped: outcome.drops.len() + consistency_drops.len(),
                            packets_partial: partial_counts[i],
                            bytes_received: bytes_received[i],
                            confirmed_tracks: 0,
                            coasting_tracks: 0,
                            trust_violations: 0,
                            quarantined_peers: 0,
                        };
                        PerceiveTaskOutput::Cooperative {
                            report,
                            detections: outcome.detections,
                            align_drops,
                            align_stats,
                            consistency_drops,
                            history_updates,
                        }
                    }
                })
            };
            // Serial merge in fleet order: results arrive in input order
            // (Single(i) at 2i, Cooperative(i) at 2i+1), so zip the
            // pairs back into one report per vehicle. Tracker updates
            // happen here rather than inside the parallel tasks so the
            // temporal state advances in one global order.
            let mut per_vehicle = Vec::with_capacity(broadcasts.len());
            let mut outputs = phase3.into_iter();
            for (i, tracker_slot) in trackers.iter_mut().enumerate() {
                let (Some(single_out), Some(coop_out)) = (outputs.next(), outputs.next()) else {
                    unreachable!("phase 3 returns two outputs per vehicle");
                };
                let PerceiveTaskOutput::Single(single) = single_out else {
                    unreachable!("phase-3 results keep input order");
                };
                let PerceiveTaskOutput::Cooperative {
                    mut report,
                    detections,
                    align_drops,
                    align_stats,
                    consistency_drops,
                    history_updates,
                } = coop_out
                else {
                    unreachable!("phase-3 results keep input order");
                };
                report.single_detections = single;
                for (key, history) in history_updates {
                    histories.insert(key, history);
                }
                if let Some(tracker) = tracker_slot.as_mut() {
                    let summary = tracker.update(&detections, self.config.step_duration_s);
                    let (_tentative, confirmed, coasting) = tracker.state_counts();
                    report.confirmed_tracks = confirmed;
                    report.coasting_tracks = coasting;
                    stats
                        .tracks
                        .entry(self.vehicles[i].id)
                        .or_default()
                        .absorb(detections.len(), &summary);
                    if cooper_telemetry::is_enabled() {
                        cooper_telemetry::counter_add(
                            telemetry_names::TRACK_DETECTIONS_IN,
                            detections.len() as u64,
                        );
                        cooper_telemetry::counter_add(
                            telemetry_names::TRACK_SPAWNED,
                            summary.spawned as u64,
                        );
                        cooper_telemetry::counter_add(
                            telemetry_names::TRACK_PROMOTED,
                            summary.promoted as u64,
                        );
                        cooper_telemetry::counter_add(
                            telemetry_names::TRACK_COASTED,
                            summary.coasted as u64,
                        );
                        cooper_telemetry::counter_add(
                            telemetry_names::TRACK_DROPPED,
                            summary.dropped as u64,
                        );
                    }
                }
                if align_stats.evaluated > 0 {
                    let entry = stats.alignment.entry(self.vehicles[i].id).or_default();
                    entry.evaluated += align_stats.evaluated;
                    entry.refined += align_stats.refined;
                    entry.rejected += align_stats.rejected;
                    entry.residual_before_m_sum += align_stats.residual_before_m_sum;
                    entry.residual_after_m_sum += align_stats.residual_after_m_sum;
                }
                transport_drops.extend(align_drops);
                transport_drops.extend(consistency_drops);
                per_vehicle.push(report);
            }
            // End-of-step trust update (trust layer on): charge this
            // step's violations to their senders, advance every pair's
            // state machine, and stamp the per-vehicle trust columns.
            if let Some(tg) = &trust_guard {
                let mut violations: BTreeMap<(u32, u32), u32> = BTreeMap::new();
                for drop in &transport_drops {
                    if matches!(
                        drop.reason,
                        TransportDropReason::IntegrityFailed
                            | TransportDropReason::AlignmentRejected { .. }
                            | TransportDropReason::ConsistencyRejected { .. }
                    ) {
                        *violations.entry((drop.to, drop.from)).or_insert(0) += 1;
                    }
                }
                let mut checked: Vec<(u32, u32)> = Vec::new();
                for (idx, inbox) in inboxes.iter().enumerate() {
                    let to = self.vehicles[idx].id;
                    for pkt in inbox {
                        checked.push((to, pkt.vehicle_id()));
                    }
                }
                checked.extend(violations.keys().copied());
                let transitions = trust_ledger.end_step(&violations, &checked, &tg.trust);
                if cooper_telemetry::is_enabled() {
                    let charged: u64 = violations.values().map(|&v| u64::from(v)).sum();
                    if charged > 0 {
                        cooper_telemetry::counter_add(telemetry_names::TRUST_VIOLATIONS, charged);
                    }
                }
                for ((receiver, _sender), transition) in &transitions {
                    let entry = stats.trust.entry(*receiver).or_default();
                    match transition {
                        TrustTransition::Quarantined => {
                            entry.quarantines += 1;
                            if cooper_telemetry::is_enabled() {
                                cooper_telemetry::counter_add(
                                    telemetry_names::TRUST_QUARANTINES,
                                    1,
                                );
                            }
                        }
                        TrustTransition::Reinstated => {
                            entry.reinstated += 1;
                            if cooper_telemetry::is_enabled() {
                                cooper_telemetry::counter_add(telemetry_names::TRUST_REINSTATED, 1);
                            }
                        }
                        TrustTransition::Paroled | TrustTransition::None => {}
                    }
                }
                for (idx, report) in per_vehicle.iter_mut().enumerate() {
                    let id = self.vehicles[idx].id;
                    report.trust_violations = violations
                        .range((id, u32::MIN)..=(id, u32::MAX))
                        .map(|(_, &v)| v)
                        .sum();
                    report.quarantined_peers = trust_ledger.quarantined_count(id) as u32;
                    stats.trust.entry(id).or_default().violations +=
                        u64::from(report.trust_violations);
                }
            }
            timings.perceive_us = perceive_start.elapsed().as_micros() as u64;

            if cooper_telemetry::is_enabled() {
                cooper_telemetry::record_value(
                    telemetry_names::FLEET_PHASE_SCAN_US,
                    timings.scan_us,
                );
                cooper_telemetry::record_value(
                    telemetry_names::FLEET_PHASE_EXCHANGE_US,
                    timings.exchange_us,
                );
                cooper_telemetry::record_value(
                    telemetry_names::FLEET_PHASE_PERCEIVE_US,
                    timings.perceive_us,
                );
                cooper_telemetry::gauge_set(
                    telemetry_names::FLEET_THREADS,
                    executor.threads() as f64,
                );
                for v in &per_vehicle {
                    cooper_telemetry::counter_add(
                        telemetry_names::FLEET_BYTES_RECEIVED,
                        v.bytes_received as u64,
                    );
                    cooper_telemetry::emit(
                        cooper_telemetry::TelemetryEvent::new(
                            telemetry_names::EVENT_FLEET_VEHICLE_STEP,
                        )
                        .with("step", step)
                        .with("vehicle", v.vehicle_id)
                        .with("single_detections", v.single_detections)
                        .with("cooperative_detections", v.cooperative_detections)
                        .with("packets_received", v.packets_received)
                        .with("packets_dropped", v.packets_dropped)
                        .with("bytes_received", v.bytes_received)
                        .with("confirmed_tracks", v.confirmed_tracks)
                        .with("coasting_tracks", v.coasting_tracks),
                    );
                }
            }
            reports.push(FleetStepReport {
                step,
                per_vehicle,
                encode_drops,
                transport_drops,
                timings,
            });
            world = world.advanced(self.config.step_duration_s);
        }
        (reports, stats)
    }

    /// Ungoverned phase-2 delivery: every in-range sender's pre-built
    /// broadcast packet is offered to every receiver, in delivery order.
    fn exchange_ungoverned(
        &self,
        step: usize,
        channel: &mut dyn ChannelModel,
        trust_ledger: Option<&TrustLedger>,
        broadcasts: &[Broadcast],
        out: ExchangeOutputs<'_>,
    ) {
        for (i, me) in broadcasts.iter().enumerate() {
            for (j, other) in broadcasts.iter().enumerate() {
                if i == j || me.pose.delta_d(&other.pose) > self.config.comms_range_m {
                    continue;
                }
                let Some(packet) = &other.packet else {
                    continue;
                };
                let from = self.vehicles[j].id;
                let to = self.vehicles[i].id;
                if trust_ledger.is_some_and(|ledger| ledger.blocks(to, from)) {
                    Self::record_quarantine_skip(step, from, to, &mut *out.stats);
                    out.transport_drops.push(TransportDrop {
                        from,
                        to,
                        reason: TransportDropReason::Quarantined,
                    });
                    continue;
                }
                let ctx = TransferCtx {
                    step,
                    from,
                    to,
                    wire_bytes: packet.wire_size(),
                };
                let trace = TraceId::new(step, ctx.from, ctx.to);
                match channel.deliver_verdict(&ctx) {
                    Delivery::Delivered => {
                        if trust_ledger.is_some() && !matches!(packet.verify_integrity(), Ok(_)) {
                            // The frame arrived whole but its CRC-32
                            // trailer does not match — at-source
                            // corruption the link layer cannot see.
                            // Bytes were still burned on the air.
                            if cooper_telemetry::is_enabled() {
                                cooper_telemetry::counter_add(
                                    telemetry_names::V2X_INTEGRITY_CRC_FAIL,
                                    1,
                                );
                            }
                            cooper_telemetry::trace_mark(
                                trace,
                                trace_stage::INTEGRITY_FAILED,
                                true,
                            );
                            out.bytes_received[i] += packet.wire_size();
                            out.transport_drops.push(TransportDrop {
                                from,
                                to,
                                reason: TransportDropReason::IntegrityFailed,
                            });
                            continue;
                        }
                        cooper_telemetry::trace_mark_with(
                            trace,
                            trace_stage::DELIVERED,
                            false,
                            ctx.wire_bytes as u64,
                        );
                        out.bytes_received[i] += packet.wire_size();
                        out.inboxes[i].push(packet.clone());
                        out.composite[i].push(false);
                    }
                    Delivery::Dropped => {
                        cooper_telemetry::trace_mark(trace, trace_stage::CHANNEL_DROPPED, true);
                    }
                    Delivery::Corrupted => {
                        if cooper_telemetry::is_enabled() {
                            cooper_telemetry::counter_add(
                                telemetry_names::V2X_INTEGRITY_CORRUPTED_FRAMES,
                                1,
                            );
                        }
                        cooper_telemetry::trace_mark(trace, trace_stage::V2X_CORRUPTED, true);
                        out.transport_drops.push(TransportDrop {
                            from,
                            to,
                            reason: TransportDropReason::Corrupted,
                        });
                    }
                    Delivery::DeadlineExceeded => {
                        if cooper_telemetry::is_enabled() {
                            cooper_telemetry::counter_add(telemetry_names::FLEET_DEADLINE_MISS, 1);
                        }
                        cooper_telemetry::trace_mark(trace, trace_stage::DEADLINE_EXCEEDED, true);
                        out.transport_drops.push(TransportDrop {
                            from: ctx.from,
                            to: ctx.to,
                            reason: TransportDropReason::DeadlineExceeded,
                        });
                    }
                    Delivery::Partial {
                        delivered_bytes,
                        total_bytes,
                    } => {
                        // Salvage: decode whatever whole points the
                        // delivered prefix contains and fuse those; the
                        // receiver degrades instead of losing the
                        // sender's scan entirely.
                        cooper_telemetry::trace_mark_with(
                            trace,
                            trace_stage::PARTIAL,
                            false,
                            delivered_bytes as u64,
                        );
                        let wire = packet.to_bytes();
                        let cut = delivered_bytes.min(wire.len());
                        match ExchangePacket::from_partial_bytes(&wire[..cut]) {
                            Ok((salvaged, _fraction)) => {
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::FLEET_PARTIAL_SALVAGED,
                                        1,
                                    );
                                }
                                cooper_telemetry::trace_mark(trace, trace_stage::SALVAGED, false);
                                out.bytes_received[i] += delivered_bytes;
                                out.partial_counts[i] += 1;
                                out.inboxes[i].push(salvaged);
                                out.composite[i].push(false);
                                out.transport_drops.push(TransportDrop {
                                    from: ctx.from,
                                    to: ctx.to,
                                    reason: TransportDropReason::PartialDelivery {
                                        delivered_bytes,
                                        total_bytes,
                                    },
                                });
                            }
                            Err(error) => {
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::FLEET_SALVAGE_FAILED,
                                        1,
                                    );
                                }
                                cooper_telemetry::trace_mark(
                                    trace,
                                    trace_stage::SALVAGE_FAILED,
                                    true,
                                );
                                out.transport_drops.push(TransportDrop {
                                    from: ctx.from,
                                    to: ctx.to,
                                    reason: TransportDropReason::SalvageFailed {
                                        kind: error.kind().to_string(),
                                    },
                                });
                            }
                        }
                    }
                }
            }
            out.stats.total_bytes += out.bytes_received[i] as u64;
        }
    }

    /// Governed phase-2 delivery: per-sender codec state advances once
    /// per step (static-map observation, keyframe/delta cadence), every
    /// directed transfer consults the [`GovernorPolicy`], and received
    /// v2 streams are reconstructed through per-sender decoder state
    /// before fusion. All serial, in delivery order.
    fn exchange_governed(
        &self,
        step: usize,
        channel: &mut dyn ChannelModel,
        trust_ledger: Option<&TrustLedger>,
        g: &mut GovernedLoop<'_>,
        broadcasts: &[Broadcast],
        out: ExchangeOutputs<'_>,
    ) {
        let n = self.vehicles.len();
        // With the trust layer on, every candidate carries a CRC-32
        // trailer; price it so the wire-size assertion below holds.
        let crc_bytes = if trust_ledger.is_some() {
            CRC_TRAILER_BYTES
        } else {
            0
        };
        // Per-sender content preparation, in fleet order. All content
        // flows from the *transmitted* scan — an adversarial sender's
        // codec state tracks what it puts on the air, not what it saw.
        let mut frames: Vec<SenderFrame> = Vec::with_capacity(n);
        for (j, b) in broadcasts.iter().enumerate() {
            let id = self.vehicles[j].id;
            let tx_scan = b.tx_scan();
            let baseline_bytes = ExchangePacket::wire_size_for(tx_scan.len()) + crc_bytes;
            let (kf_cloud, delta_cloud, keyframe_due, background_subtracted) =
                if g.config.delta_encode {
                    let state = &mut g.tx_states[j];
                    state.map.observe(tx_scan);
                    let foreground = state.map.subtract_background(tx_scan);
                    let due = state.enc.keyframe_due();
                    let novel = state.enc.novel_points(&foreground);
                    if due {
                        state.enc.note_keyframe(&foreground);
                    } else {
                        state.enc.note_delta();
                    }
                    (foreground, Some(novel), due, true)
                } else {
                    (tx_scan.clone(), None, true, false)
                };
            let mut frame = SenderFrame {
                ok: true,
                keyframe_due,
                background_subtracted,
                baseline_bytes,
                clouds: Default::default(),
                packets: Default::default(),
                feature_packets: Default::default(),
                candidates: Vec::new(),
            };
            // The probe build catches a broken pose estimate (or
            // out-of-range coordinates) once per sender per step; every
            // candidate is a subset of this content, so if the probe
            // encodes, they all do.
            match ExchangePacket::build_v2(
                id,
                b.tx_stamp,
                &kf_cloud,
                b.tx_estimate,
                FrameKind::Keyframe,
                background_subtracted,
            )
            .and_then(|probe| {
                finalize_tx_packet(
                    probe,
                    trust_ledger.is_some(),
                    b.tx_corrupt_rate,
                    self.config.seed,
                    id,
                    step,
                )
            }) {
                Ok(probe) => {
                    let kinds: &[FrameKind] = if g.config.delta_encode {
                        if keyframe_due {
                            &[FrameKind::Keyframe, FrameKind::Delta]
                        } else {
                            &[FrameKind::Delta]
                        }
                    } else {
                        &[FrameKind::Keyframe]
                    };
                    for &kind in kinds {
                        let content = match kind {
                            FrameKind::Keyframe => &kf_cloud,
                            FrameKind::Delta => delta_cloud
                                .as_ref()
                                .expect("delta kind offered only with delta content"),
                            FrameKind::Features => {
                                unreachable!("the point kinds slice never offers features")
                            }
                        };
                        for roi in [
                            RoiCategory::FullFrame,
                            RoiCategory::FrontFov120,
                            RoiCategory::ForwardOneWay,
                        ] {
                            let cloud = extract_roi(content, roi);
                            let wire_bytes = ExchangePacket::wire_size_for(cloud.len()) + crc_bytes;
                            frame.candidates.push(TransferCandidate {
                                roi,
                                kind,
                                wire_bytes,
                                airtime_s: channel.airtime_for(wire_bytes),
                            });
                            frame.clouds[roi_index(roi)][kind_index(kind)] = Some(cloud);
                        }
                    }
                    if kinds.contains(&FrameKind::Keyframe) {
                        frame.packets[0][0] = Some(probe);
                    }
                    // Feature-tier candidates ride at the end of the
                    // menu, so the ungoverned [`SendFirstPolicy`] (and
                    // any policy indexing the raw ladder) is unaffected
                    // unless it asks for them.
                    if g.config.features {
                        for roi in [
                            RoiCategory::FullFrame,
                            RoiCategory::FrontFov120,
                            RoiCategory::ForwardOneWay,
                        ] {
                            if let Some(ff) = &b.feature_frames[roi_index(roi)] {
                                let wire_bytes =
                                    ExchangePacket::wire_size_for_features(ff.len(), ff.channels())
                                        + crc_bytes;
                                frame.candidates.push(TransferCandidate {
                                    roi,
                                    kind: FrameKind::Features,
                                    wire_bytes,
                                    airtime_s: channel.airtime_for(wire_bytes),
                                });
                            }
                        }
                    }
                }
                Err(error) => {
                    if cooper_telemetry::is_enabled() {
                        cooper_telemetry::counter_add(
                            &format!(
                                "{}{}",
                                telemetry_names::FLEET_ENCODE_DROP_PREFIX,
                                error.kind()
                            ),
                            1,
                        );
                    }
                    frame.ok = false;
                    out.encode_drops.push(EncodeDrop {
                        vehicle_id: id,
                        kind: error.kind().to_string(),
                    });
                }
            }
            frames.push(frame);
        }

        // Delivery, in (receiver, sender) order.
        for i in 0..n {
            for j in 0..n {
                if i == j
                    || broadcasts[i].pose.delta_d(&broadcasts[j].pose) > self.config.comms_range_m
                    || !frames[j].ok
                {
                    continue;
                }
                let from = self.vehicles[j].id;
                let to = self.vehicles[i].id;
                if trust_ledger.is_some_and(|ledger| ledger.blocks(to, from)) {
                    // Quarantined senders are skipped before anything is
                    // priced: the governor never sees the offer.
                    Self::record_quarantine_skip(step, from, to, &mut *out.stats);
                    out.transport_drops.push(TransportDrop {
                        from,
                        to,
                        reason: TransportDropReason::Quarantined,
                    });
                    continue;
                }
                let offer = TransferOffer {
                    step,
                    from,
                    to,
                    keyframe_due: frames[j].keyframe_due,
                    receiver_blind_sectors: &broadcasts[i].blind,
                    candidates: &frames[j].candidates,
                    headroom_s: channel.airtime_headroom_s(),
                };
                let chosen = match g.policy.decide(&offer) {
                    GovernorVerdict::Send(candidate) => candidate,
                    GovernorVerdict::Skip => {
                        *out.stats.bytes_saved.entry(from).or_insert(0) +=
                            frames[j].baseline_bytes as u64;
                        if cooper_telemetry::is_enabled() {
                            cooper_telemetry::counter_add(telemetry_names::FLEET_BUDGET_SKIP, 1);
                        }
                        cooper_telemetry::trace_mark(
                            TraceId::new(step, from, to),
                            trace_stage::GOVERN_SKIP,
                            true,
                        );
                        out.transport_drops.push(TransportDrop {
                            from,
                            to,
                            reason: TransportDropReason::BudgetExceeded,
                        });
                        continue;
                    }
                };
                let packet = if chosen.kind == FrameKind::Features {
                    let ri = roi_index(chosen.roi);
                    if frames[j].feature_packets[ri].is_none() {
                        let ff = broadcasts[j].feature_frames[ri]
                            .as_ref()
                            .expect("feature candidate was offered, so its frame is prepared");
                        let built = ExchangePacket::build_features(
                            from,
                            broadcasts[j].tx_stamp,
                            ff,
                            broadcasts[j].tx_estimate,
                        )
                        .and_then(|packet| {
                            finalize_tx_packet(
                                packet,
                                trust_ledger.is_some(),
                                broadcasts[j].tx_corrupt_rate,
                                self.config.seed,
                                from,
                                step,
                            )
                        })
                        .expect("a probed sender's feature frame must encode");
                        frames[j].feature_packets[ri] = Some(built);
                    }
                    frames[j].feature_packets[ri]
                        .clone()
                        .expect("packet built above")
                } else {
                    let (ri, ki) = (roi_index(chosen.roi), kind_index(chosen.kind));
                    if frames[j].packets[ri][ki].is_none() {
                        let cloud = frames[j].clouds[ri][ki]
                            .as_ref()
                            .expect("chosen candidate was offered, so its cloud is prepared");
                        let built = ExchangePacket::build_v2(
                            from,
                            broadcasts[j].tx_stamp,
                            cloud,
                            broadcasts[j].tx_estimate,
                            chosen.kind,
                            frames[j].background_subtracted,
                        )
                        .and_then(|packet| {
                            finalize_tx_packet(
                                packet,
                                trust_ledger.is_some(),
                                broadcasts[j].tx_corrupt_rate,
                                self.config.seed,
                                from,
                                step,
                            )
                        })
                        .expect("an ROI subset of a probed frame must encode");
                        frames[j].packets[ri][ki] = Some(built);
                    }
                    frames[j].packets[ri][ki]
                        .clone()
                        .expect("packet built above")
                };
                debug_assert_eq!(packet.wire_size(), chosen.wire_bytes);
                *out.stats.bytes_saved.entry(from).or_insert(0) +=
                    frames[j].baseline_bytes.saturating_sub(chosen.wire_bytes) as u64;
                if cooper_telemetry::is_enabled() {
                    let per_mille = (chosen.wire_bytes as u64).saturating_mul(1000)
                        / (frames[j].baseline_bytes.max(1) as u64);
                    if chosen.kind == FrameKind::Features {
                        cooper_telemetry::counter_add(telemetry_names::FLEET_FEATURE_SENDS, 1);
                        cooper_telemetry::record_value(
                            telemetry_names::CODEC_V3_BYTES_RATIO,
                            per_mille,
                        );
                    } else {
                        cooper_telemetry::record_value(
                            telemetry_names::CODEC_V2_BYTES_RATIO,
                            per_mille,
                        );
                    }
                }
                let ctx = TransferCtx {
                    step,
                    from,
                    to,
                    wire_bytes: chosen.wire_bytes,
                };
                let trace = TraceId::new(step, from, to);
                cooper_telemetry::trace_mark_with(
                    trace,
                    trace_stage::GOVERN_SEND,
                    false,
                    chosen.wire_bytes as u64,
                );
                match channel.deliver_verdict(&ctx) {
                    Delivery::Delivered => {
                        if trust_ledger.is_some() && !matches!(packet.verify_integrity(), Ok(_)) {
                            if cooper_telemetry::is_enabled() {
                                cooper_telemetry::counter_add(
                                    telemetry_names::V2X_INTEGRITY_CRC_FAIL,
                                    1,
                                );
                            }
                            cooper_telemetry::trace_mark(
                                trace,
                                trace_stage::INTEGRITY_FAILED,
                                true,
                            );
                            out.bytes_received[i] += chosen.wire_bytes;
                            out.transport_drops.push(TransportDrop {
                                from,
                                to,
                                reason: TransportDropReason::IntegrityFailed,
                            });
                            continue;
                        }
                        cooper_telemetry::trace_mark_with(
                            trace,
                            trace_stage::DELIVERED,
                            false,
                            ctx.wire_bytes as u64,
                        );
                        match Self::rx_reconstruct(&mut g.rx_decoders[i], from, &packet) {
                            Ok((reconstructed, composite)) => {
                                out.bytes_received[i] += chosen.wire_bytes;
                                out.inboxes[i].push(reconstructed);
                                out.composite[i].push(composite);
                            }
                            Err(error) => {
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::FLEET_SALVAGE_FAILED,
                                        1,
                                    );
                                }
                                cooper_telemetry::trace_mark(
                                    trace,
                                    trace_stage::SALVAGE_FAILED,
                                    true,
                                );
                                out.transport_drops.push(TransportDrop {
                                    from,
                                    to,
                                    reason: TransportDropReason::SalvageFailed {
                                        kind: error.kind().to_string(),
                                    },
                                });
                            }
                        }
                    }
                    Delivery::Dropped => {
                        cooper_telemetry::trace_mark(trace, trace_stage::CHANNEL_DROPPED, true);
                    }
                    Delivery::Corrupted => {
                        if cooper_telemetry::is_enabled() {
                            cooper_telemetry::counter_add(
                                telemetry_names::V2X_INTEGRITY_CORRUPTED_FRAMES,
                                1,
                            );
                        }
                        cooper_telemetry::trace_mark(trace, trace_stage::V2X_CORRUPTED, true);
                        out.transport_drops.push(TransportDrop {
                            from,
                            to,
                            reason: TransportDropReason::Corrupted,
                        });
                    }
                    Delivery::DeadlineExceeded => {
                        if cooper_telemetry::is_enabled() {
                            cooper_telemetry::counter_add(telemetry_names::FLEET_DEADLINE_MISS, 1);
                        }
                        cooper_telemetry::trace_mark(trace, trace_stage::DEADLINE_EXCEEDED, true);
                        out.transport_drops.push(TransportDrop {
                            from,
                            to,
                            reason: TransportDropReason::DeadlineExceeded,
                        });
                    }
                    Delivery::Partial {
                        delivered_bytes,
                        total_bytes,
                    } => {
                        cooper_telemetry::trace_mark_with(
                            trace,
                            trace_stage::PARTIAL,
                            false,
                            delivered_bytes as u64,
                        );
                        let wire = packet.to_bytes();
                        let cut = delivered_bytes.min(wire.len());
                        let salvaged = ExchangePacket::from_partial_bytes(&wire[..cut]).and_then(
                            |(prefix, _fraction)| {
                                Self::rx_reconstruct(&mut g.rx_decoders[i], from, &prefix)
                            },
                        );
                        match salvaged {
                            Ok((reconstructed, composite)) => {
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::FLEET_PARTIAL_SALVAGED,
                                        1,
                                    );
                                }
                                cooper_telemetry::trace_mark(trace, trace_stage::SALVAGED, false);
                                out.bytes_received[i] += delivered_bytes;
                                out.partial_counts[i] += 1;
                                out.inboxes[i].push(reconstructed);
                                out.composite[i].push(composite);
                                out.transport_drops.push(TransportDrop {
                                    from,
                                    to,
                                    reason: TransportDropReason::PartialDelivery {
                                        delivered_bytes,
                                        total_bytes,
                                    },
                                });
                            }
                            Err(error) => {
                                if cooper_telemetry::is_enabled() {
                                    cooper_telemetry::counter_add(
                                        telemetry_names::FLEET_SALVAGE_FAILED,
                                        1,
                                    );
                                }
                                cooper_telemetry::trace_mark(
                                    trace,
                                    trace_stage::SALVAGE_FAILED,
                                    true,
                                );
                                out.transport_drops.push(TransportDrop {
                                    from,
                                    to,
                                    reason: TransportDropReason::SalvageFailed {
                                        kind: error.kind().to_string(),
                                    },
                                });
                            }
                        }
                    }
                }
            }
            out.stats.total_bytes += out.bytes_received[i] as u64;
        }
    }

    /// Receiver-side reconstruction of a delivered packet: v1 payloads
    /// and v3 feature frames pass through untouched (feature frames are
    /// self-contained; the pipeline fuses them at the BEV level); v2
    /// payloads run through the receiver's per-sender [`DeltaDecoder`]
    /// (caching keyframes, merging deltas) and are re-wrapped as
    /// self-contained packets for the fusion pipeline.
    /// Records one transfer skipped because the receiver holds the
    /// sender in quarantine: counter, terminal trace mark, and the
    /// receiver's per-vehicle trust stats.
    fn record_quarantine_skip(step: usize, from: u32, to: u32, stats: &mut FleetStats) {
        if cooper_telemetry::is_enabled() {
            cooper_telemetry::counter_add(telemetry_names::TRUST_BLOCKED_TRANSFERS, 1);
        }
        cooper_telemetry::trace_mark(TraceId::new(step, from, to), trace_stage::QUARANTINED, true);
        stats.trust.entry(to).or_default().blocked_transfers += 1;
    }

    fn rx_reconstruct(
        decoders: &mut BTreeMap<u32, DeltaDecoder>,
        sender: u32,
        packet: &ExchangePacket,
    ) -> Result<(ExchangePacket, bool), CooperError> {
        let info = packet.frame_info()?;
        if info.version != 2 {
            return Ok((packet.clone(), false));
        }
        // A delta frame merges the receiver's cached keyframe with this
        // step's novel points: the result spans capture instants.
        let composite = info.kind == FrameKind::Delta;
        let decoder = decoders.entry(sender).or_default();
        let cloud = decoder.decode_next(packet.payload())?;
        Ok((packet.with_cloud(&cloud)?, composite))
    }
}

/// Builds a straight constant-speed trajectory: `steps` poses advancing
/// `speed_m_per_step` along the heading of `start`.
pub fn straight_trajectory(start: Pose, speed_m_per_step: f64, steps: usize) -> Vec<Pose> {
    let dir = cooper_geometry::Vec3::new(start.attitude.yaw.cos(), start.attitude.yaw.sin(), 0.0);
    (0..steps)
        .map(|s| {
            Pose::new(
                start.position + dir * (speed_m_per_step * s as f64),
                start.attitude,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Vec3};
    use cooper_lidar_sim::scenario;
    use cooper_spod::{SpodConfig, SpodDetector};

    fn pipeline() -> CooperPipeline {
        CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
    }

    fn small_fleet() -> FleetSimulation {
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: straight_trajectory(scene.observers[0], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: straight_trajectory(scene.observers[1], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        FleetSimulation::new(scene.world, vehicles, FleetConfig::default())
    }

    #[test]
    fn run_produces_reports_per_step_and_vehicle() {
        let sim = small_fleet();
        let (reports, stats) = sim.run(&pipeline(), 3);
        assert_eq!(reports.len(), 3);
        for (step, report) in reports.iter().enumerate() {
            assert_eq!(report.step, step);
            assert_eq!(report.per_vehicle.len(), 2);
            assert!(report.encode_drops.is_empty());
            for v in &report.per_vehicle {
                assert_eq!(v.packets_received, 1, "both vehicles are in range");
                assert_eq!(v.packets_dropped, 0);
                assert!(v.bytes_received > 0);
            }
        }
        assert_eq!(stats.connection_steps.get(&(1, 2)), Some(&3));
        assert!(stats.total_bytes > 0);
        assert_eq!(stats.longest_connection().unwrap().0, (1, 2));
        for report in &reports {
            assert!(
                report.timings.scan_us > 0,
                "scanning two vehicles takes measurable time"
            );
            assert_eq!(
                report.timings.total_us(),
                report.timings.scan_us + report.timings.exchange_us + report.timings.perceive_us
            );
        }
    }

    #[test]
    fn out_of_range_vehicles_do_not_exchange() {
        let scene = scenario::tj_scenario_1();
        let far_pose = Pose::new(Vec3::new(500.0, 500.0, 1.9), Attitude::level());
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![far_pose],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
        ];
        let sim = FleetSimulation::new(scene.world, vehicles, FleetConfig::default());
        let (reports, stats) = sim.run(&pipeline(), 1);
        for v in &reports[0].per_vehicle {
            assert_eq!(v.packets_received, 0);
            assert_eq!(v.bytes_received, 0);
        }
        assert!(stats.connection_steps.is_empty());
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let scene = scenario::tj_scenario_1();
        let build = |threads: Option<usize>| {
            let vehicles = vec![
                FleetVehicle {
                    id: 1,
                    trajectory: straight_trajectory(scene.observers[0], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 2,
                    trajectory: straight_trajectory(scene.observers[1], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 7,
                    trajectory: straight_trajectory(scene.observers[0], -1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
            ];
            FleetSimulation::new(
                scene.world.clone(),
                vehicles,
                FleetConfig {
                    seed: 99,
                    threads,
                    ..FleetConfig::default()
                },
            )
        };
        let p = pipeline();
        let (serial, serial_stats) = build(Some(1)).run(&p, 2);
        let (parallel, parallel_stats) = build(Some(4)).run(&p, 2);
        assert_eq!(serial_stats, parallel_stats);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn encode_failure_is_reported_not_fatal() {
        // A non-finite attitude in the trajectory poisons the pose
        // estimate, so the broadcast packet is rejected at build time.
        // The vehicle must keep perceiving and the step must not panic.
        let scene = scenario::tj_scenario_1();
        let broken_pose = Pose::new(
            scene.observers[1].position,
            Attitude::new(f64::NAN, 0.0, 0.0),
        );
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![broken_pose],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
        ];
        let sim = FleetSimulation::new(scene.world.clone(), vehicles, FleetConfig::default());
        let (reports, _) = sim.run(&pipeline(), 1);
        assert_eq!(reports[0].encode_drops.len(), 1);
        assert_eq!(reports[0].encode_drops[0].vehicle_id, 2);
        assert_eq!(reports[0].encode_drops[0].kind, "invalid_pose");
        // Vehicle 1 hears nothing from the broken vehicle but still runs.
        let v1 = &reports[0].per_vehicle[0];
        assert_eq!(v1.vehicle_id, 1);
        assert_eq!(v1.packets_received, 0);
        // Vehicle 2 still receives vehicle 1's packet and perceives.
        let v2 = &reports[0].per_vehicle[1];
        assert_eq!(v2.packets_received, 1);
    }

    #[test]
    fn channel_model_sees_transfers_in_deterministic_order() {
        struct Recorder(Vec<TransferCtx>);
        impl ChannelModel for Recorder {
            fn deliver(&mut self, tx: &TransferCtx) -> bool {
                self.0.push(*tx);
                true
            }
        }
        let sim = small_fleet();
        let mut recorder = Recorder(Vec::new());
        let _ = sim.run_with_channel(&pipeline(), 2, &mut recorder);
        let order: Vec<(usize, u32, u32)> =
            recorder.0.iter().map(|t| (t.step, t.from, t.to)).collect();
        assert_eq!(order, vec![(0, 2, 1), (0, 1, 2), (1, 2, 1), (1, 1, 2)]);
        assert!(recorder.0.iter().all(|t| t.wire_bytes > 0));
    }

    #[test]
    fn degraded_verdicts_surface_in_reports_and_keep_perceiving() {
        // A channel that cuts vehicle 2's broadcasts to a 40% prefix
        // and times out vehicle 1's entirely: vehicle 1 salvages a
        // partial cloud, vehicle 2 falls back to ego-only perception,
        // and both degradations appear in the step report.
        struct Degrader;
        impl ChannelModel for Degrader {
            fn deliver(&mut self, tx: &TransferCtx) -> bool {
                matches!(self.deliver_verdict(tx), Delivery::Delivered)
            }
            fn deliver_verdict(&mut self, tx: &TransferCtx) -> Delivery {
                if tx.from == 2 {
                    Delivery::Partial {
                        delivered_bytes: tx.wire_bytes * 2 / 5,
                        total_bytes: tx.wire_bytes,
                    }
                } else {
                    Delivery::DeadlineExceeded
                }
            }
        }
        let sim = small_fleet();
        let (reports, _) = sim.run_with_channel(&pipeline(), 1, &mut Degrader);
        let r = &reports[0];
        // Vehicle 1 got a salvaged partial packet from vehicle 2.
        let v1 = &r.per_vehicle[0];
        assert_eq!(v1.packets_received, 1);
        assert_eq!(v1.packets_partial, 1);
        assert!(v1.bytes_received > 0);
        // Vehicle 2 heard nothing but still perceived on its own scan.
        let v2 = &r.per_vehicle[1];
        assert_eq!(v2.packets_received, 0);
        assert_eq!(v2.packets_partial, 0);
        assert!(v2.single_detections == v2.cooperative_detections);
        // Both degradations are on the record, in delivery order.
        assert_eq!(r.transport_drops.len(), 2);
        assert!(matches!(
            &r.transport_drops[0],
            TransportDrop {
                from: 2,
                to: 1,
                reason: TransportDropReason::PartialDelivery { .. }
            }
        ));
        let frac = r.transport_drops[0].reason.fraction();
        assert!((0.0..1.0).contains(&frac) && frac > 0.3);
        assert!(matches!(
            &r.transport_drops[1],
            TransportDrop {
                from: 1,
                to: 2,
                reason: TransportDropReason::DeadlineExceeded
            }
        ));
    }

    #[test]
    fn unsalvageable_partial_is_reported_not_fused() {
        // A prefix shorter than the packet header cannot be salvaged:
        // the transfer must surface as SalvageFailed and nothing
        // reaches the inbox.
        struct Shredder;
        impl ChannelModel for Shredder {
            fn deliver(&mut self, tx: &TransferCtx) -> bool {
                matches!(self.deliver_verdict(tx), Delivery::Delivered)
            }
            fn deliver_verdict(&mut self, tx: &TransferCtx) -> Delivery {
                Delivery::Partial {
                    delivered_bytes: 10,
                    total_bytes: tx.wire_bytes,
                }
            }
        }
        let sim = small_fleet();
        let (reports, _) = sim.run_with_channel(&pipeline(), 1, &mut Shredder);
        let r = &reports[0];
        for v in &r.per_vehicle {
            assert_eq!(v.packets_received, 0);
            assert_eq!(v.packets_partial, 0);
        }
        assert_eq!(r.transport_drops.len(), 2);
        for d in &r.transport_drops {
            assert!(matches!(
                d.reason,
                TransportDropReason::SalvageFailed { .. }
            ));
        }
    }

    #[test]
    fn governed_static_fleet_saves_bytes_and_still_delivers() {
        use crate::governor::SendFirstPolicy;
        // Parked vehicles: after `static_threshold` scans the static
        // map absorbs the scene and delta frames shrink to the noise
        // floor, so the governed run moves far fewer bytes.
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![scene.observers[1]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        let sim = FleetSimulation::new(scene.world, vehicles, FleetConfig::default());
        let p = pipeline();
        let (_, base_stats) = sim.run(&p, 4);
        let mut policy = SendFirstPolicy;
        let (reports, stats) = sim.run_governed(
            &p,
            4,
            &mut PerfectChannel,
            &mut policy,
            &GovernorConfig::default(),
        );
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.encode_drops.is_empty());
            for v in &r.per_vehicle {
                assert_eq!(v.packets_received, 1, "every transfer still arrives");
                assert_eq!(v.packets_dropped, 0, "reconstructed packets decode");
            }
        }
        assert!(
            stats.total_bytes < base_stats.total_bytes,
            "governed {} >= ungoverned {}",
            stats.total_bytes,
            base_stats.total_bytes
        );
        let saved: u64 = stats.bytes_saved.values().sum();
        assert!(saved > 0, "delta frames must save wire bytes");
        assert_eq!(stats.bytes_saved.len(), 2, "both senders accounted");
    }

    #[test]
    fn governed_reports_identical_across_thread_counts() {
        use crate::governor::SendFirstPolicy;
        let scene = scenario::tj_scenario_1();
        let build = |threads: Option<usize>| {
            let vehicles = vec![
                FleetVehicle {
                    id: 1,
                    trajectory: straight_trajectory(scene.observers[0], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 2,
                    trajectory: straight_trajectory(scene.observers[1], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 7,
                    trajectory: straight_trajectory(scene.observers[0], -1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
            ];
            FleetSimulation::new(
                scene.world.clone(),
                vehicles,
                FleetConfig {
                    seed: 99,
                    threads,
                    ..FleetConfig::default()
                },
            )
        };
        let p = pipeline();
        let cfg = GovernorConfig::default();
        let mut policy = SendFirstPolicy;
        let (serial, serial_stats) =
            build(Some(1)).run_governed(&p, 2, &mut PerfectChannel, &mut policy, &cfg);
        let (parallel, parallel_stats) =
            build(Some(4)).run_governed(&p, 2, &mut PerfectChannel, &mut policy, &cfg);
        assert_eq!(serial_stats, parallel_stats);
        assert!(!serial_stats.bytes_saved.is_empty());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn budget_skips_surface_as_transport_drops() {
        struct AlwaysSkip;
        impl GovernorPolicy for AlwaysSkip {
            fn decide(&mut self, _offer: &TransferOffer<'_>) -> GovernorVerdict {
                GovernorVerdict::Skip
            }
        }
        let sim = small_fleet();
        let (reports, stats) = sim.run_governed(
            &pipeline(),
            1,
            &mut PerfectChannel,
            &mut AlwaysSkip,
            &GovernorConfig::default(),
        );
        let r = &reports[0];
        assert_eq!(r.transport_drops.len(), 2);
        for d in &r.transport_drops {
            assert_eq!(d.reason, TransportDropReason::BudgetExceeded);
            assert_eq!(d.reason.fraction(), 0.0);
        }
        for v in &r.per_vehicle {
            assert_eq!(v.packets_received, 0);
            assert_eq!(v.bytes_received, 0);
            assert!(
                v.cooperative_detections >= v.single_detections
                    || v.cooperative_detections == v.single_detections,
                "skipped transfers leave ego perception intact"
            );
        }
        assert_eq!(stats.total_bytes, 0);
        // A skip saves the whole baseline packet per directed transfer.
        let saved: u64 = stats.bytes_saved.values().sum();
        assert!(saved > 0);
    }

    #[test]
    fn governed_encode_failure_is_reported_once_per_step() {
        use crate::governor::SendFirstPolicy;
        let scene = scenario::tj_scenario_1();
        let broken_pose = Pose::new(
            scene.observers[1].position,
            Attitude::new(f64::NAN, 0.0, 0.0),
        );
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![broken_pose],
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
        ];
        let sim = FleetSimulation::new(scene.world.clone(), vehicles, FleetConfig::default());
        let mut policy = SendFirstPolicy;
        let (reports, _) = sim.run_governed(
            &pipeline(),
            1,
            &mut PerfectChannel,
            &mut policy,
            &GovernorConfig::default(),
        );
        assert_eq!(reports[0].encode_drops.len(), 1);
        assert_eq!(reports[0].encode_drops[0].vehicle_id, 2);
        assert_eq!(reports[0].encode_drops[0].kind, "invalid_pose");
        // Vehicle 2 still receives vehicle 1's governed packet.
        assert_eq!(reports[0].per_vehicle[1].packets_received, 1);
        assert_eq!(reports[0].per_vehicle[0].packets_received, 0);
    }

    #[test]
    #[should_panic(expected = "invalid governor config")]
    fn governed_run_rejects_invalid_config() {
        use crate::governor::SendFirstPolicy;
        let sim = small_fleet();
        let bad = GovernorConfig {
            keyframe_every: 0,
            ..GovernorConfig::default()
        };
        let mut policy = SendFirstPolicy;
        let _ = sim.run_governed(&pipeline(), 1, &mut PerfectChannel, &mut policy, &bad);
    }

    #[test]
    fn guarded_fleet_rejects_faulted_sender_and_falls_back() {
        use crate::AlignmentGuardConfig;
        // Vehicle 2 broadcasts with a 40 m GPS bias: the guard on each
        // receiver must reject what that pose misaligns, surface the
        // rejection as a transport drop, and leave ego perception
        // intact. Vehicle 2's own receive-side estimate carries the
        // same bias, so it rejects vehicle 1's (honest) packet too.
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![scene.observers[1]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        let config = FleetConfig {
            sensor_model: GpsImuModel::ideal(),
            fault_plan: Some(FaultPlan::parse("2:bias:40:0").unwrap()),
            ..FleetConfig::default()
        };
        let sim = FleetSimulation::new(scene.world, vehicles, config);
        let p = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
        let (reports, stats) = sim.run(&p, 1);
        let r = &reports[0];
        for v in &r.per_vehicle {
            assert_eq!(v.packets_received, 1);
            assert_eq!(v.packets_dropped, 1, "guard rejects the misaligned cloud");
            assert_eq!(
                v.single_detections, v.cooperative_detections,
                "rejection degrades to ego-only perception"
            );
        }
        let rejected: Vec<_> = r
            .transport_drops
            .iter()
            .filter(|d| matches!(d.reason, TransportDropReason::AlignmentRejected { .. }))
            .collect();
        assert_eq!(rejected.len(), 2);
        assert_eq!((rejected[0].from, rejected[0].to), (2, 1));
        assert_eq!((rejected[1].from, rejected[1].to), (1, 2));
        for vehicle_id in [1u32, 2] {
            let a = stats.alignment.get(&vehicle_id).expect("guard ran");
            assert_eq!(a.evaluated, 1);
            assert_eq!(a.rejected, 1);
        }
    }

    #[test]
    fn clean_guarded_fleet_accepts_everything() {
        use crate::AlignmentGuardConfig;
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: vec![scene.observers[0]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: vec![scene.observers[1]],
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        let config = FleetConfig {
            sensor_model: GpsImuModel::ideal(),
            ..FleetConfig::default()
        };
        let sim = FleetSimulation::new(scene.world, vehicles, config);
        let p = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
        let (reports, stats) = sim.run(&p, 1);
        for v in &reports[0].per_vehicle {
            assert_eq!(v.packets_received, 1);
            assert_eq!(v.packets_dropped, 0, "clean alignment must pass the guard");
        }
        for vehicle_id in [1u32, 2] {
            let a = stats.alignment.get(&vehicle_id).expect("guard ran");
            assert_eq!(a.evaluated, 1);
            assert_eq!(a.rejected, 0);
        }
    }

    #[test]
    fn faulted_guarded_reports_identical_across_thread_counts() {
        use crate::AlignmentGuardConfig;
        let scene = scenario::tj_scenario_1();
        let plan = FaultPlan::parse("1:drift:0.5@0,2:freeze@1,7:yaw:0.1@0..2").unwrap();
        let build = |threads: Option<usize>| {
            let vehicles = vec![
                FleetVehicle {
                    id: 1,
                    trajectory: straight_trajectory(scene.observers[0], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 2,
                    trajectory: straight_trajectory(scene.observers[1], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 7,
                    trajectory: straight_trajectory(scene.observers[0], -1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
            ];
            FleetSimulation::new(
                scene.world.clone(),
                vehicles,
                FleetConfig {
                    seed: 99,
                    threads,
                    fault_plan: Some(plan.clone()),
                    ..FleetConfig::default()
                },
            )
        };
        let p = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
        let (serial, serial_stats) = build(Some(1)).run(&p, 3);
        let (parallel, parallel_stats) = build(Some(4)).run(&p, 3);
        assert_eq!(serial_stats, parallel_stats);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn stale_fault_restamps_broadcast_packets() {
        // A stale-scan fault re-stamps the packet with the historic
        // step; the packet must still decode and fuse.
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: straight_trajectory(scene.observers[0], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
            FleetVehicle {
                id: 2,
                trajectory: straight_trajectory(scene.observers[1], 1.0, 4),
                beams: BeamModel::vlp16().with_azimuth_steps(200),
            },
        ];
        let config = FleetConfig {
            sensor_model: GpsImuModel::ideal(),
            fault_plan: Some(FaultPlan::parse("2:stale:2@3").unwrap()),
            ..FleetConfig::default()
        };
        let sim = FleetSimulation::new(scene.world, vehicles, config);
        // The stamp rides in the exchange packet; reuse the probe build
        // in phase 1 by inspecting what arrives through a run.
        let (reports, _) = sim.run(&pipeline(), 4);
        // Steps 0..3 are clean; at step 3 the stale fault re-stamps
        // vehicle 2's broadcast as step 1 — the packet still decodes
        // and fuses, so nothing is dropped.
        for r in &reports {
            assert!(r.encode_drops.is_empty());
            for v in &r.per_vehicle {
                assert_eq!(v.packets_received, 1);
                assert_eq!(v.packets_dropped, 0);
            }
        }
    }

    #[test]
    fn incremental_fleet_matches_from_scratch() {
        // Same fleet, same seed: routing phase 3 through the per-vehicle
        // perception caches must leave the deterministic report surface
        // bit-identical to the stateless path.
        let sim = small_fleet();
        let (base, base_stats) = sim.run(&pipeline(), 3);
        let (inc, inc_stats) = sim.run(&pipeline().with_incremental(), 3);
        assert_eq!(base_stats, inc_stats);
        for (a, b) in base.iter().zip(&inc) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn tracker_enabled_run_fills_track_stats() {
        use crate::tracking::TrackerConfig;
        let sim = small_fleet();
        let p = pipeline().with_tracker(TrackerConfig::default());
        let (reports, stats) = sim.run(&p, 3);
        // Every vehicle's tracker ran every step, so both appear in the
        // aggregate even if the untrained detector produced nothing.
        assert_eq!(stats.tracks.len(), 2);
        for (vehicle, t) in &stats.tracks {
            assert!(
                t.detections_in
                    == reports
                        .iter()
                        .flat_map(|r| &r.per_vehicle)
                        .filter(|v| v.vehicle_id == *vehicle)
                        .map(|v| v.cooperative_detections as u64)
                        .sum::<u64>(),
                "tracker input must equal the cooperative detections"
            );
            assert!(t.matched + t.spawned <= t.detections_in + t.spawned);
        }
        for r in &reports {
            for v in &r.per_vehicle {
                assert!(v.coasting_tracks <= v.confirmed_tracks);
            }
        }
        // Without a tracker the aggregate (and the report fields) stay
        // empty.
        let (plain_reports, plain_stats) = sim.run(&pipeline(), 1);
        assert!(plain_stats.tracks.is_empty());
        for v in &plain_reports[0].per_vehicle {
            assert_eq!(v.confirmed_tracks, 0);
            assert_eq!(v.coasting_tracks, 0);
        }
    }

    #[test]
    fn tracked_incremental_reports_identical_across_thread_counts() {
        use crate::tracking::TrackerConfig;
        let scene = scenario::tj_scenario_1();
        let build = |threads: Option<usize>| {
            let vehicles = vec![
                FleetVehicle {
                    id: 1,
                    trajectory: straight_trajectory(scene.observers[0], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
                FleetVehicle {
                    id: 2,
                    trajectory: straight_trajectory(scene.observers[1], 1.0, 3),
                    beams: BeamModel::vlp16().with_azimuth_steps(200),
                },
            ];
            FleetSimulation::new(
                scene.world.clone(),
                vehicles,
                FleetConfig {
                    seed: 7,
                    threads,
                    ..FleetConfig::default()
                },
            )
        };
        let p = pipeline()
            .with_tracker(TrackerConfig::default())
            .with_incremental();
        let (serial, serial_stats) = build(Some(1)).run(&p, 2);
        let (parallel, parallel_stats) = build(Some(4)).run(&p, 2);
        assert_eq!(serial_stats, parallel_stats);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn residual_mm_saturates() {
        assert_eq!(residual_to_mm(0.4517), 452);
        assert_eq!(residual_to_mm(f64::INFINITY), u32::MAX);
        assert_eq!(residual_to_mm(f64::NAN), u32::MAX);
        assert_eq!(residual_to_mm(-1.0), u32::MAX);
        assert_eq!(residual_to_mm(1.0e9), u32::MAX);
    }

    #[test]
    fn trajectory_clamps_at_end() {
        let v = FleetVehicle {
            id: 1,
            trajectory: straight_trajectory(Pose::origin(), 2.0, 3),
            beams: BeamModel::vlp16(),
        };
        assert_eq!(v.pose_at(2), v.pose_at(99));
        assert!((v.pose_at(1).position.x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn straight_trajectory_follows_heading() {
        let start = Pose::new(Vec3::ZERO, Attitude::from_yaw(std::f64::consts::FRAC_PI_2));
        let t = straight_trajectory(start, 3.0, 3);
        assert!((t[2].position.y - 6.0).abs() < 1e-12);
        assert!(t[2].position.x.abs() < 1e-12);
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seeds = vec![
            stream_seed(0, 1, 0, TX_MEASURE_STREAM),
            stream_seed(0, 1, 0, RX_MEASURE_STREAM),
            stream_seed(0, 2, 0, TX_MEASURE_STREAM),
            stream_seed(0, 1, 1, TX_MEASURE_STREAM),
            stream_seed(1, 1, 0, TX_MEASURE_STREAM),
        ];
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5, "stream seeds must not collide");
    }

    #[test]
    #[should_panic(expected = "duplicate vehicle ids")]
    fn duplicate_ids_rejected() {
        let scene = scenario::tj_scenario_1();
        let v = FleetVehicle {
            id: 1,
            trajectory: vec![scene.observers[0]],
            beams: BeamModel::vlp16(),
        };
        let _ = FleetSimulation::new(scene.world, vec![v.clone(), v], FleetConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one vehicle")]
    fn empty_fleet_rejected() {
        let _ = FleetSimulation::new(World::new(), vec![], FleetConfig::default());
    }

    /// Two stationary vehicles, trust layer on, with an optional fault
    /// plan and an aggressive trust config so transitions happen within
    /// a handful of steps.
    fn trust_fleet(plan: Option<&str>, steps: usize, threads: Option<usize>) -> FleetSimulation {
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: straight_trajectory(scene.observers[0], 0.0, steps),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: straight_trajectory(scene.observers[1], 0.0, steps),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        let config = FleetConfig {
            seed: 11,
            threads,
            sensor_model: GpsImuModel::ideal(),
            fault_plan: plan.map(|p| FaultPlan::parse(p).unwrap()),
            trust: Some(TrustGuardConfig {
                trust: TrustConfig {
                    suspect_after: 1,
                    quarantine_after: 2,
                    quarantine_steps: 2,
                    probation_clean_steps: 2,
                },
                ..TrustGuardConfig::default()
            }),
            ..FleetConfig::default()
        };
        FleetSimulation::new(scene.world, vehicles, config)
    }

    #[test]
    fn trust_clean_fleet_passes_everything() {
        let sim = trust_fleet(None, 3, None);
        let (reports, stats) = sim.run(&pipeline(), 3);
        for r in &reports {
            for v in &r.per_vehicle {
                assert_eq!(v.packets_received, 1, "CRC-framed packets still flow");
                assert_eq!(v.packets_dropped, 0, "no false positives on honest senders");
                assert_eq!(v.trust_violations, 0);
                assert_eq!(v.quarantined_peers, 0);
            }
        }
        for t in stats.trust.values() {
            assert_eq!(t.violations, 0);
            assert_eq!(t.quarantines, 0);
        }
    }

    #[test]
    fn corrupting_sender_is_quarantined_then_reinstated() {
        // Vehicle 2 flips its own payload bytes at the source for steps
        // 0..3. CRC checks fail on receiver 1 → quarantine after 2
        // violations; the fault then clears, quarantine elapses, and a
        // clean probation earns the sender back.
        let sim = trust_fleet(Some("2:corrupt:0.4@0..3"), 12, None);
        let (reports, stats) = sim.run(&pipeline(), 12);
        let drops_of = |reason_match: fn(&TransportDropReason) -> bool| -> Vec<usize> {
            reports
                .iter()
                .filter(|r| r.transport_drops.iter().any(|d| reason_match(&d.reason)))
                .map(|r| r.step)
                .collect()
        };
        let integrity = drops_of(|r| matches!(r, TransportDropReason::IntegrityFailed));
        let quarantined = drops_of(|r| matches!(r, TransportDropReason::Quarantined));
        assert!(
            !integrity.is_empty(),
            "at-source corruption must fail the receiver's CRC check"
        );
        assert!(
            !quarantined.is_empty(),
            "repeated violations must quarantine the sender"
        );
        assert!(
            integrity[0] < quarantined[0],
            "violations precede quarantine"
        );
        let t = stats.trust.get(&1).expect("receiver 1 charged violations");
        assert!(t.violations >= 2);
        assert_eq!(t.quarantines, 1);
        assert!(t.blocked_transfers >= 1);
        assert_eq!(t.reinstated, 1, "clean probation re-admits the sender");
        // After re-admission the exchange works again.
        let last = reports.last().unwrap();
        let v1 = &last.per_vehicle[0];
        assert_eq!(v1.packets_received, 1);
        assert_eq!(v1.quarantined_peers, 0);
    }

    #[test]
    fn ghost_injecting_sender_is_rejected_not_fused() {
        // Vehicle 2 fabricates three car-sized clusters per transmitted
        // scan. The consistency guard on receiver 1 must reject those
        // packets (ghost points in ego-observed free space) and fall
        // back to ego-only perception — never below it.
        let sim = trust_fleet(Some("2:ghost:3@0..4"), 4, None);
        let (reports, _stats) = sim.run(&pipeline(), 4);
        let mut rejected = 0usize;
        for r in &reports {
            for d in &r.transport_drops {
                if let TransportDropReason::ConsistencyRejected { ghost_points } = d.reason {
                    assert_eq!((d.from, d.to), (2, 1));
                    assert!(ghost_points >= 15, "verdict carries the ghost evidence");
                    rejected += 1;
                }
            }
            let v1 = &r.per_vehicle[0];
            assert!(
                v1.cooperative_detections >= v1.single_detections,
                "fused recall must never fall below ego-only"
            );
        }
        assert!(rejected >= 1, "ghost injection must be caught");
    }

    #[test]
    fn replaying_sender_is_rejected_after_onset() {
        // Vehicle 2 freezes its broadcast at step 1 and replays it from
        // step 2 on: the stamp stops advancing and the consistency
        // guard's replay check fires on every later packet.
        let sim = trust_fleet(Some("2:replay@1"), 4, None);
        let (reports, _stats) = sim.run(&pipeline(), 4);
        let mut replay_steps = Vec::new();
        for r in &reports {
            for d in &r.transport_drops {
                if matches!(
                    d.reason,
                    TransportDropReason::ConsistencyRejected { ghost_points: 0 }
                ) && (d.from, d.to) == (2, 1)
                {
                    replay_steps.push(r.step);
                }
            }
        }
        assert!(
            replay_steps.contains(&2),
            "first replayed retransmission is flagged, got {replay_steps:?}"
        );
    }

    #[test]
    fn trust_guarded_adversarial_reports_identical_across_thread_counts() {
        let plan = "2:ghost:2@0..3,2:corrupt:0.3@3..5";
        let run = |threads: Option<usize>| trust_fleet(Some(plan), 6, threads).run(&pipeline(), 6);
        let (serial, serial_stats) = run(Some(1));
        let (two, two_stats) = run(Some(2));
        let (parallel, parallel_stats) = run(Some(4));
        assert_eq!(serial_stats, two_stats);
        assert_eq!(serial_stats, parallel_stats);
        for (a, b) in serial.iter().zip(&two) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn governed_trust_fleet_prices_crc_and_survives() {
        // Trust layer + governed exchange: candidates are priced with
        // the CRC trailer (the wire-size assertion inside the exchange
        // would fire otherwise) and v2 reconstruction tolerates the
        // trailer bytes.
        let scene = scenario::tj_scenario_1();
        let vehicles = vec![
            FleetVehicle {
                id: 1,
                trajectory: straight_trajectory(scene.observers[0], 1.0, 3),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
            FleetVehicle {
                id: 2,
                trajectory: straight_trajectory(scene.observers[1], 1.0, 3),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            },
        ];
        let config = FleetConfig {
            seed: 5,
            sensor_model: GpsImuModel::ideal(),
            trust: Some(TrustGuardConfig::default()),
            ..FleetConfig::default()
        };
        let sim = FleetSimulation::new(scene.world.clone(), vehicles, config);
        let governor = GovernorConfig {
            delta_encode: true,
            ..GovernorConfig::default()
        };
        let mut policy = crate::governor::SendFirstPolicy;
        let (reports, _stats) =
            sim.run_governed(&pipeline(), 3, &mut PerfectChannel, &mut policy, &governor);
        for r in &reports {
            for v in &r.per_vehicle {
                assert_eq!(v.packets_received, 1);
                assert_eq!(v.packets_dropped, 0);
            }
        }
    }
}
