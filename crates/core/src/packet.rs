//! The Cooper exchange package.
//!
//! §II-D: "additional information is encapsulated into the exchange
//! package. Said package should be constituted from LiDAR sensor
//! installation information and its GPS reading … Vehicle's IMU reading
//! is also required because it records the offset information of the
//! vehicle during driving." The packet therefore carries the compact
//! point-cloud payload plus the transmitting vehicle's [`PoseEstimate`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cooper_geometry::{Attitude, GpsFix};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::{
    decode_cloud, decode_cloud_prefix, decode_features, decode_features_prefix, encode_cloud,
    encode_cloud_v2, encode_features, encoded_feature_size, FeatureFrame, FrameInfo, FrameKind,
    PointCloud,
};
use cooper_telemetry::names as telemetry_names;

use crate::CooperError;

const MAGIC: &[u8; 4] = b"COOP";
const VERSION: u8 = 1;
/// Fixed header: magic (4) + version (1) + vehicle id (4) + sequence (4)
/// + gps lat/lon/alt (24) + yaw/pitch/roll (24) + payload length (4).
const HEADER_BYTES: usize = 4 + 1 + 4 + 4 + 24 + 24 + 4;

/// One cooperative-perception message: a (possibly ROI-filtered) point
/// cloud in the transmitter's sensor frame plus the pose estimate needed
/// to align it.
///
/// # Examples
///
/// ```
/// use cooper_core::ExchangePacket;
/// use cooper_geometry::{Attitude, GpsFix, Vec3};
/// use cooper_lidar_sim::PoseEstimate;
/// use cooper_pointcloud::{Point, PointCloud};
///
/// # fn main() -> Result<(), cooper_core::CooperError> {
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(10.0, 0.0, -1.5), 0.4));
/// let pose = PoseEstimate {
///     gps: GpsFix::new(33.2075, -97.1526, 190.0),
///     attitude: Attitude::from_yaw(0.3),
/// };
/// let packet = ExchangePacket::build(7, 1, &cloud, pose)?;
/// let bytes = packet.to_bytes();
/// let decoded = ExchangePacket::from_bytes(&bytes)?;
/// assert_eq!(decoded.vehicle_id(), 7);
/// assert_eq!(decoded.cloud()?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangePacket {
    vehicle_id: u32,
    sequence: u32,
    pose: PoseEstimate,
    payload: Bytes,
}

impl ExchangePacket {
    /// Builds a packet by encoding `cloud` into the compact wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] when the cloud has out-of-range
    /// coordinates and [`CooperError::InvalidPose`] when the pose is not
    /// finite.
    pub fn build(
        vehicle_id: u32,
        sequence: u32,
        cloud: &PointCloud,
        pose: PoseEstimate,
    ) -> Result<Self, CooperError> {
        if !pose_is_finite(&pose) {
            return Err(CooperError::InvalidPose);
        }
        Ok(ExchangePacket {
            vehicle_id,
            sequence,
            pose,
            payload: encode_cloud(cloud)?,
        })
    }

    /// Builds a packet carrying a wire-format **v2** payload: the flags
    /// byte records whether the cloud is a delta frame and whether its
    /// static background was subtracted. Everything else — header,
    /// fragmentation, salvage — is identical to [`ExchangePacket::build`].
    ///
    /// # Errors
    ///
    /// Same as [`ExchangePacket::build`].
    pub fn build_v2(
        vehicle_id: u32,
        sequence: u32,
        cloud: &PointCloud,
        pose: PoseEstimate,
        kind: FrameKind,
        background_subtracted: bool,
    ) -> Result<Self, CooperError> {
        if !pose_is_finite(&pose) {
            return Err(CooperError::InvalidPose);
        }
        Ok(ExchangePacket {
            vehicle_id,
            sequence,
            pose,
            payload: encode_cloud_v2(cloud, kind, background_subtracted)?,
        })
    }

    /// Builds a packet carrying a wire-format **v3** quantized BEV
    /// feature payload (F-Cooper's feature-level fusion tier) instead of
    /// points. The exchange header — identity, pose, fragmentation,
    /// salvage — is identical to [`ExchangePacket::build`]; only the
    /// payload codec differs.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] when a feature cell's coordinates
    /// overflow the wire range and [`CooperError::InvalidPose`] when the
    /// pose is not finite.
    pub fn build_features(
        vehicle_id: u32,
        sequence: u32,
        frame: &FeatureFrame,
        pose: PoseEstimate,
    ) -> Result<Self, CooperError> {
        if !pose_is_finite(&pose) {
            return Err(CooperError::InvalidPose);
        }
        Ok(ExchangePacket {
            vehicle_id,
            sequence,
            pose,
            payload: encode_features(frame)?,
        })
    }

    /// Parses the payload's wire-format header — version, frame kind,
    /// background flag and declared point count.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] for a corrupt payload.
    pub fn frame_info(&self) -> Result<FrameInfo, CooperError> {
        Ok(cooper_pointcloud::frame_info(&self.payload)?)
    }

    /// The transmitting vehicle's identifier.
    pub fn vehicle_id(&self) -> u32 {
        self.vehicle_id
    }

    /// The frame sequence number.
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// The transmitter's measured pose.
    pub fn pose(&self) -> &PoseEstimate {
        &self.pose
    }

    /// Decodes the embedded point cloud (transmitter's sensor frame).
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] for a corrupt payload.
    pub fn cloud(&self) -> Result<PointCloud, CooperError> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PACKET_PAYLOAD_DECODE);
        Ok(decode_cloud(&self.payload)?)
    }

    /// Decodes the embedded quantized BEV feature frame (transmitter's
    /// sensor frame) — the v3 counterpart of
    /// [`cloud`](ExchangePacket::cloud).
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] for a corrupt payload or when the
    /// payload carries points (v1/v2) instead of features.
    pub fn feature_frame(&self) -> Result<FeatureFrame, CooperError> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PACKET_PAYLOAD_DECODE);
        Ok(decode_features(&self.payload)?)
    }

    /// Size of the encoded cloud payload, bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total size on the wire, bytes — what the DSRC feasibility study
    /// (Figure 12) accounts.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Wire size of a packet carrying `point_count` points, without
    /// building one — the pricing function of the bandwidth governor
    /// (both wire versions share the fixed per-point stride).
    pub fn wire_size_for(point_count: usize) -> usize {
        HEADER_BYTES + cooper_pointcloud::codec::encoded_size(point_count)
    }

    /// Wire size of a packet carrying a v3 feature payload with `cells`
    /// active BEV cells of `channels` channels each, without building
    /// one — prices the feature tier in the governor's candidate menu.
    pub fn wire_size_for_features(cells: usize, channels: usize) -> usize {
        HEADER_BYTES + encoded_feature_size(cells, channels)
    }

    /// The raw encoded-cloud payload — what a stateful wire-format
    /// decoder (`cooper_pointcloud::DeltaDecoder`) consumes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// A copy of this packet carrying `cloud` as a plain (v1, keyframe)
    /// payload instead of the original one; identity and pose are kept.
    /// The governed fleet path uses this to hand a receiver-side
    /// reconstructed delta stream to the fusion pipeline, which expects
    /// self-contained packets.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] when `cloud` has out-of-range
    /// coordinates.
    pub fn with_cloud(&self, cloud: &PointCloud) -> Result<Self, CooperError> {
        Ok(ExchangePacket {
            vehicle_id: self.vehicle_id,
            sequence: self.sequence,
            pose: self.pose,
            payload: encode_cloud(cloud)?,
        })
    }

    /// A copy of this packet whose payload carries the CRC-32 integrity
    /// trailer ([`cooper_pointcloud::append_crc`]). Identity and pose
    /// are kept; receivers without the check still decode the payload —
    /// legacy decoders ignore trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] when the payload header is
    /// malformed.
    pub fn with_integrity(&self) -> Result<Self, CooperError> {
        Ok(ExchangePacket {
            vehicle_id: self.vehicle_id,
            sequence: self.sequence,
            pose: self.pose,
            payload: cooper_pointcloud::append_crc(&self.payload)?,
        })
    }

    /// Verifies the payload's CRC-32 trailer without decoding it.
    /// Returns `Ok(true)` when a trailer is present and matches,
    /// `Ok(false)` when the payload was never CRC-framed.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Codec`] when the trailer mismatches the
    /// content or the payload header is malformed.
    pub fn verify_integrity(&self) -> Result<bool, CooperError> {
        Ok(cooper_pointcloud::verify_frame_crc(&self.payload)?)
    }

    /// A copy of this packet with roughly `rate` of its payload bytes
    /// bit-flipped, drawn from a deterministic stream seeded by `seed`
    /// — the at-source tampering a malicious sender applies before
    /// broadcast ([`cooper_lidar_sim::FaultKind::PayloadCorruption`]).
    /// The payload *header* is left intact so the damage is content
    /// corruption, not framing garbage; a CRC trailer, if present, is
    /// deliberately **not** recomputed.
    pub fn with_flipped_payload_bytes(&self, rate: f64, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut payload = self.payload.to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        // Skip the payload's own header so frame_info still parses.
        let start = cooper_pointcloud::codec::WIRE_HEADER_BYTES.min(payload.len());
        for byte in &mut payload[start..] {
            if rng.gen::<f64>() < rate {
                *byte ^= 1u8 << rng.gen_range(0..8);
            }
        }
        ExchangePacket {
            vehicle_id: self.vehicle_id,
            sequence: self.sequence,
            pose: self.pose,
            payload: Bytes::from(payload),
        }
    }

    /// Serializes the packet for transmission.
    pub fn to_bytes(&self) -> Bytes {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PACKET_ENCODE);
        cooper_telemetry::record_value(telemetry_names::PACKET_WIRE_BYTES, self.wire_size() as u64);
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.vehicle_id);
        buf.put_u32(self.sequence);
        buf.put_f64(self.pose.gps.latitude);
        buf.put_f64(self.pose.gps.longitude);
        buf.put_f64(self.pose.gps.altitude);
        buf.put_f64(self.pose.attitude.yaw);
        buf.put_f64(self.pose.attitude.pitch);
        buf.put_f64(self.pose.attitude.roll);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Deserializes a packet received from the network.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Truncated`], [`CooperError::BadMagic`],
    /// [`CooperError::UnsupportedVersion`] or [`CooperError::InvalidPose`]
    /// for malformed input.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CooperError> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PACKET_DECODE);
        if bytes.len() < HEADER_BYTES {
            return Err(CooperError::Truncated {
                expected: HEADER_BYTES,
                actual: bytes.len(),
            });
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CooperError::BadMagic);
        }
        let version = bytes.get_u8();
        if version != VERSION {
            return Err(CooperError::UnsupportedVersion(version));
        }
        let vehicle_id = bytes.get_u32();
        let sequence = bytes.get_u32();
        let latitude = bytes.get_f64();
        let longitude = bytes.get_f64();
        let altitude = bytes.get_f64();
        let yaw = bytes.get_f64();
        let pitch = bytes.get_f64();
        let roll = bytes.get_f64();
        let payload_len = bytes.get_u32() as usize;
        if bytes.remaining() < payload_len {
            return Err(CooperError::Truncated {
                expected: HEADER_BYTES + payload_len,
                actual: HEADER_BYTES + bytes.remaining(),
            });
        }
        let pose = PoseEstimate {
            gps: GpsFix::new(
                latitude.clamp(-90.0, 90.0),
                longitude.clamp(-180.0, 180.0),
                altitude,
            ),
            attitude: Attitude::new(yaw, pitch, roll),
        };
        if !pose_is_finite(&pose) {
            return Err(CooperError::InvalidPose);
        }
        Ok(ExchangePacket {
            vehicle_id,
            sequence,
            pose,
            payload: Bytes::copy_from_slice(&bytes[..payload_len]),
        })
    }

    /// Deserializes the leading portion of a packet whose tail never
    /// arrived — the salvage path for partial deliveries.
    ///
    /// The full header must be present; the payload may be truncated
    /// anywhere. Whatever whole points the truncated payload contains
    /// are decoded ([`cooper_pointcloud::decode_cloud_prefix`]) and
    /// re-encoded into a shorter, self-consistent packet. Returns the
    /// salvaged packet plus the fraction of payload points recovered
    /// (`0.0..=1.0`).
    ///
    /// # Errors
    ///
    /// Returns the same header errors as
    /// [`ExchangePacket::from_bytes`], plus [`CooperError::Truncated`]
    /// when not even the payload's own header survived.
    pub fn from_partial_bytes(bytes: &[u8]) -> Result<(Self, f64), CooperError> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_PACKET_DECODE_PARTIAL);
        if bytes.len() < HEADER_BYTES {
            return Err(CooperError::Truncated {
                expected: HEADER_BYTES,
                actual: bytes.len(),
            });
        }
        let mut header = &bytes[..HEADER_BYTES];
        let mut magic = [0u8; 4];
        header.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CooperError::BadMagic);
        }
        let version = header.get_u8();
        if version != VERSION {
            return Err(CooperError::UnsupportedVersion(version));
        }
        let vehicle_id = header.get_u32();
        let sequence = header.get_u32();
        let latitude = header.get_f64();
        let longitude = header.get_f64();
        let altitude = header.get_f64();
        let yaw = header.get_f64();
        let pitch = header.get_f64();
        let roll = header.get_f64();
        let payload_len = header.get_u32() as usize;
        let pose = PoseEstimate {
            gps: GpsFix::new(
                latitude.clamp(-90.0, 90.0),
                longitude.clamp(-180.0, 180.0),
                altitude,
            ),
            attitude: Attitude::new(yaw, pitch, roll),
        };
        if !pose_is_finite(&pose) {
            return Err(CooperError::InvalidPose);
        }
        let available = payload_len.min(bytes.len() - HEADER_BYTES);
        let payload = &bytes[HEADER_BYTES..HEADER_BYTES + available];
        let info = cooper_pointcloud::frame_info(payload)?;
        if info.kind == FrameKind::Features {
            // v3 salvage: recover whole feature cells and re-encode
            // them as a shorter, self-consistent feature frame.
            let (prefix_frame, declared_cells) = decode_features_prefix(payload)?;
            let fraction = if declared_cells == 0 {
                1.0
            } else {
                prefix_frame.len() as f64 / declared_cells as f64
            };
            let packet = ExchangePacket::build_features(vehicle_id, sequence, &prefix_frame, pose)?;
            return Ok((packet, fraction));
        }
        let (prefix_cloud, declared_points) = decode_cloud_prefix(payload)?;
        let fraction = if declared_points == 0 {
            1.0
        } else {
            prefix_cloud.len() as f64 / declared_points as f64
        };
        // Re-encode the salvaged prefix under the original payload's
        // version and flags: a truncated delta frame stays a delta
        // frame, so receivers keep interpreting it correctly.
        let packet = if info.version >= 2 {
            ExchangePacket::build_v2(
                vehicle_id,
                sequence,
                &prefix_cloud,
                pose,
                info.kind,
                info.background_subtracted,
            )?
        } else {
            ExchangePacket::build(vehicle_id, sequence, &prefix_cloud, pose)?
        };
        Ok((packet, fraction))
    }
}

fn pose_is_finite(pose: &PoseEstimate) -> bool {
    pose.gps.latitude.is_finite()
        && pose.gps.longitude.is_finite()
        && pose.gps.altitude.is_finite()
        && pose.attitude.yaw.is_finite()
        && pose.attitude.pitch.is_finite()
        && pose.attitude.roll.is_finite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_pointcloud::Point;

    fn sample_pose() -> PoseEstimate {
        PoseEstimate {
            gps: GpsFix::new(33.2075, -97.1526, 190.0),
            attitude: Attitude::new(0.3, 0.01, -0.02),
        }
    }

    fn sample_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| Point::new(Vec3::new(i as f64 * 0.1, -1.0, 0.5), 0.5))
            .collect()
    }

    #[test]
    fn round_trip() {
        let packet = ExchangePacket::build(42, 7, &sample_cloud(100), sample_pose()).unwrap();
        let bytes = packet.to_bytes();
        assert_eq!(bytes.len(), packet.wire_size());
        let back = ExchangePacket::from_bytes(&bytes).unwrap();
        assert_eq!(back.vehicle_id(), 42);
        assert_eq!(back.sequence(), 7);
        assert_eq!(back.pose(), packet.pose());
        assert_eq!(back.cloud().unwrap().len(), 100);
    }

    #[test]
    fn truncated_packet_rejected() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(10), sample_pose()).unwrap();
        let bytes = packet.to_bytes();
        for cut in [3, HEADER_BYTES - 1, bytes.len() - 1] {
            let err = ExchangePacket::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CooperError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(1), sample_pose()).unwrap();
        let mut bytes = packet.to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(
            ExchangePacket::from_bytes(&bytes).unwrap_err(),
            CooperError::BadMagic
        );
        let mut bytes2 = packet.to_bytes().to_vec();
        bytes2[4] = 200;
        assert_eq!(
            ExchangePacket::from_bytes(&bytes2).unwrap_err(),
            CooperError::UnsupportedVersion(200)
        );
    }

    #[test]
    fn non_finite_pose_rejected_at_build() {
        let mut pose = sample_pose();
        pose.attitude.yaw = f64::NAN;
        assert_eq!(
            ExchangePacket::build(1, 1, &sample_cloud(1), pose).unwrap_err(),
            CooperError::InvalidPose
        );
    }

    #[test]
    fn non_finite_pose_rejected_at_decode() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(1), sample_pose()).unwrap();
        let mut bytes = packet.to_bytes().to_vec();
        // Overwrite the yaw field (offset 13 + 24 = 37) with NaN bits.
        bytes[37..45].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(
            ExchangePacket::from_bytes(&bytes).unwrap_err(),
            CooperError::InvalidPose
        );
    }

    #[test]
    fn corrupted_payload_surfaces_codec_error() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(5), sample_pose()).unwrap();
        let mut bytes = packet.to_bytes().to_vec();
        // Corrupt the payload's CPPC magic.
        bytes[HEADER_BYTES] = b'Z';
        let decoded = ExchangePacket::from_bytes(&bytes).unwrap();
        assert!(matches!(decoded.cloud(), Err(CooperError::Codec(_))));
    }

    #[test]
    fn partial_bytes_salvage_whole_points() {
        let packet = ExchangePacket::build(9, 3, &sample_cloud(100), sample_pose()).unwrap();
        let bytes = packet.to_bytes();
        // Keep the header, the payload header and 40 whole points plus
        // a ragged half-point.
        let cut = HEADER_BYTES + 10 + 40 * 7 + 3;
        let (salvaged, fraction) = ExchangePacket::from_partial_bytes(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.vehicle_id(), 9);
        assert_eq!(salvaged.sequence(), 3);
        assert_eq!(salvaged.pose(), packet.pose());
        assert_eq!(salvaged.cloud().unwrap().len(), 40);
        assert!((fraction - 0.4).abs() < 1e-12);
        // The salvaged packet is self-consistent on the wire.
        let rt = ExchangePacket::from_bytes(&salvaged.to_bytes()).unwrap();
        assert_eq!(rt.cloud().unwrap().len(), 40);
    }

    #[test]
    fn partial_bytes_of_complete_packet_are_lossless() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(50), sample_pose()).unwrap();
        let (salvaged, fraction) = ExchangePacket::from_partial_bytes(&packet.to_bytes()).unwrap();
        assert_eq!(salvaged, packet);
        assert_eq!(fraction, 1.0);
    }

    #[test]
    fn partial_bytes_require_the_header() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(10), sample_pose()).unwrap();
        let bytes = packet.to_bytes();
        // Packet header alone (no payload header): truncated.
        assert!(matches!(
            ExchangePacket::from_partial_bytes(&bytes[..HEADER_BYTES + 4]).unwrap_err(),
            CooperError::Truncated { .. } | CooperError::Codec(_)
        ));
        assert!(matches!(
            ExchangePacket::from_partial_bytes(&bytes[..HEADER_BYTES - 1]).unwrap_err(),
            CooperError::Truncated { .. }
        ));
    }

    #[test]
    fn v2_payload_round_trips_and_keeps_flags() {
        let packet = ExchangePacket::build_v2(
            4,
            2,
            &sample_cloud(60),
            sample_pose(),
            FrameKind::Delta,
            true,
        )
        .unwrap();
        let back = ExchangePacket::from_bytes(&packet.to_bytes()).unwrap();
        assert_eq!(back, packet);
        let info = back.frame_info().unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.kind, FrameKind::Delta);
        assert!(info.background_subtracted);
        assert_eq!(back.cloud().unwrap().len(), 60);
    }

    #[test]
    fn v2_partial_salvage_preserves_frame_kind() {
        let packet = ExchangePacket::build_v2(
            9,
            3,
            &sample_cloud(100),
            sample_pose(),
            FrameKind::Delta,
            true,
        )
        .unwrap();
        let bytes = packet.to_bytes();
        let cut = HEADER_BYTES + 10 + 40 * 7 + 3;
        let (salvaged, fraction) = ExchangePacket::from_partial_bytes(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.cloud().unwrap().len(), 40);
        assert!((fraction - 0.4).abs() < 1e-12);
        // The truncated delta stays a delta on re-encode.
        let info = salvaged.frame_info().unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.kind, FrameKind::Delta);
        assert!(info.background_subtracted);
    }

    #[test]
    fn v1_frame_info_reported() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(5), sample_pose()).unwrap();
        let info = packet.frame_info().unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.kind, FrameKind::Keyframe);
    }

    fn sample_features(cells: usize, channels: usize) -> FeatureFrame {
        let coords: Vec<(i32, i32)> = (0..cells as i32).map(|i| (i, i * 2)).collect();
        let values: Vec<f32> = (0..cells * channels)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        FeatureFrame::new(channels, coords, values)
    }

    #[test]
    fn feature_packet_round_trips() {
        let frame = sample_features(40, 11);
        let packet = ExchangePacket::build_features(7, 5, &frame, sample_pose()).unwrap();
        assert_eq!(
            packet.wire_size(),
            ExchangePacket::wire_size_for_features(40, 11)
        );
        let back = ExchangePacket::from_bytes(&packet.to_bytes()).unwrap();
        assert_eq!(back, packet);
        let info = back.frame_info().unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.kind, FrameKind::Features);
        let decoded = back.feature_frame().unwrap();
        assert_eq!(decoded.cells(), frame.cells());
        let bound = f64::from(frame.quantization_scale()) / 254.0 + 1e-6;
        for (a, b) in decoded.features().iter().zip(frame.features()) {
            assert!((f64::from(*a) - f64::from(*b)).abs() <= bound);
        }
    }

    #[test]
    fn feature_packet_rejects_point_decoder_and_vice_versa() {
        let feature_packet =
            ExchangePacket::build_features(1, 1, &sample_features(4, 3), sample_pose()).unwrap();
        assert!(matches!(feature_packet.cloud(), Err(CooperError::Codec(_))));
        let point_packet = ExchangePacket::build(1, 1, &sample_cloud(4), sample_pose()).unwrap();
        assert!(matches!(
            point_packet.feature_frame(),
            Err(CooperError::Codec(_))
        ));
    }

    #[test]
    fn v3_partial_salvage_recovers_whole_cells() {
        let frame = sample_features(50, 8);
        let packet = ExchangePacket::build_features(9, 3, &frame, sample_pose()).unwrap();
        let bytes = packet.to_bytes();
        // Exchange header + feature header (15) + 20 whole cells of
        // stride 4 + 8, plus a ragged half-cell.
        let cut = HEADER_BYTES + 15 + 20 * 12 + 5;
        let (salvaged, fraction) = ExchangePacket::from_partial_bytes(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.vehicle_id(), 9);
        assert!((fraction - 0.4).abs() < 1e-12);
        let recovered = salvaged.feature_frame().unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(recovered.cells(), &frame.cells()[..20]);
        // The salvaged packet stays a feature frame on the wire.
        let info = salvaged.frame_info().unwrap();
        assert_eq!(info.kind, FrameKind::Features);
    }

    #[test]
    fn integrity_trailer_round_trips_and_detects_tampering() {
        let packet = ExchangePacket::build(3, 8, &sample_cloud(30), sample_pose()).unwrap();
        assert!(!packet.verify_integrity().unwrap(), "no trailer yet");
        let framed = packet.with_integrity().unwrap();
        assert!(framed.verify_integrity().unwrap());
        assert_eq!(framed.cloud().unwrap().len(), 30);
        // Survives the wire round trip.
        let rt = ExchangePacket::from_bytes(&framed.to_bytes()).unwrap();
        assert!(rt.verify_integrity().unwrap());
        // At-source tampering breaks the trailer — and the decoder
        // refuses the payload outright.
        let tampered = framed.with_flipped_payload_bytes(0.2, 99);
        assert!(matches!(
            tampered.verify_integrity(),
            Err(CooperError::Codec(_))
        ));
        assert!(matches!(tampered.cloud(), Err(CooperError::Codec(_))));
    }

    #[test]
    fn flipped_payload_is_deterministic_and_undetected_without_crc() {
        let packet = ExchangePacket::build(1, 1, &sample_cloud(50), sample_pose()).unwrap();
        let a = packet.with_flipped_payload_bytes(0.1, 7);
        let b = packet.with_flipped_payload_bytes(0.1, 7);
        assert_eq!(a, b);
        assert_ne!(a.payload(), packet.payload());
        let c = packet.with_flipped_payload_bytes(0.1, 8);
        assert_ne!(a.payload(), c.payload(), "seed varies the damage");
        // Without a trailer the damage sails through verification —
        // the motivating gap for the integrity layer.
        assert!(!a.verify_integrity().unwrap());
    }

    #[test]
    fn wire_size_tracks_roi_payload() {
        let full = ExchangePacket::build(1, 1, &sample_cloud(1000), sample_pose()).unwrap();
        let roi = ExchangePacket::build(1, 1, &sample_cloud(100), sample_pose()).unwrap();
        assert!(roi.wire_size() < full.wire_size());
        assert_eq!(full.wire_size() - roi.wire_size(), 900 * 7);
    }
}
