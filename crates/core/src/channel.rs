//! The channel-model API: who hears whom, decided one transfer at a
//! time.
//!
//! The fleet loop used to take a bare `FnMut(usize, u32, u32, usize) ->
//! bool` — four anonymous integers whose meaning lived only in a doc
//! comment. [`ChannelModel`] names the contract: the simulation asks
//! the channel about each directed transfer via a [`TransferCtx`], and
//! the channel answers whether the packet arrives. Stateful media
//! (air-time budgets, contention, per-link loss) keep their state in
//! `self`; `cooper-v2x` implements the trait for its `SharedMedium` and
//! `ExchangeScheduler`.
//!
//! Closures still work: any `FnMut(usize, u32, u32, usize) -> bool`
//! implements `ChannelModel` through a blanket impl, so quick one-off
//! filters in tests don't need a named type.
//!
//! Delivery decisions are always made **serially, in deterministic
//! order** (by step, then receiver, then sender) — the channel is the
//! one stage of the parallel fleet loop that must observe a single
//! global order, because shared-medium state makes delivery of one
//! packet depend on every packet before it.

use serde::{Deserialize, Serialize};

/// Everything a channel model may consult about one directed transfer.
///
/// Fields are the stable identity of the transfer, not indices into
/// simulation internals, so models can key per-link state off
/// `(from, to)` and per-window state off `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferCtx {
    /// Simulation step the transfer happens in.
    pub step: usize,
    /// Transmitting vehicle's id.
    pub from: u32,
    /// Receiving vehicle's id.
    pub to: u32,
    /// Bytes the packet occupies on the wire.
    pub wire_bytes: usize,
}

/// What became of one directed transfer — the graded verdict behind
/// the boolean [`ChannelModel::deliver`] answer.
///
/// `Partial` carries byte counts rather than a float so the verdict
/// stays `Eq`-comparable (and therefore usable in deterministic report
/// diffs); use [`Delivery::fraction`] for the ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delivery {
    /// The whole packet arrived in time.
    Delivered,
    /// Nothing usable arrived (loss, saturation, or policy).
    Dropped,
    /// The delivery deadline expired before any usable prefix arrived.
    DeadlineExceeded,
    /// The deadline expired mid-transfer: only a leading portion of the
    /// wire bytes arrived, available for salvage.
    Partial {
        /// Contiguous leading wire bytes that arrived.
        delivered_bytes: usize,
        /// Total wire bytes of the packet.
        total_bytes: usize,
    },
    /// The packet arrived but bytes were damaged in flight (bit flips
    /// or mid-frame truncation the link layer detected). Nothing of it
    /// is trustworthy — content-integrity checks, not salvage, decide
    /// what happens next.
    Corrupted,
}

impl Delivery {
    /// Fraction of the packet that arrived, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        match self {
            Delivery::Delivered => 1.0,
            Delivery::Dropped | Delivery::DeadlineExceeded | Delivery::Corrupted => 0.0,
            Delivery::Partial {
                delivered_bytes,
                total_bytes,
            } => {
                if *total_bytes == 0 {
                    0.0
                } else {
                    *delivered_bytes as f64 / *total_bytes as f64
                }
            }
        }
    }
}

/// Decides, per directed transfer, whether a packet is delivered.
///
/// Implementations may be stateful (`&mut self`): a shared medium
/// spends air time, a scheduler counts sends per window. The fleet
/// simulation calls [`ChannelModel::deliver_verdict`] in a
/// deterministic order — by step, then receiver id order, then sender
/// order — so stateful models behave identically run to run and at any
/// thread count.
pub trait ChannelModel {
    /// Returns `true` when the packet described by `tx` arrives.
    fn deliver(&mut self, tx: &TransferCtx) -> bool;

    /// The graded form of [`ChannelModel::deliver`]: distinguishes
    /// deadline misses and partial (salvageable) deliveries from plain
    /// drops. The default maps the boolean answer to
    /// [`Delivery::Delivered`] / [`Delivery::Dropped`]; models with
    /// ARQ + deadline semantics override this.
    fn deliver_verdict(&mut self, tx: &TransferCtx) -> Delivery {
        if self.deliver(tx) {
            Delivery::Delivered
        } else {
            Delivery::Dropped
        }
    }

    /// Called by the fleet loop once at the start of each step's
    /// exchange phase, before any delivery question of that step.
    /// Stateful media reset per-window accounting here (e.g. a
    /// one-second air-time window). The default does nothing.
    fn on_step_begin(&mut self, step: usize) {
        let _ = step;
    }

    /// Air time `payload_bytes` would occupy on this channel, seconds.
    /// `None` (the default) means the model does not account air time —
    /// budget-aware callers (the bandwidth governor) then have no size
    /// signal and fall back to their unconstrained choice.
    fn airtime_for(&self, payload_bytes: usize) -> Option<f64> {
        let _ = payload_bytes;
        None
    }

    /// Air time still unspent in the current window, seconds. `None`
    /// (the default) when the model keeps no window accounting.
    fn airtime_headroom_s(&self) -> Option<f64> {
        None
    }
}

/// The ideal channel: every packet arrives. The default for
/// [`crate::fleet::FleetSimulation::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectChannel;

impl ChannelModel for PerfectChannel {
    fn deliver(&mut self, _tx: &TransferCtx) -> bool {
        true
    }
}

/// Blanket impl: the old closure form keeps working. The callback
/// receives `(step, from, to, wire_bytes)` — the same four values,
/// now also available as a named [`TransferCtx`].
impl<F> ChannelModel for F
where
    F: FnMut(usize, u32, u32, usize) -> bool,
{
    fn deliver(&mut self, tx: &TransferCtx) -> bool {
        self(tx.step, tx.from, tx.to, tx.wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(step: usize, from: u32, to: u32, bytes: usize) -> TransferCtx {
        TransferCtx {
            step,
            from,
            to,
            wire_bytes: bytes,
        }
    }

    #[test]
    fn perfect_channel_delivers_everything() {
        let mut channel = PerfectChannel;
        for step in 0..4 {
            assert!(channel.deliver(&ctx(step, 1, 2, 100_000)));
        }
    }

    #[test]
    fn closures_implement_channel_model() {
        let mut seen = Vec::new();
        let mut filter = |step: usize, from: u32, to: u32, bytes: usize| {
            seen.push((step, from, to, bytes));
            from != 2
        };
        assert!(filter.deliver(&ctx(0, 1, 2, 64)));
        assert!(!filter.deliver(&ctx(1, 2, 1, 64)));
        assert_eq!(seen, vec![(0, 1, 2, 64), (1, 2, 1, 64)]);
    }

    #[test]
    fn default_verdict_mirrors_deliver() {
        let mut channel = PerfectChannel;
        assert_eq!(
            channel.deliver_verdict(&ctx(0, 1, 2, 10)),
            Delivery::Delivered
        );
        let mut never = |_: usize, _: u32, _: u32, _: usize| false;
        assert_eq!(never.deliver_verdict(&ctx(0, 1, 2, 10)), Delivery::Dropped);
    }

    #[test]
    fn delivery_fraction() {
        assert_eq!(Delivery::Delivered.fraction(), 1.0);
        assert_eq!(Delivery::Dropped.fraction(), 0.0);
        assert_eq!(Delivery::DeadlineExceeded.fraction(), 0.0);
        assert_eq!(Delivery::Corrupted.fraction(), 0.0);
        let half = Delivery::Partial {
            delivered_bytes: 50,
            total_bytes: 100,
        };
        assert!((half.fraction() - 0.5).abs() < 1e-12);
        let degenerate = Delivery::Partial {
            delivered_bytes: 0,
            total_bytes: 0,
        };
        assert_eq!(degenerate.fraction(), 0.0);
    }

    #[test]
    fn stateful_closure_keeps_state_across_calls() {
        let mut budget = 2usize;
        let mut capped = move |_: usize, _: u32, _: u32, _: usize| {
            if budget == 0 {
                false
            } else {
                budget -= 1;
                true
            }
        };
        assert!(capped.deliver(&ctx(0, 1, 2, 1)));
        assert!(capped.deliver(&ctx(0, 2, 1, 1)));
        assert!(!capped.deliver(&ctx(0, 3, 1, 1)));
    }
}
