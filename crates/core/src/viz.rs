//! Plain-text bird's-eye-view rendering of clouds and detections.
//!
//! The paper's qualitative figures (2 and 5) are screenshots of merged
//! point clouds with detection boxes. A terminal reproduction needs a
//! terminal rendering: this module draws a top-down ASCII map of a
//! sensor-frame cloud with detection and ground-truth boxes overlaid,
//! used by the example binaries.

use cooper_geometry::Obb3;
use cooper_pointcloud::PointCloud;
use cooper_spod::Detection;

/// Configuration of the ASCII bird's-eye view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BevViewConfig {
    /// Half-width of the rendered square, metres (the view covers
    /// `[-extent, extent]` in x and y around the sensor).
    pub extent_m: f64,
    /// Output width in characters (height is half of it — terminal
    /// cells are roughly twice as tall as wide).
    pub columns: usize,
}

impl Default for BevViewConfig {
    fn default() -> Self {
        BevViewConfig {
            extent_m: 40.0,
            columns: 100,
        }
    }
}

/// Renders a sensor-frame cloud with detections (`#`) and ground-truth
/// boxes (`o`) over points (`·`); the sensor sits at the center (`S`),
/// +x (vehicle forward) points right.
///
/// # Panics
///
/// Panics when `config.columns < 10` or `config.extent_m <= 0`.
///
/// # Examples
///
/// ```
/// use cooper_core::viz::{render_bev, BevViewConfig};
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(10.0, 0.0, -1.0), 0.5));
/// let art = render_bev(&cloud, &[], &[], &BevViewConfig::default());
/// assert!(art.contains('S'));
/// assert!(art.contains('·'));
/// ```
pub fn render_bev(
    cloud: &PointCloud,
    detections: &[Detection],
    ground_truth: &[Obb3],
    config: &BevViewConfig,
) -> String {
    assert!(config.columns >= 10, "need at least 10 columns");
    assert!(config.extent_m > 0.0, "extent must be positive");
    let cols = config.columns;
    let rows = cols / 2;
    let mut grid = vec![vec![' '; cols]; rows];

    // x (forward) → screen column, y (left) → screen row (up).
    let to_cell = |x: f64, y: f64| -> Option<(usize, usize)> {
        let cx = ((x + config.extent_m) / (2.0 * config.extent_m) * cols as f64) as isize;
        let cy = ((config.extent_m - y) / (2.0 * config.extent_m) * rows as f64) as isize;
        (cx >= 0 && cx < cols as isize && cy >= 0 && cy < rows as isize)
            .then_some((cy as usize, cx as usize))
    };

    for p in cloud.iter() {
        if let Some((r, c)) = to_cell(p.position.x, p.position.y) {
            grid[r][c] = '·';
        }
    }
    let mut draw_box = |obb: &Obb3, glyph: char| {
        let corners = obb.bev_corners();
        for i in 0..4 {
            let (x0, y0) = corners[i];
            let (x1, y1) = corners[(i + 1) % 4];
            let steps = 16;
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                if let Some((r, c)) = to_cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t) {
                    grid[r][c] = glyph;
                }
            }
        }
    };
    for gt in ground_truth {
        draw_box(gt, 'o');
    }
    for det in detections {
        draw_box(&det.obb, '#');
    }
    if let Some((r, c)) = to_cell(0.0, 0.0) {
        grid[r][c] = 'S';
    }

    let mut out = String::with_capacity(rows * (cols + 1) + 64);
    out.push_str(&format!(
        "BEV ±{:.0} m — S sensor, · points, # detections, o ground truth\n",
        config.extent_m
    ));
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_lidar_sim::ObjectClass;
    use cooper_pointcloud::Point;

    fn cloud_with(points: &[(f64, f64)]) -> PointCloud {
        points
            .iter()
            .map(|&(x, y)| Point::new(Vec3::new(x, y, -1.0), 0.5))
            .collect()
    }

    #[test]
    fn renders_sensor_points_and_boxes() {
        let cloud = cloud_with(&[(10.0, 0.0), (-5.0, 5.0)]);
        let det = Detection {
            class: ObjectClass::Car,
            obb: Obb3::new(Vec3::new(10.0, 0.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
            score: 0.9,
        };
        let gt = Obb3::new(Vec3::new(-20.0, -10.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.4);
        let art = render_bev(&cloud, &[det], &[gt], &BevViewConfig::default());
        assert!(art.contains('S'));
        assert!(art.contains('·'));
        assert!(art.contains('#'));
        assert!(art.contains('o'));
        // Rows + legend line.
        assert_eq!(art.lines().count(), 51);
    }

    #[test]
    fn out_of_extent_content_is_clipped() {
        let cloud = cloud_with(&[(500.0, 0.0)]);
        let art = render_bev(&cloud, &[], &[], &BevViewConfig::default());
        // Skip the legend line (it names the '·' glyph).
        assert!(art.lines().skip(1).all(|l| !l.contains('·')));
    }

    #[test]
    fn forward_is_right_and_left_is_up() {
        let art = render_bev(
            &cloud_with(&[(30.0, 0.0)]),
            &[],
            &[],
            &BevViewConfig::default(),
        );
        // The point row: find '·' and 'S' positions.
        let mut dot = None;
        let mut sensor = None;
        for (r, line) in art.lines().skip(1).enumerate() {
            if let Some(c) = line.find('·') {
                dot = Some((r, c));
            }
            if let Some(c) = line.find('S') {
                sensor = Some((r, c));
            }
        }
        let (dr, dc) = dot.expect("dot rendered");
        let (sr, sc) = sensor.expect("sensor rendered");
        assert_eq!(dr, sr, "forward point stays on the sensor row");
        assert!(dc > sc, "forward is to the right");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn tiny_view_panics() {
        let _ = render_bev(
            &PointCloud::new(),
            &[],
            &[],
            &BevViewConfig {
                extent_m: 10.0,
                columns: 4,
            },
        );
    }
}
