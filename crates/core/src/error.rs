//! Error type of the Cooper pipeline.

use std::error::Error;
use std::fmt;

use cooper_pointcloud::CodecError;

/// Errors produced while building, encoding, decoding or fusing
/// exchange packets.
#[derive(Debug, Clone, PartialEq)]
pub enum CooperError {
    /// The embedded point-cloud payload failed to encode or decode.
    Codec(CodecError),
    /// The packet buffer ended before the declared payload was complete.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The packet did not start with the expected magic bytes.
    BadMagic,
    /// The packet version is unsupported.
    UnsupportedVersion(u8),
    /// A received pose contained non-finite values — alignment would
    /// produce garbage, so the packet is rejected.
    InvalidPose,
    /// A received feature frame's channel count does not match the
    /// receiver's detector heads — fusing it would feed the RPN garbage,
    /// so the packet is excluded from fusion.
    FeatureMismatch {
        /// Channels the receiver's detector expects.
        expected: usize,
        /// Channels the received frame carries.
        actual: usize,
    },
    /// The alignment guard could not verify (or repair) the claimed
    /// transform; the cloud was excluded from fusion and the receiver
    /// degraded to ego-only perception.
    AlignmentRejected {
        /// Post-refinement matched residual, metres. Infinite residuals
        /// (no verifiable overlap) are reported as `f64::INFINITY`.
        residual_m: f64,
    },
}

impl CooperError {
    /// Stable machine-readable label for this error variant, used as a
    /// drop-reason key in telemetry counters
    /// (`pipeline.drop.<kind>`) and structured events.
    pub fn kind(&self) -> &'static str {
        match self {
            CooperError::Codec(_) => "codec",
            CooperError::Truncated { .. } => "truncated",
            CooperError::BadMagic => "bad_magic",
            CooperError::UnsupportedVersion(_) => "unsupported_version",
            CooperError::InvalidPose => "invalid_pose",
            CooperError::FeatureMismatch { .. } => "feature_mismatch",
            CooperError::AlignmentRejected { .. } => "alignment_rejected",
        }
    }
}

impl fmt::Display for CooperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CooperError::Codec(e) => write!(f, "point cloud payload: {e}"),
            CooperError::Truncated { expected, actual } => {
                write!(
                    f,
                    "packet truncated: expected {expected} bytes, got {actual}"
                )
            }
            CooperError::BadMagic => write!(f, "packet does not start with COOP magic"),
            CooperError::UnsupportedVersion(v) => write!(f, "unsupported packet version {v}"),
            CooperError::InvalidPose => write!(f, "received pose contains non-finite values"),
            CooperError::FeatureMismatch { expected, actual } => {
                write!(
                    f,
                    "feature frame carries {actual} channels, detector expects {expected}"
                )
            }
            CooperError::AlignmentRejected { residual_m } => {
                write!(
                    f,
                    "alignment guard rejected the cloud (residual {residual_m:.3} m)"
                )
            }
        }
    }
}

impl Error for CooperError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CooperError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CooperError {
    fn from(e: CodecError) -> Self {
        CooperError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_sources_chain() {
        let errs: Vec<CooperError> = vec![
            CooperError::Codec(CodecError::BadMagic),
            CooperError::Truncated {
                expected: 10,
                actual: 2,
            },
            CooperError::BadMagic,
            CooperError::UnsupportedVersion(9),
            CooperError::InvalidPose,
            CooperError::FeatureMismatch {
                expected: 11,
                actual: 8,
            },
            CooperError::AlignmentRejected { residual_m: 1.5 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        let wrapped = CooperError::from(CodecError::BadMagic);
        assert!(wrapped.source().is_some());
        assert!(CooperError::BadMagic.source().is_none());
    }

    #[test]
    fn kinds_are_distinct_snake_case_labels() {
        let errs: Vec<CooperError> = vec![
            CooperError::Codec(CodecError::BadMagic),
            CooperError::Truncated {
                expected: 10,
                actual: 2,
            },
            CooperError::BadMagic,
            CooperError::UnsupportedVersion(9),
            CooperError::InvalidPose,
            CooperError::FeatureMismatch {
                expected: 11,
                actual: 8,
            },
            CooperError::AlignmentRejected { residual_m: 1.5 },
        ];
        let kinds: Vec<&str> = errs.iter().map(CooperError::kind).collect();
        let mut unique = kinds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len(), "kinds must be distinct");
        for kind in kinds {
            assert!(kind.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
