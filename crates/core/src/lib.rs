//! Cooper — raw-data-level cooperative perception for connected
//! autonomous vehicles.
//!
//! This crate is the heart of the reproduction of *Cooper: Cooperative
//! Perception for Connected Autonomous Vehicles based on 3D Point
//! Clouds* (Chen, Tang, Yang, Fu — ICDCS 2019). Connected vehicles
//! exchange **raw LiDAR point clouds** together with their GPS and IMU
//! readings; a receiver aligns each received cloud into its own sensor
//! frame (the paper's Equations 1–3), merges it with its own scan
//! (Equation 2) and runs the SPOD detector on the fused cloud. Compared
//! to single-vehicle perception this extends the sensing area, raises
//! detection scores, and discovers objects *neither* vehicle could
//! detect alone — the failure case object-level fusion can never fix.
//!
//! Pipeline overview:
//!
//! ```text
//! transmitter                         receiver
//! ───────────                         ────────
//! scan ──► ROI filter ──► packet ──►  decode ──► align (Eq.1–3) ─┐
//!                      (GPS+IMU)                                 ▼
//!                                     own scan ────────────► merge (Eq.2)
//!                                                                │
//!                                                                ▼
//!                                                        SPOD detection
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use cooper_core::{CooperPipeline, ExchangePacket};
//! use cooper_geometry::GpsFix;
//! use cooper_lidar_sim::{scenario, GpsImuModel, LidarScanner};
//! use cooper_spod::train::TrainingConfig;
//! use cooper_spod::SpodDetector;
//!
//! let detector = SpodDetector::train_default(&TrainingConfig::fast());
//! let pipeline = CooperPipeline::new(detector);
//! let scene = scenario::tj_scenario_1();
//! let scanner = LidarScanner::new(scene.kind.beam_model());
//! let origin = GpsFix::new(33.2075, -97.1526, 190.0);
//! let model = GpsImuModel::ideal();
//! let mut rng = rand::thread_rng();
//!
//! // Receiver's own view.
//! let local_scan = scanner.scan(&scene.world, &scene.observers[0], 1);
//! let local_pose = model.measure(&scene.observers[0], &origin, &mut rng);
//!
//! // Transmitter's packet.
//! let remote_scan = scanner.scan(&scene.world, &scene.observers[1], 2);
//! let remote_pose = model.measure(&scene.observers[1], &origin, &mut rng);
//! let packet = ExchangePacket::build(1, 0, &remote_scan, remote_pose)?;
//!
//! let outcome = pipeline.perceive(&local_scan, &local_pose, &[packet], &origin);
//! println!(
//!     "{} objects detected, {} packets dropped",
//!     outcome.detections.len(),
//!     outcome.drops.len()
//! );
//! # Ok::<(), cooper_core::CooperError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alignment;
pub mod channel;
pub mod consistency;
mod error;
pub mod fleet;
pub mod governor;
mod packet;
mod pipeline;
pub mod report;
mod request;
pub mod stats;
pub mod temporal;
pub mod tracking;
pub mod trust;
pub mod viz;

pub use alignment::{
    alignment_transform, guard_alignment, AlignmentGuardConfig, GuardDecision, GuardReport,
};
pub use channel::{ChannelModel, Delivery, PerfectChannel, TransferCtx};
pub use consistency::{
    check_consistency, ConsistencyConfig, ConsistencyVerdict, FreeSpaceIndex, SenderHistory,
};
pub use error::CooperError;
pub use governor::{
    GovernorConfig, GovernorPolicy, GovernorVerdict, TransferCandidate, TransferOffer,
};
pub use packet::ExchangePacket;
pub use pipeline::{
    AlignmentRecord, CooperPipeline, CooperativeResult, FusionOutcome, PacketDrop, PerceptionCache,
};
pub use request::{requests_from_blind_zones, respond_to_roi_request, RoiRequest};
pub use stats::{CooperDifficulty, DistanceBand, ScoreImprovement};
pub use trust::{TrustConfig, TrustLedger, TrustLevel, TrustState, TrustVehicleStats};

pub use cooper_spod::Detection;
