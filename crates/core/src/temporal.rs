//! Temporal aggregation: fusing a vehicle's *own* recent frames.
//!
//! The paper's Figure 2 is produced exactly this way: "At beginning time
//! t1, one single shot frame … is collected. As the testing vehicle is
//! moving forward after two seconds, another single shot frame … is
//! collected at time t2. By merging t1 and t2's point clouds, we emulate
//! the cooperative sensing process between two vehicles" (§IV-B). The
//! same machinery gives a single vehicle ego-motion-compensated temporal
//! densification for free: past frames are aligned into the current
//! sensor frame with the identical Equations 1–3 used for V2V fusion.

use std::collections::VecDeque;

use cooper_geometry::{Pose, RigidTransform};
use cooper_pointcloud::PointCloud;

/// A sliding window of a vehicle's recent scans, each with the pose it
/// was taken from, fused on demand into any later frame.
///
/// # Examples
///
/// ```
/// use cooper_core::temporal::TemporalAggregator;
/// use cooper_geometry::{Attitude, Pose, Vec3};
/// use cooper_pointcloud::{Point, PointCloud};
///
/// let mut agg = TemporalAggregator::new(3);
/// let pose1 = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
/// let mut scan1 = PointCloud::new();
/// scan1.push(Point::new(Vec3::new(10.0, 0.0, -1.0), 0.5));
/// agg.push(pose1, scan1);
///
/// // The vehicle moved 5 m forward; the old point appears 5 m closer.
/// let pose2 = Pose::new(Vec3::new(5.0, 0.0, 1.8), Attitude::level());
/// let fused = agg.fused_in(&pose2, &PointCloud::new());
/// assert!((fused.as_slice()[0].position.x - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct TemporalAggregator {
    capacity: usize,
    frames: VecDeque<(Pose, PointCloud)>,
}

impl TemporalAggregator {
    /// Creates an aggregator retaining up to `capacity` past frames.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TemporalAggregator {
            capacity,
            frames: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no frames are retained.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Records a frame taken from `pose`, evicting the oldest when the
    /// window is full.
    pub fn push(&mut self, pose: Pose, scan: PointCloud) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back((pose, scan));
    }

    /// Clears the window (e.g. after a localization reset, when old
    /// poses can no longer be trusted).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Aligns every retained frame into `current_pose`'s sensor frame
    /// (Equations 1–3, with the vehicle's own past poses as the
    /// "transmitters") and merges them with `current_scan`.
    ///
    /// The output is allocated once at its exact final size and each
    /// past frame is transformed directly into it
    /// ([`PointCloud::merge_transformed`]) — no per-frame intermediate
    /// clone.
    pub fn fused_in(&self, current_pose: &Pose, current_scan: &PointCloud) -> PointCloud {
        let total = current_scan.len() + self.frames.iter().map(|(_, s)| s.len()).sum::<usize>();
        let mut fused = PointCloud::with_capacity(total);
        fused.merge(current_scan);
        for (past_pose, past_scan) in &self.frames {
            let align = RigidTransform::between(past_pose, current_pose);
            fused.merge_transformed(past_scan, &align);
        }
        fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Vec3};
    use cooper_lidar_sim::{scenario, LidarScanner};
    use cooper_pointcloud::Point;

    fn single_point_cloud(x: f64) -> PointCloud {
        let mut c = PointCloud::new();
        c.push(Point::new(Vec3::new(x, 0.0, -1.0), 0.5));
        c
    }

    #[test]
    fn window_evicts_oldest() {
        let mut agg = TemporalAggregator::new(2);
        for i in 0..4 {
            agg.push(Pose::origin(), single_point_cloud(i as f64));
        }
        assert_eq!(agg.len(), 2);
        let fused = agg.fused_in(&Pose::origin(), &PointCloud::new());
        let xs: Vec<f64> = fused.iter().map(|p| p.position.x).collect();
        assert_eq!(xs, vec![2.0, 3.0]);
    }

    #[test]
    fn ego_motion_compensation() {
        let mut agg = TemporalAggregator::new(4);
        // A static world point at x = 20, seen from x = 0.
        let pose_t1 = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        agg.push(pose_t1, single_point_cloud(20.0));
        // Two seconds later the vehicle is at x = 10; the same world
        // point must appear at local x = 10.
        let pose_t2 = Pose::new(Vec3::new(10.0, 0.0, 1.8), Attitude::level());
        let fused = agg.fused_in(&pose_t2, &single_point_cloud(10.0));
        assert_eq!(fused.len(), 2);
        for p in fused.iter() {
            assert!(
                (p.position.x - 10.0).abs() < 1e-9,
                "point at {}",
                p.position
            );
        }
    }

    #[test]
    fn rotation_compensated_too() {
        let mut agg = TemporalAggregator::new(1);
        let pose_t1 = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        agg.push(pose_t1, single_point_cloud(10.0));
        // The vehicle turned 90° left in place: the point ahead at t1 is
        // now to the right (local -y).
        let pose_t2 = Pose::new(
            Vec3::new(0.0, 0.0, 1.8),
            Attitude::from_yaw(std::f64::consts::FRAC_PI_2),
        );
        let fused = agg.fused_in(&pose_t2, &PointCloud::new());
        let p = fused.as_slice()[0].position;
        assert!((p.y + 10.0).abs() < 1e-9, "point at {p}");
        assert!(p.x.abs() < 1e-9);
    }

    #[test]
    fn figure_two_emulation_increases_coverage() {
        // The paper's Figure-2 procedure: one vehicle, two shots 14.7 m
        // apart, merged — temporal fusion covers strictly more surface
        // than either shot.
        let scene = scenario::t_junction();
        let scanner =
            LidarScanner::new(scene.kind.beam_model().noiseless().with_azimuth_steps(600));
        let pose_t1 = scene.observers[0];
        let pose_t2 = scene.observers[1];
        let scan_t1 = scanner.scan(&scene.world, &pose_t1, 1);
        let scan_t2 = scanner.scan(&scene.world, &pose_t2, 2);

        let mut agg = TemporalAggregator::new(4);
        agg.push(pose_t1, scan_t1.clone());
        let fused = agg.fused_in(&pose_t2, &scan_t2);
        assert_eq!(fused.len(), scan_t1.len() + scan_t2.len());

        // Count cars with points in the fused frame vs the single shot.
        let covered = |cloud: &PointCloud, pose: &Pose| {
            scene
                .ground_truth_cars()
                .iter()
                .filter(|car| {
                    cloud
                        .iter()
                        .any(|p| car.contains(pose.local_to_world(p.position)))
                })
                .count()
        };
        let single_coverage = covered(&scan_t2, &pose_t2);
        let fused_coverage = covered(&fused, &pose_t2);
        assert!(
            fused_coverage > single_coverage,
            "fused {fused_coverage} vs single {single_coverage}"
        );
    }

    #[test]
    fn fused_in_matches_per_frame_clone_path() {
        // The single-allocation merge_transformed path must be
        // bit-identical to the original transformed()-then-merge
        // implementation it replaced.
        let scene = scenario::t_junction();
        let scanner = LidarScanner::new(scene.kind.beam_model().with_azimuth_steps(300));
        let mut agg = TemporalAggregator::new(3);
        for (i, pose) in scene.observers.iter().enumerate() {
            agg.push(*pose, scanner.scan(&scene.world, pose, i as u64 + 1));
        }
        let current_pose = scene.observers[0];
        let current_scan = scanner.scan(&scene.world, &current_pose, 99);

        let fused = agg.fused_in(&current_pose, &current_scan);
        // Reference: the old implementation, per-frame clones.
        let mut expected = current_scan.clone();
        for (past_pose, past_scan) in &agg.frames {
            let align = RigidTransform::between(past_pose, &current_pose);
            expected.merge(&past_scan.transformed(&align));
        }
        assert_eq!(fused, expected);
    }

    #[test]
    fn clear_resets_window() {
        let mut agg = TemporalAggregator::new(2);
        agg.push(Pose::origin(), single_point_cloud(1.0));
        assert!(!agg.is_empty());
        agg.clear();
        assert!(agg.is_empty());
        assert_eq!(agg.fused_in(&Pose::origin(), &PointCloud::new()).len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TemporalAggregator::new(0);
    }
}
