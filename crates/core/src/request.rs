//! Demand-driven ROI requests.
//!
//! The paper's exchange strategy is demand-driven: "For object detection
//! purpose, ROI data will be extracted whenever failure detection
//! happened on this area" (§IV-G), and "when utilized with cooperative
//! perception, we are still able to locate the plates in point clouds
//! and ask for its [sensor] data from connected vehicles" (§II-C).
//!
//! A vehicle that finds a blocked region in its own scan (via
//! [`cooper_pointcloud::roi::blind_sectors`]) broadcasts a [`RoiRequest`]
//! naming the wedge it cannot see; a cooperator answers with only the
//! points that fall inside that wedge *as seen from the requester* —
//! typically a small fraction of a full frame.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cooper_geometry::{normalize_angle, GpsFix};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::roi::BlindSector;
use cooper_pointcloud::PointCloud;

use crate::{alignment_transform, CooperError};

const MAGIC: &[u8; 4] = b"CORQ";
const VERSION: u8 = 1;
/// magic (4) + version (1) + requester id (4) + gps (24) + attitude (24)
/// + center/width/max range (24).
const WIRE_BYTES: usize = 4 + 1 + 4 + 24 + 24 + 24;

/// A request for the point-cloud contents of one wedge of space around
/// the requesting vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoiRequest {
    /// The requesting vehicle.
    pub requester_id: u32,
    /// The requester's measured pose (so responders can evaluate the
    /// wedge in the requester's frame).
    pub requester_pose: PoseEstimate,
    /// Wedge center azimuth in the requester's sensor frame, radians.
    pub center_azimuth: f64,
    /// Wedge angular width, radians.
    pub width: f64,
    /// Maximum range of interest from the requester, metres.
    pub max_range: f64,
}

impl RoiRequest {
    /// Builds a request covering one blocked sector of the requester's
    /// view.
    pub fn for_blind_sector(
        requester_id: u32,
        requester_pose: PoseEstimate,
        sector: &BlindSector,
        max_range: f64,
    ) -> Self {
        RoiRequest {
            requester_id,
            requester_pose,
            // Pad the wedge slightly so objects straddling the edge are
            // fully covered.
            center_azimuth: sector.center(),
            width: sector.width() + 5f64.to_radians(),
            max_range,
        }
    }

    /// Serializes the request.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(WIRE_BYTES);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.requester_id);
        buf.put_f64(self.requester_pose.gps.latitude);
        buf.put_f64(self.requester_pose.gps.longitude);
        buf.put_f64(self.requester_pose.gps.altitude);
        buf.put_f64(self.requester_pose.attitude.yaw);
        buf.put_f64(self.requester_pose.attitude.pitch);
        buf.put_f64(self.requester_pose.attitude.roll);
        buf.put_f64(self.center_azimuth);
        buf.put_f64(self.width);
        buf.put_f64(self.max_range);
        buf.freeze()
    }

    /// Deserializes a request.
    ///
    /// # Errors
    ///
    /// Returns [`CooperError::Truncated`], [`CooperError::BadMagic`],
    /// [`CooperError::UnsupportedVersion`] or [`CooperError::InvalidPose`]
    /// for malformed input.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, CooperError> {
        if bytes.len() < WIRE_BYTES {
            return Err(CooperError::Truncated {
                expected: WIRE_BYTES,
                actual: bytes.len(),
            });
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CooperError::BadMagic);
        }
        let version = bytes.get_u8();
        if version != VERSION {
            return Err(CooperError::UnsupportedVersion(version));
        }
        let requester_id = bytes.get_u32();
        let latitude = bytes.get_f64();
        let longitude = bytes.get_f64();
        let altitude = bytes.get_f64();
        let yaw = bytes.get_f64();
        let pitch = bytes.get_f64();
        let roll = bytes.get_f64();
        let center_azimuth = bytes.get_f64();
        let width = bytes.get_f64();
        let max_range = bytes.get_f64();
        let fields = [
            latitude,
            longitude,
            altitude,
            yaw,
            pitch,
            roll,
            center_azimuth,
            width,
            max_range,
        ];
        if fields.iter().any(|f| !f.is_finite()) {
            return Err(CooperError::InvalidPose);
        }
        Ok(RoiRequest {
            requester_id,
            requester_pose: PoseEstimate {
                gps: GpsFix::new(
                    latitude.clamp(-90.0, 90.0),
                    longitude.clamp(-180.0, 180.0),
                    altitude,
                ),
                attitude: cooper_geometry::Attitude::new(yaw, pitch, roll),
            },
            center_azimuth,
            width,
            max_range,
        })
    }
}

/// Builds one request per blocked sector of `scan` (see
/// [`cooper_pointcloud::roi::blind_sectors`]): sectors whose nearest
/// above-ground return is closer than `occluder_range` and at least
/// `min_width` radians wide, asking for content out to `max_range`.
pub fn requests_from_blind_zones(
    requester_id: u32,
    scan: &PointCloud,
    requester_pose: PoseEstimate,
    occluder_range: f64,
    min_width: f64,
    max_range: f64,
    mount_height: f64,
) -> Vec<RoiRequest> {
    cooper_pointcloud::roi::blind_sectors(scan, 360, occluder_range, min_width, -mount_height + 0.3)
        .iter()
        .map(|sector| RoiRequest::for_blind_sector(requester_id, requester_pose, sector, max_range))
        .collect()
}

/// Answers a request: the subset of `own_scan` (responder's sensor
/// frame) that falls inside the requested wedge when viewed from the
/// requester. The returned cloud stays in the responder's frame, ready
/// to be wrapped in an ordinary [`crate::ExchangePacket`].
pub fn respond_to_roi_request(
    own_scan: &PointCloud,
    own_pose: &PoseEstimate,
    request: &RoiRequest,
    origin: &GpsFix,
) -> PointCloud {
    let to_requester = alignment_transform(own_pose, &request.requester_pose, origin);
    let half_width = request.width * 0.5;
    own_scan.filtered(|p| {
        let in_requester = to_requester.apply(p.position);
        let range = in_requester.range_xy();
        if range > request.max_range {
            return false;
        }
        let azimuth = in_requester.azimuth();
        normalize_angle(azimuth - request.center_azimuth).abs() <= half_width
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose, Vec3};
    use cooper_pointcloud::Point;

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    fn estimate(x: f64, y: f64, yaw: f64) -> PoseEstimate {
        PoseEstimate::from_pose(
            &Pose::new(Vec3::new(x, y, 1.8), Attitude::from_yaw(yaw)),
            &origin(),
        )
    }

    #[test]
    fn request_wire_round_trip() {
        let req = RoiRequest {
            requester_id: 9,
            requester_pose: estimate(3.0, -2.0, 0.4),
            center_azimuth: 0.7,
            width: 0.3,
            max_range: 40.0,
        };
        let parsed = RoiRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(parsed.requester_id, 9);
        assert!((parsed.center_azimuth - 0.7).abs() < 1e-12);
        assert!((parsed.width - 0.3).abs() < 1e-12);
        assert!((parsed.max_range - 40.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_requests_rejected() {
        let req = RoiRequest {
            requester_id: 1,
            requester_pose: estimate(0.0, 0.0, 0.0),
            center_azimuth: 0.0,
            width: 0.5,
            max_range: 30.0,
        };
        let bytes = req.to_bytes();
        assert!(matches!(
            RoiRequest::from_bytes(&bytes[..10]),
            Err(CooperError::Truncated { .. })
        ));
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(
            RoiRequest::from_bytes(&bad).unwrap_err(),
            CooperError::BadMagic
        );
        let mut nan = bytes.to_vec();
        let len = nan.len();
        nan[len - 8..].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(
            RoiRequest::from_bytes(&nan).unwrap_err(),
            CooperError::InvalidPose
        );
    }

    #[test]
    fn response_keeps_only_wedge_content() {
        // Responder sits 20 m east of the requester; both face east.
        let requester = estimate(0.0, 0.0, 0.0);
        let responder = estimate(20.0, 0.0, 0.0);
        // Responder's scan: one point ahead of it (east, at x=30 world,
        // azimuth 0 from requester), one behind it (x=10 world, also
        // azimuth ~0 from requester), one far north (azimuth ~π/2 from
        // requester).
        let mut scan = PointCloud::new();
        scan.push(Point::new(Vec3::new(10.0, 0.0, -1.0), 0.5)); // world x=30
        scan.push(Point::new(Vec3::new(-10.0, 0.0, -1.0), 0.5)); // world x=10
        scan.push(Point::new(Vec3::new(0.0, 30.0, -1.0), 0.5)); // world (20, 30)
        let request = RoiRequest {
            requester_id: 0,
            requester_pose: requester,
            center_azimuth: 0.0,
            width: 20f64.to_radians(),
            max_range: 50.0,
        };
        let response = respond_to_roi_request(&scan, &responder, &request, &origin());
        assert_eq!(response.len(), 2, "east-wedge points only");
        // The northern point (azimuth ~56° from requester) is excluded.
        assert!(response.iter().all(|p| p.position.y.abs() < 1.0));
    }

    #[test]
    fn response_respects_max_range() {
        let requester = estimate(0.0, 0.0, 0.0);
        let responder = estimate(0.0, 0.0, 0.0);
        let mut scan = PointCloud::new();
        scan.push(Point::new(Vec3::new(10.0, 0.0, -1.0), 0.5));
        scan.push(Point::new(Vec3::new(60.0, 0.0, -1.0), 0.5));
        let request = RoiRequest {
            requester_id: 0,
            requester_pose: requester,
            center_azimuth: 0.0,
            width: 1.0,
            max_range: 30.0,
        };
        let response = respond_to_roi_request(&scan, &responder, &request, &origin());
        assert_eq!(response.len(), 1);
    }

    #[test]
    fn blind_zone_requests_cover_occluded_wedges() {
        // A wall of close returns ahead (5 m) and open space elsewhere:
        // one request covering the forward wedge.
        let mut scan = PointCloud::new();
        for i in -40..=40 {
            let az = (i as f64) * 0.5f64.to_radians();
            scan.push(Point::new(
                Vec3::new(5.0 * az.cos(), 5.0 * az.sin(), 0.0),
                0.5,
            ));
            // Far background everywhere else.
            let far_az = az + std::f64::consts::PI;
            scan.push(Point::new(
                Vec3::new(60.0 * far_az.cos(), 60.0 * far_az.sin(), 0.0),
                0.5,
            ));
        }
        let requests = requests_from_blind_zones(
            1,
            &scan,
            estimate(0.0, 0.0, 0.0),
            15.0,
            10f64.to_radians(),
            50.0,
            1.8,
        );
        assert_eq!(requests.len(), 1, "expected one forward blind wedge");
        let req = &requests[0];
        assert!(
            req.center_azimuth.abs() < 0.1,
            "center {}",
            req.center_azimuth
        );
        assert!(req.width > 35f64.to_radians());
    }
}
