//! Alignment of received clouds into the receiver's frame — the paper's
//! Equations 1–3 assembled end-to-end.

use cooper_geometry::{GpsFix, RigidTransform};
use cooper_lidar_sim::PoseEstimate;

/// Builds the rigid transform that maps points from the transmitter's
/// sensor frame into the receiver's sensor frame.
///
/// This is the paper's data-reconstruction step: the rotation comes from
/// "the IMU value difference between the transmitter and the receiver"
/// (Equation 1 applied to both attitudes) and the translation `Δd` from
/// the difference of the two GPS readings (Equation 3), both evaluated
/// in the local east-north-up frame anchored at `origin`.
///
/// # Examples
///
/// ```
/// use cooper_core::alignment_transform;
/// use cooper_geometry::{Attitude, GpsFix, Vec3};
/// use cooper_lidar_sim::PoseEstimate;
///
/// let origin = GpsFix::new(33.2075, -97.1526, 190.0);
/// let tx = PoseEstimate { gps: origin.offset_by(Vec3::new(10.0, 0.0, 0.0)), attitude: Attitude::level() };
/// let rx = PoseEstimate { gps: origin, attitude: Attitude::level() };
/// let t = alignment_transform(&tx, &rx, &origin);
/// // The transmitter's origin lands 10 m east of the receiver.
/// assert!((t.apply(Vec3::ZERO) - Vec3::new(10.0, 0.0, 0.0)).norm() < 1e-4);
/// ```
pub fn alignment_transform(
    transmitter: &PoseEstimate,
    receiver: &PoseEstimate,
    origin: &GpsFix,
) -> RigidTransform {
    let tx_pose = transmitter.to_pose(origin);
    let rx_pose = receiver.to_pose(origin);
    RigidTransform::between(&tx_pose, &rx_pose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose, Vec3};

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    fn estimate(pose: &Pose) -> PoseEstimate {
        PoseEstimate::from_pose(pose, &origin())
    }

    #[test]
    fn identity_for_identical_poses() {
        let pose = Pose::new(Vec3::new(5.0, -3.0, 1.8), Attitude::from_yaw(0.7));
        let t = alignment_transform(&estimate(&pose), &estimate(&pose), &origin());
        let p = Vec3::new(12.0, 4.0, 0.5);
        assert!((t.apply(p) - p).norm() < 1e-4);
    }

    #[test]
    fn matches_direct_pose_transform() {
        let tx = Pose::new(Vec3::new(20.0, 10.0, 1.9), Attitude::new(0.8, 0.01, -0.02));
        let rx = Pose::new(Vec3::new(-5.0, 3.0, 1.73), Attitude::new(-0.4, 0.0, 0.03));
        let via_gps = alignment_transform(&estimate(&tx), &estimate(&rx), &origin());
        let direct = RigidTransform::between(&tx, &rx);
        let p = Vec3::new(7.0, -2.0, 0.4);
        assert!(
            (via_gps.apply(p) - direct.apply(p)).norm() < 1e-3,
            "GPS path {} vs direct {}",
            via_gps.apply(p),
            direct.apply(p)
        );
    }

    #[test]
    fn pure_rotation_case() {
        let tx = Pose::new(Vec3::ZERO, Attitude::from_yaw(std::f64::consts::FRAC_PI_2));
        let rx = Pose::new(Vec3::ZERO, Attitude::level());
        let t = alignment_transform(&estimate(&tx), &estimate(&rx), &origin());
        // A point ahead of the rotated transmitter appears to the
        // receiver's left.
        let p = t.apply(Vec3::new(5.0, 0.0, 0.0));
        assert!((p - Vec3::new(0.0, 5.0, 0.0)).norm() < 1e-4, "{p}");
    }
}
