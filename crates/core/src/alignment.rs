//! Alignment of received clouds into the receiver's frame — the paper's
//! Equations 1–3 assembled end-to-end — plus the alignment guard that
//! validates (and, when possible, repairs) a GPS/IMU-derived transform
//! before fusion.

use std::collections::{BTreeMap, BTreeSet};

use cooper_geometry::{GpsFix, Mat3, RigidTransform, Vec3};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::PointCloud;

/// Builds the rigid transform that maps points from the transmitter's
/// sensor frame into the receiver's sensor frame.
///
/// This is the paper's data-reconstruction step: the rotation comes from
/// "the IMU value difference between the transmitter and the receiver"
/// (Equation 1 applied to both attitudes) and the translation `Δd` from
/// the difference of the two GPS readings (Equation 3), both evaluated
/// in the local east-north-up frame anchored at `origin`.
///
/// # Examples
///
/// ```
/// use cooper_core::alignment_transform;
/// use cooper_geometry::{Attitude, GpsFix, Vec3};
/// use cooper_lidar_sim::PoseEstimate;
///
/// let origin = GpsFix::new(33.2075, -97.1526, 190.0);
/// let tx = PoseEstimate { gps: origin.offset_by(Vec3::new(10.0, 0.0, 0.0)), attitude: Attitude::level() };
/// let rx = PoseEstimate { gps: origin, attitude: Attitude::level() };
/// let t = alignment_transform(&tx, &rx, &origin);
/// // The transmitter's origin lands 10 m east of the receiver.
/// assert!((t.apply(Vec3::ZERO) - Vec3::new(10.0, 0.0, 0.0)).norm() < 1e-4);
/// ```
pub fn alignment_transform(
    transmitter: &PoseEstimate,
    receiver: &PoseEstimate,
    origin: &GpsFix,
) -> RigidTransform {
    let tx_pose = transmitter.to_pose(origin);
    let rx_pose = receiver.to_pose(origin);
    RigidTransform::between(&tx_pose, &rx_pose)
}

/// Tuning knobs of the alignment guard.
///
/// The defaults are calibrated on the synthetic scenario library: clean
/// GPS/IMU alignments (≤ 10 cm positional error, the paper's cited
/// envelope) score well under `clean_residual_m`, while drifts past the
/// Figure-10 bound are either pulled back by ICP or rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentGuardConfig {
    /// Voxel edge used for the occupancy-agreement score, metres.
    pub voxel_size_m: f64,
    /// Upper bound on points sampled from each cloud; keeps the guard's
    /// cost independent of scan density.
    pub max_sample_points: usize,
    /// Maximum ICP refinement iterations (`--icp-iters`).
    pub max_icp_iters: usize,
    /// Correspondence search radius, metres. Also bounds how much error
    /// ICP can recover: offsets beyond it have no inliers to pull on.
    pub max_correspondence_m: f64,
    /// Post-refinement residual gate, metres: refined alignments worse
    /// than this are rejected and the receiver falls back to ego-only.
    pub accept_residual_m: f64,
    /// Residual under which the GPS/IMU transform is accepted as-is,
    /// skipping ICP entirely — the fast path for healthy fleets.
    pub clean_residual_m: f64,
    /// Minimum matched (non-ground) correspondences for the overlap to
    /// be considered verifiable at all.
    pub min_overlap_points: usize,
    /// A refined transform must retain at least this fraction of the
    /// pre-refinement occupancy agreement. A genuine correction raises
    /// agreement; an aliased fit that snapped remote structure onto the
    /// wrong local structure lowers it even when the point residual
    /// looks plausible.
    pub min_occupancy_recovery: f64,
    /// Largest translation correction ICP is allowed to apply, metres.
    /// GPS drift worth repairing is metre-scale; a fit that wants to
    /// teleport the cloud further than this has almost certainly
    /// aliased onto the wrong structure (repetitive scenes score a
    /// plausible residual there), so the guard rejects instead.
    pub max_correction_m: f64,
    /// Sensor-frame height below which a point counts as ground, metres.
    /// Ground points are excluded from ICP correspondences (on flat
    /// terrain ground matches ground anywhere, constraining nothing in
    /// the plane) but drive the ground-plane z residual.
    pub ground_z_m: f64,
}

impl Default for AlignmentGuardConfig {
    fn default() -> Self {
        AlignmentGuardConfig {
            voxel_size_m: 0.8,
            max_sample_points: 600,
            max_icp_iters: 10,
            max_correspondence_m: 3.0,
            accept_residual_m: 0.45,
            clean_residual_m: 0.20,
            min_overlap_points: 25,
            min_occupancy_recovery: 1.0,
            max_correction_m: 2.5,
            ground_z_m: -1.2,
        }
    }
}

impl AlignmentGuardConfig {
    /// Overrides the ICP iteration bound (the CLI's `--icp-iters`).
    pub fn with_max_icp_iters(mut self, iters: usize) -> Self {
        self.max_icp_iters = iters;
        self
    }
}

/// What the guard decided about one received cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardDecision {
    /// The GPS/IMU transform already scored under the clean threshold;
    /// fused as-is without refinement.
    AcceptedClean,
    /// ICP pulled the alignment under the acceptance gate; fused with
    /// the refined transform.
    AcceptedRefined,
    /// Refinement could not bring the residual under the gate; the
    /// cloud is excluded and the receiver degrades to ego-only.
    Rejected,
    /// The claimed transform leaves too little sender/receiver overlap
    /// to verify anything — fail safe, exclude the cloud.
    InsufficientOverlap,
}

impl GuardDecision {
    /// `true` when the cloud should be fused.
    pub fn is_accepted(self) -> bool {
        matches!(
            self,
            GuardDecision::AcceptedClean | GuardDecision::AcceptedRefined
        )
    }

    /// Stable snake_case label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            GuardDecision::AcceptedClean => "accepted_clean",
            GuardDecision::AcceptedRefined => "accepted_refined",
            GuardDecision::Rejected => "rejected",
            GuardDecision::InsufficientOverlap => "insufficient_overlap",
        }
    }
}

impl std::fmt::Display for GuardDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the guard measured about one received cloud.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardReport {
    /// The verdict.
    pub decision: GuardDecision,
    /// Mean matched-correspondence residual under the GPS/IMU
    /// transform, metres. Infinite when nothing matched.
    pub residual_before_m: f64,
    /// Residual under the transform actually used (refined when ICP
    /// ran, otherwise the input), metres. Infinite when nothing
    /// matched.
    pub residual_after_m: f64,
    /// Fraction of the remote cloud's occupied voxels (inside the
    /// receiver's bounds) that land on voxels the receiver also
    /// occupies — the overlap-region agreement score.
    pub occupancy_agreement: f64,
    /// Absolute ground-plane height disagreement in the overlap
    /// region, metres. Zero when either side has no ground points.
    pub ground_dz_m: f64,
    /// The transform to fuse with — refined iff `decision` is
    /// [`GuardDecision::AcceptedRefined`], otherwise the input.
    pub transform: RigidTransform,
}

/// Samples at most `max` positions from a cloud, uniformly by index.
fn sample_positions(cloud: &PointCloud, max: usize) -> Vec<Vec3> {
    if cloud.is_empty() || max == 0 {
        return Vec::new();
    }
    let step = cloud.len().div_ceil(max);
    cloud.iter().step_by(step).map(|p| p.position).collect()
}

/// A deterministic planar cell-hash grid over the receiver's non-ground
/// points. Matching happens in the xy (bird's-eye) plane: the pose
/// faults the guard detects — GPS drift, yaw bias — are planar, and a
/// 3D metric would be dominated by the beam-ring sampling mismatch
/// between two vantage points rather than by alignment error.
/// Nearest-neighbour queries scan the surrounding cells in a fixed
/// order, so results never depend on construction or thread order.
struct CellGrid {
    cell: f64,
    cells: BTreeMap<(i64, i64), Vec<Vec3>>,
}

impl CellGrid {
    fn build(points: &[Vec3], cell: f64) -> CellGrid {
        let mut cells: BTreeMap<(i64, i64), Vec<Vec3>> = BTreeMap::new();
        for &p in points {
            cells.entry(Self::key_xy(p, cell)).or_default().push(p);
        }
        CellGrid { cell, cells }
    }

    fn key_xy(p: Vec3, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    fn key_xyz(p: Vec3, cell: f64) -> (i64, i64, i64) {
        (
            (p.x / cell).floor() as i64,
            (p.y / cell).floor() as i64,
            (p.z / cell).floor() as i64,
        )
    }

    /// The planar distance between two points.
    fn dist_xy(a: Vec3, b: Vec3) -> f64 {
        let (dx, dy) = (a.x - b.x, a.y - b.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The stored point nearest to `p` in the xy plane within `radius`.
    fn nearest(&self, p: Vec3, radius: f64) -> Option<(Vec3, f64)> {
        let (cx, cy) = Self::key_xy(p, self.cell);
        let reach = (radius / self.cell).ceil() as i64;
        let mut best: Option<(Vec3, f64)> = None;
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &q in bucket {
                    let d = Self::dist_xy(q, p);
                    if d <= radius && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((q, d));
                    }
                }
            }
        }
        best
    }
}

/// Median matched-correspondence residual of `remote` (already in the
/// receiver frame) against the receiver grid: the guard's core metric.
/// The median, not the mean — remote points on surfaces the receiver
/// cannot see match whatever structure happens to sit within the
/// search radius, and those junk pairs would otherwise swamp the
/// alignment signal.
fn matched_residual(grid: &CellGrid, remote: &[Vec3], radius: f64) -> (f64, usize) {
    let mut dists: Vec<f64> = remote
        .iter()
        .filter_map(|&p| grid.nearest(p, radius).map(|(_, d)| d))
        .collect();
    if dists.is_empty() {
        return (f64::INFINITY, 0);
    }
    dists.sort_by(f64::total_cmp);
    (dists[dists.len() / 2], dists.len())
}

/// One planar-Procrustes ICP update: the rigid (yaw + translation)
/// motion that best maps the matched remote points onto their nearest
/// receiver points. Planar because the faults being corrected — GPS
/// drift and yaw bias — live in the ground plane; the z offset still
/// rides along through the centroid difference.
fn procrustes_step(pairs: &[(Vec3, Vec3)]) -> RigidTransform {
    let n = pairs.len() as f64;
    let a_bar = pairs.iter().map(|&(a, _)| a).fold(Vec3::ZERO, |s, v| s + v) / n;
    let b_bar = pairs.iter().map(|&(_, b)| b).fold(Vec3::ZERO, |s, v| s + v) / n;
    let mut sin_sum = 0.0;
    let mut cos_sum = 0.0;
    for &(a, b) in pairs {
        let (ax, ay) = (a.x - a_bar.x, a.y - a_bar.y);
        let (bx, by) = (b.x - b_bar.x, b.y - b_bar.y);
        sin_sum += ax * by - ay * bx;
        cos_sum += ax * bx + ay * by;
    }
    let theta = sin_sum.atan2(cos_sum);
    let rotation = Mat3::rotation_z(theta);
    let mut translation = b_bar - rotation * a_bar;
    // Matching is planar; the z component of the centroid difference is
    // beam-ring sampling noise, not signal. Keep the correction planar.
    translation.z = 0.0;
    RigidTransform::new(rotation, translation)
}

/// Validates — and when recoverable, repairs — the claimed transform of
/// a received cloud before fusion.
///
/// The guard scores the sender/receiver overlap region: it samples both
/// clouds, matches transformed remote points to their nearest receiver
/// points, and measures the mean matched residual plus
/// voxel-occupancy agreement and the ground-plane height gap. Clean
/// transforms (residual ≤ [`AlignmentGuardConfig::clean_residual_m`])
/// pass untouched; anything worse gets up to
/// [`AlignmentGuardConfig::max_icp_iters`] rounds of planar
/// point-to-point ICP with an annealing correspondence radius, and is
/// accepted only if the post-refinement residual clears
/// [`AlignmentGuardConfig::accept_residual_m`]. A cloud whose claimed
/// transform leaves no verifiable overlap fails safe:
/// [`GuardDecision::InsufficientOverlap`], excluded from fusion.
///
/// Deterministic by construction — uniform index sampling, `BTreeMap`
/// cell grid, fixed-order neighbour scans — so guarded fleet runs stay
/// bit-identical at any thread count.
pub fn guard_alignment(
    local: &PointCloud,
    remote: &PointCloud,
    base: &RigidTransform,
    cfg: &AlignmentGuardConfig,
) -> GuardReport {
    let fail_safe = |residual: f64| GuardReport {
        decision: GuardDecision::InsufficientOverlap,
        residual_before_m: residual,
        residual_after_m: residual,
        occupancy_agreement: 0.0,
        ground_dz_m: 0.0,
        transform: *base,
    };

    // The receiver's own cloud is the reference: it stays at full
    // density (minus ground) so the nearest-neighbour floor measures
    // alignment error, not sampling sparsity. Only the remote side is
    // downsampled.
    let local_samples: Vec<Vec3> = local.iter().map(|p| p.position).collect();
    let remote_samples: Vec<Vec3> = sample_positions(remote, cfg.max_sample_points)
        .iter()
        .map(|&p| base.apply(p))
        .collect();
    if local_samples.is_empty() || remote_samples.is_empty() {
        return fail_safe(f64::INFINITY);
    }

    let is_ground = |p: &Vec3| p.z < cfg.ground_z_m;
    let local_solid: Vec<Vec3> = local_samples
        .iter()
        .copied()
        .filter(|p| !is_ground(p))
        .collect();
    let remote_solid: Vec<Vec3> = remote_samples
        .iter()
        .copied()
        .filter(|p| !is_ground(p))
        .collect();
    if local_solid.len() < cfg.min_overlap_points || remote_solid.len() < cfg.min_overlap_points {
        return fail_safe(f64::INFINITY);
    }

    let grid = CellGrid::build(&local_solid, cfg.max_correspondence_m);
    let (residual_before, matched_before) =
        matched_residual(&grid, &remote_solid, cfg.max_correspondence_m);

    let occupancy_before = occupancy_agreement(
        &local_samples,
        &remote_samples,
        cfg.voxel_size_m,
        cfg.max_correspondence_m,
    );
    let ground_dz_before = ground_dz(&local_samples, &remote_samples, cfg);

    if matched_before < cfg.min_overlap_points {
        // The claimed geometry puts the clouds apart: nothing to verify
        // against, nothing for ICP to pull on. Fail safe.
        let mut report = fail_safe(residual_before);
        report.occupancy_agreement = occupancy_before;
        report.ground_dz_m = ground_dz_before;
        return report;
    }

    if residual_before <= cfg.clean_residual_m && ground_dz_before <= cfg.accept_residual_m {
        return GuardReport {
            decision: GuardDecision::AcceptedClean,
            residual_before_m: residual_before,
            residual_after_m: residual_before,
            occupancy_agreement: occupancy_before,
            ground_dz_m: ground_dz_before,
            transform: *base,
        };
    }

    // Bounded planar ICP with an annealing correspondence radius: wide
    // first pulls gross offsets in, narrow last stops far outliers from
    // dragging the fit.
    let mut refined = *base;
    let mut moved = remote_solid.clone();
    let mut radius = cfg.max_correspondence_m;
    for _ in 0..cfg.max_icp_iters {
        // Adaptive trim: drop pairs matched much farther than the
        // median — the non-overlap junk that would drag the fit — while
        // keeping the far-but-informative pairs (structure perpendicular
        // to the error direction) that a fixed best-k trim would lose.
        let mut dists: Vec<f64> = Vec::new();
        let all_pairs: Vec<(Vec3, Vec3, f64)> = moved
            .iter()
            .filter_map(|&p| grid.nearest(p, radius).map(|(q, d)| (p, q, d)))
            .collect();
        for &(_, _, d) in &all_pairs {
            dists.push(d);
        }
        dists.sort_by(f64::total_cmp);
        let Some(&median) = dists.get(dists.len() / 2) else {
            break;
        };
        let keep = (2.0 * median).max(0.5 * radius);
        let pairs: Vec<(Vec3, Vec3)> = all_pairs
            .into_iter()
            .filter(|&(_, _, d)| d <= keep)
            .map(|(a, b, _)| (a, b))
            .collect();
        if pairs.len() < cfg.min_overlap_points {
            break;
        }
        let delta = procrustes_step(&pairs);
        refined = delta.compose(&refined);
        for p in &mut moved {
            *p = delta.apply(*p);
        }
        let step_norm = delta.apply(Vec3::ZERO).norm();
        radius = (radius * 0.7).max(cfg.accept_residual_m * 2.0);
        if step_norm < 1e-3 {
            break;
        }
    }

    let (residual_after, matched_after) = matched_residual(&grid, &moved, cfg.max_correspondence_m);
    let remote_refined: Vec<Vec3> = sample_positions(remote, cfg.max_sample_points)
        .iter()
        .map(|&p| refined.apply(p))
        .collect();
    let ground_dz_after = ground_dz(&local_samples, &remote_refined, cfg);
    let occupancy_after = occupancy_agreement(
        &local_samples,
        &remote_refined,
        cfg.voxel_size_m,
        cfg.max_correspondence_m,
    );

    let correction_m = (refined.apply(Vec3::ZERO) - base.apply(Vec3::ZERO)).norm();
    if matched_after >= cfg.min_overlap_points
        && residual_after <= cfg.accept_residual_m
        && ground_dz_after <= cfg.accept_residual_m
        && occupancy_after >= occupancy_before * cfg.min_occupancy_recovery
        && correction_m <= cfg.max_correction_m
    {
        GuardReport {
            decision: GuardDecision::AcceptedRefined,
            residual_before_m: residual_before,
            residual_after_m: residual_after,
            occupancy_agreement: occupancy_after,
            ground_dz_m: ground_dz_after,
            transform: refined,
        }
    } else {
        GuardReport {
            decision: GuardDecision::Rejected,
            residual_before_m: residual_before,
            residual_after_m: residual_after,
            occupancy_agreement: occupancy_after,
            ground_dz_m: ground_dz_after,
            transform: *base,
        }
    }
}

/// Fraction of remote-occupied voxels (restricted to the receiver's
/// bounding box, grown by `margin`) that the receiver also occupies.
fn occupancy_agreement(local: &[Vec3], remote: &[Vec3], voxel: f64, margin: f64) -> f64 {
    let Some(bounds) = cooper_geometry::Aabb3::from_points(local.iter().copied()) else {
        return 0.0;
    };
    let lo = bounds.min() - Vec3::new(margin, margin, margin);
    let hi = bounds.max() + Vec3::new(margin, margin, margin);
    let in_bounds = |p: &Vec3| {
        p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z && p.z <= hi.z
    };
    let voxels = |pts: &[Vec3]| -> BTreeSet<(i64, i64, i64)> {
        pts.iter()
            .filter(|p| in_bounds(p))
            .map(|&p| CellGrid::key_xyz(p, voxel))
            .collect()
    };
    let local_vox = voxels(local);
    let remote_vox = voxels(remote);
    if remote_vox.is_empty() {
        return 0.0;
    }
    let hits = remote_vox.iter().filter(|v| local_vox.contains(v)).count();
    hits as f64 / remote_vox.len() as f64
}

/// Absolute difference of mean ground heights in the shared region, or
/// zero when either side contributes no ground points.
fn ground_dz(local: &[Vec3], remote: &[Vec3], cfg: &AlignmentGuardConfig) -> f64 {
    let mean_ground = |pts: &[Vec3]| {
        let heights: Vec<f64> = pts
            .iter()
            .filter(|p| p.z < cfg.ground_z_m)
            .map(|p| p.z)
            .collect();
        if heights.is_empty() {
            None
        } else {
            Some(heights.iter().sum::<f64>() / heights.len() as f64)
        }
    };
    match (mean_ground(local), mean_ground(remote)) {
        (Some(a), Some(b)) => (a - b).abs(),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose};
    use cooper_lidar_sim::{scenario, LidarScanner};

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    fn estimate(pose: &Pose) -> PoseEstimate {
        PoseEstimate::from_pose(pose, &origin())
    }

    #[test]
    fn identity_for_identical_poses() {
        let pose = Pose::new(Vec3::new(5.0, -3.0, 1.8), Attitude::from_yaw(0.7));
        let t = alignment_transform(&estimate(&pose), &estimate(&pose), &origin());
        let p = Vec3::new(12.0, 4.0, 0.5);
        assert!((t.apply(p) - p).norm() < 1e-4);
    }

    #[test]
    fn matches_direct_pose_transform() {
        let tx = Pose::new(Vec3::new(20.0, 10.0, 1.9), Attitude::new(0.8, 0.01, -0.02));
        let rx = Pose::new(Vec3::new(-5.0, 3.0, 1.73), Attitude::new(-0.4, 0.0, 0.03));
        let via_gps = alignment_transform(&estimate(&tx), &estimate(&rx), &origin());
        let direct = RigidTransform::between(&tx, &rx);
        let p = Vec3::new(7.0, -2.0, 0.4);
        assert!(
            (via_gps.apply(p) - direct.apply(p)).norm() < 1e-3,
            "GPS path {} vs direct {}",
            via_gps.apply(p),
            direct.apply(p)
        );
    }

    #[test]
    fn pure_rotation_case() {
        let tx = Pose::new(Vec3::ZERO, Attitude::from_yaw(std::f64::consts::FRAC_PI_2));
        let rx = Pose::new(Vec3::ZERO, Attitude::level());
        let t = alignment_transform(&estimate(&tx), &estimate(&rx), &origin());
        // A point ahead of the rotated transmitter appears to the
        // receiver's left.
        let p = t.apply(Vec3::new(5.0, 0.0, 0.0));
        assert!((p - Vec3::new(0.0, 5.0, 0.0)).norm() < 1e-4, "{p}");
    }

    /// Two scans of the same scene plus the ground-truth transform and
    /// a skewed variant with `offset` error injected.
    fn guarded_pair(offset: Vec3) -> (PointCloud, PointCloud, RigidTransform, RigidTransform) {
        let scene = scenario::tj_scenario_1();
        let scanner = LidarScanner::new(scene.kind.beam_model().noiseless());
        let rx_pose = scene.observers[0];
        let tx_pose = scene.observers[1];
        let local = scanner.scan(&scene.world, &rx_pose, 1);
        let remote = scanner.scan(&scene.world, &tx_pose, 2);
        let truth = RigidTransform::between(&tx_pose, &rx_pose);
        let mut skewed_est = estimate(&tx_pose);
        skewed_est.gps = skewed_est.gps.offset_by(offset);
        let skewed = alignment_transform(&skewed_est, &estimate(&rx_pose), &origin());
        (local, remote, truth, skewed)
    }

    #[test]
    fn clean_alignment_is_accepted_without_icp() {
        let (local, remote, truth, _) = guarded_pair(Vec3::ZERO);
        let report = guard_alignment(&local, &remote, &truth, &AlignmentGuardConfig::default());
        assert_eq!(report.decision, GuardDecision::AcceptedClean, "{report:?}");
        assert!(report.residual_before_m <= 0.20, "{report:?}");
        assert!(report.occupancy_agreement > 0.1, "{report:?}");
    }

    #[test]
    fn icp_recovers_double_drift_offsets() {
        // 2 m planar error — 2× an extended 1 m drift bound, far past
        // the paper's 0.1 m envelope.
        let d = 2.0 / 2f64.sqrt();
        let (local, remote, truth, skewed) = guarded_pair(Vec3::new(d, d, 0.0));
        let cfg = AlignmentGuardConfig::default();
        let report = guard_alignment(&local, &remote, &skewed, &cfg);
        assert_eq!(
            report.decision,
            GuardDecision::AcceptedRefined,
            "{report:?}"
        );
        assert!(
            report.residual_after_m < report.residual_before_m,
            "{report:?}"
        );
        // The refined transform should land near the ground truth.
        let probe = Vec3::new(5.0, 2.0, 0.0);
        let err = (report.transform.apply(probe) - truth.apply(probe)).norm();
        assert!(err < 0.5, "refined-vs-truth error {err}");
    }

    #[test]
    fn unrecoverable_error_is_rejected_or_unverifiable() {
        // 30 m of error: far beyond the correspondence radius, nothing
        // for ICP to pull on.
        let (local, remote, _, skewed) = guarded_pair(Vec3::new(30.0, -20.0, 0.0));
        let report = guard_alignment(&local, &remote, &skewed, &AlignmentGuardConfig::default());
        assert!(
            !report.decision.is_accepted(),
            "gross error must not be fused: {report:?}"
        );
    }

    #[test]
    fn empty_clouds_fail_safe() {
        let empty = PointCloud::new();
        let report = guard_alignment(
            &empty,
            &empty,
            &RigidTransform::IDENTITY,
            &AlignmentGuardConfig::default(),
        );
        assert_eq!(report.decision, GuardDecision::InsufficientOverlap);
    }

    #[test]
    fn guard_is_deterministic() {
        let d = 1.0;
        let (local, remote, _, skewed) = guarded_pair(Vec3::new(d, -d, 0.0));
        let cfg = AlignmentGuardConfig::default();
        let a = guard_alignment(&local, &remote, &skewed, &cfg);
        let b = guard_alignment(&local, &remote, &skewed, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn decision_labels_are_stable() {
        for d in [
            GuardDecision::AcceptedClean,
            GuardDecision::AcceptedRefined,
            GuardDecision::Rejected,
            GuardDecision::InsufficientOverlap,
        ] {
            assert!(!d.label().is_empty());
            assert_eq!(format!("{d}"), d.label());
        }
        assert!(GuardDecision::AcceptedRefined.is_accepted());
        assert!(!GuardDecision::Rejected.is_accepted());
    }
}
