//! The scenario experiment runner: reproduces the per-car score
//! matrices (Figures 3 and 6) and the count/accuracy summaries
//! (Figures 4 and 7).

use cooper_geometry::{GpsFix, Obb3, RigidTransform};
use cooper_lidar_sim::scenario::Scenario;
use cooper_lidar_sim::{GpsImuModel, LidarScanner};
use cooper_spod::Detection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::stats::{DistanceBand, ScoreImprovement};
use crate::{CooperPipeline, ExchangePacket};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// A detection within this planar distance of a ground-truth car
    /// center counts as detecting that car.
    pub match_distance: f64,
    /// Scan/noise seed.
    pub seed: u64,
    /// GPS/IMU model used to produce the exchanged pose estimates.
    pub sensor_model: GpsImuModel,
    /// Optional azimuth-resolution override for faster scans in benches.
    pub azimuth_steps: Option<usize>,
    /// GPS anchor of the shared local frame.
    pub origin: GpsFix,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            match_distance: 2.5,
            seed: 1,
            sensor_model: GpsImuModel::ideal(),
            azimuth_steps: None,
            origin: GpsFix::new(33.2075, -97.1526, 190.0),
        }
    }
}

/// One row of a Figure-3/Figure-6 score matrix: a ground-truth car and
/// its detection scores in the two single shots and the cooperative
/// cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarRow {
    /// Index of the car in the scenario's ground truth.
    pub gt_index: usize,
    /// Distance band relative to the closer observer (the figure's cell
    /// shading).
    pub band: DistanceBand,
    /// `true` when the car is within detection range of observer A.
    pub in_range_a: bool,
    /// `true` when the car is within detection range of observer B.
    pub in_range_b: bool,
    /// Detection score in observer A's single shot (`None` = missed,
    /// the figure's `X`).
    pub score_a: Option<f32>,
    /// Detection score in observer B's single shot.
    pub score_b: Option<f32>,
    /// Detection score on the fused cooperative cloud.
    pub score_coop: Option<f32>,
}

/// The evaluation of one cooperative pair within a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairEvaluation {
    /// Scenario name.
    pub scenario_name: String,
    /// The observer index pair evaluated.
    pub pair: (usize, usize),
    /// Planar distance between the observers (the figures' `Δd`).
    pub delta_d: f64,
    /// One row per ground-truth car.
    pub rows: Vec<CarRow>,
}

impl PairEvaluation {
    /// Cars detected in observer A's single shot.
    pub fn detected_a(&self) -> usize {
        self.rows.iter().filter(|r| r.score_a.is_some()).count()
    }

    /// Cars detected in observer B's single shot.
    pub fn detected_b(&self) -> usize {
        self.rows.iter().filter(|r| r.score_b.is_some()).count()
    }

    /// Cars detected on the cooperative cloud.
    pub fn detected_coop(&self) -> usize {
        self.rows.iter().filter(|r| r.score_coop.is_some()).count()
    }

    /// Detection accuracy (%) of observer A's single shot: detected cars
    /// over in-range cars (Figures 4 and 7, lower panels).
    pub fn accuracy_a(&self) -> f64 {
        percentage(
            self.detected_a(),
            self.rows.iter().filter(|r| r.in_range_a).count(),
        )
    }

    /// Detection accuracy (%) of observer B's single shot.
    pub fn accuracy_b(&self) -> f64 {
        percentage(
            self.detected_b(),
            self.rows.iter().filter(|r| r.in_range_b).count(),
        )
    }

    /// Detection accuracy (%) of cooperative perception: detected cars
    /// over cars in range of *either* observer (the extended sensing
    /// area).
    pub fn accuracy_coop(&self) -> f64 {
        percentage(
            self.detected_coop(),
            self.rows
                .iter()
                .filter(|r| r.in_range_a || r.in_range_b)
                .count(),
        )
    }

    /// Score improvements for Figure 8, one entry per cooperatively
    /// detected car.
    pub fn improvements(&self) -> Vec<ScoreImprovement> {
        self.rows
            .iter()
            .filter_map(|r| ScoreImprovement::compute(r.score_a, r.score_b, r.score_coop))
            .collect()
    }

    /// Renders the Figure-3/6 style matrix as text: one row per car,
    /// columns `A`, `B`, `A+B`; `X` marks a missed in-range car, blank
    /// an out-of-range one; the band column shows near/medium/far.
    pub fn render_matrix(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} pair {:?} (Δd = {:.1} m)",
            self.scenario_name, self.pair, self.delta_d
        );
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>6} {:>6} {:>6}",
            "car", "band", "A", "B", "A+B"
        );
        for row in &self.rows {
            let cell = |score: Option<f32>, in_range: bool| match score {
                Some(s) => format!("{s:.2}"),
                None if in_range => "X".to_string(),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{:>4} {:>8} {:>6} {:>6} {:>6}",
                row.gt_index,
                row.band.to_string(),
                cell(row.score_a, row.in_range_a),
                cell(row.score_b, row.in_range_b),
                cell(row.score_coop, row.in_range_a || row.in_range_b),
            );
        }
        out
    }
}

fn percentage(hits: usize, total: usize) -> f64 {
    if total == 0 {
        100.0
    } else {
        hits as f64 / total as f64 * 100.0
    }
}

/// Greedy best-score matching of car detections to ground-truth boxes
/// by planar center distance. Returns per-ground-truth best score.
pub fn match_by_center_distance(
    detections: &[Detection],
    ground_truth: &[Obb3],
    max_distance: f64,
) -> Vec<Option<f32>> {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].score.total_cmp(&detections[a].score));
    let mut scores: Vec<Option<f32>> = vec![None; ground_truth.len()];
    for det_idx in order {
        let det = &detections[det_idx];
        let mut best: Option<(f64, usize)> = None;
        for (gt_idx, gt) in ground_truth.iter().enumerate() {
            if scores[gt_idx].is_some() {
                continue;
            }
            let dist = gt.center_distance_bev(&det.obb);
            if dist <= max_distance && best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, gt_idx));
            }
        }
        if let Some((_, gt_idx)) = best {
            scores[gt_idx] = Some(det.score);
        }
    }
    scores
}

/// Runs one cooperative pair of a scenario through the full pipeline:
/// scan both observers, detect each single shot, exchange + align +
/// fuse, detect cooperatively, and match everything against ground
/// truth.
///
/// # Panics
///
/// Panics when `pair_index` is out of range for the scenario.
pub fn evaluate_pair(
    pipeline: &CooperPipeline,
    scenario: &Scenario,
    pair_index: usize,
    config: &EvaluationConfig,
) -> PairEvaluation {
    let pair = scenario.pairs[pair_index];
    let (ia, ib) = pair;
    let pose_a = scenario.observers[ia];
    let pose_b = scenario.observers[ib];

    let mut beams = scenario.kind.beam_model();
    if let Some(steps) = config.azimuth_steps {
        beams = beams.with_azimuth_steps(steps);
    }
    let scanner = LidarScanner::new(beams);
    let scan_seed = config.seed ^ ((pair_index as u64) << 32);
    let scan_a = scanner.scan(&scenario.world, &pose_a, scan_seed);
    let scan_b = scanner.scan(&scenario.world, &pose_b, scan_seed.wrapping_add(1));

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xE57);
    let est_a = config
        .sensor_model
        .measure(&pose_a, &config.origin, &mut rng);
    let est_b = config
        .sensor_model
        .measure(&pose_b, &config.origin, &mut rng);

    let dets_a = pipeline.perceive_single(&scan_a);
    let dets_b = pipeline.perceive_single(&scan_b);

    let packet = ExchangePacket::build(ib as u32, 0, &scan_b, est_b)
        .expect("sensor-frame scan always encodes");
    let coop = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);

    let ground_truth = scenario.ground_truth_cars();
    let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
    let world_to_b = RigidTransform::from_pose(&pose_b).inverse();
    let gt_in_a: Vec<Obb3> = ground_truth
        .iter()
        .map(|g| g.transformed(&world_to_a))
        .collect();
    let gt_in_b: Vec<Obb3> = ground_truth
        .iter()
        .map(|g| g.transformed(&world_to_b))
        .collect();

    let scores_a = match_by_center_distance(&dets_a, &gt_in_a, config.match_distance);
    let scores_b = match_by_center_distance(&dets_b, &gt_in_b, config.match_distance);
    let scores_coop = match_by_center_distance(&coop.detections, &gt_in_a, config.match_distance);

    let detection_radius = detection_range(pipeline);
    let rows = ground_truth
        .iter()
        .enumerate()
        .map(|(gt_index, gt)| {
            let dist_a = gt.center.distance_xy(pose_a.position);
            let dist_b = gt.center.distance_xy(pose_b.position);
            CarRow {
                gt_index,
                band: DistanceBand::of(dist_a.min(dist_b)),
                in_range_a: dist_a <= detection_radius,
                in_range_b: dist_b <= detection_radius,
                score_a: scores_a[gt_index],
                score_b: scores_b[gt_index],
                score_coop: scores_coop[gt_index],
            }
        })
        .collect();

    PairEvaluation {
        scenario_name: scenario.name.clone(),
        pair,
        delta_d: scenario.delta_d(pair),
        rows,
    }
}

/// Evaluates every cooperative pair of a scenario.
pub fn evaluate_scenario(
    pipeline: &CooperPipeline,
    scenario: &Scenario,
    config: &EvaluationConfig,
) -> Vec<PairEvaluation> {
    (0..scenario.pairs.len())
        .map(|i| evaluate_pair(pipeline, scenario, i, config))
        .collect()
}

/// The effective planar detection radius of the pipeline's detector
/// (the voxel extent's half-width).
fn detection_range(pipeline: &CooperPipeline) -> f64 {
    let extent = pipeline.detector().config().voxel_grid.extent;
    let size = extent.size();
    (size.x.min(size.y)) * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_lidar_sim::scenario;
    use cooper_lidar_sim::ObjectClass;
    use cooper_spod::{SpodConfig, SpodDetector};

    fn det(x: f64, y: f64, score: f32) -> Detection {
        Detection {
            class: ObjectClass::Car,
            obb: Obb3::new(Vec3::new(x, y, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
            score,
        }
    }

    fn car(x: f64, y: f64) -> Obb3 {
        Obb3::new(Vec3::new(x, y, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0)
    }

    #[test]
    fn center_distance_matching_greedy() {
        let gts = vec![car(10.0, 0.0), car(20.0, 0.0)];
        let dets = vec![
            det(10.5, 0.0, 0.9),
            det(19.0, 0.5, 0.7),
            det(50.0, 0.0, 0.95),
        ];
        let scores = match_by_center_distance(&dets, &gts, 2.5);
        assert_eq!(scores, vec![Some(0.9), Some(0.7)]);
    }

    #[test]
    fn each_gt_claimed_once() {
        let gts = vec![car(10.0, 0.0)];
        let dets = vec![det(10.0, 0.0, 0.9), det(10.5, 0.0, 0.8)];
        let scores = match_by_center_distance(&dets, &gts, 2.5);
        assert_eq!(scores, vec![Some(0.9)]);
    }

    #[test]
    fn no_match_beyond_distance() {
        let gts = vec![car(10.0, 0.0)];
        let dets = vec![det(14.0, 0.0, 0.9)];
        assert_eq!(match_by_center_distance(&dets, &gts, 2.5), vec![None]);
    }

    #[test]
    fn pair_evaluation_structure() {
        // An untrained pipeline: everything missed, but the structure —
        // rows, bands, ranges — must be correct.
        let pipeline =
            CooperPipeline::new(SpodDetector::new(SpodConfig::default())).with_score_threshold(0.6);
        let scene = scenario::tj_scenario_1();
        let eval = evaluate_pair(
            &pipeline,
            &scene,
            0,
            &EvaluationConfig {
                azimuth_steps: Some(180),
                ..EvaluationConfig::default()
            },
        );
        assert_eq!(eval.rows.len(), scene.ground_truth_cars().len());
        assert!((eval.delta_d - scene.delta_d(scene.pairs[0])).abs() < 1e-12);
        assert_eq!(eval.detected_a(), 0);
        assert_eq!(eval.detected_coop(), 0);
        // Accuracy of nothing-detected with in-range cars is 0.
        assert_eq!(eval.accuracy_a(), 0.0);
        let text = eval.render_matrix();
        assert!(text.contains("Δd"));
        assert!(text.contains('X'));
    }

    #[test]
    fn percentage_empty_is_hundred() {
        assert_eq!(percentage(0, 0), 100.0);
        assert_eq!(percentage(1, 2), 50.0);
    }

    #[test]
    fn improvements_from_rows() {
        let eval = PairEvaluation {
            scenario_name: "test".into(),
            pair: (0, 1),
            delta_d: 10.0,
            rows: vec![
                CarRow {
                    gt_index: 0,
                    band: DistanceBand::Near,
                    in_range_a: true,
                    in_range_b: true,
                    score_a: Some(0.7),
                    score_b: Some(0.6),
                    score_coop: Some(0.8),
                },
                CarRow {
                    gt_index: 1,
                    band: DistanceBand::Far,
                    in_range_a: true,
                    in_range_b: false,
                    score_a: None,
                    score_b: None,
                    score_coop: Some(0.6),
                },
                CarRow {
                    gt_index: 2,
                    band: DistanceBand::Medium,
                    in_range_a: true,
                    in_range_b: true,
                    score_a: None,
                    score_b: None,
                    score_coop: None,
                },
            ],
        };
        let imps = eval.improvements();
        assert_eq!(imps.len(), 2);
        assert_eq!(imps[0].difficulty, crate::CooperDifficulty::Easy);
        assert_eq!(imps[1].difficulty, crate::CooperDifficulty::Hard);
        assert_eq!(eval.detected_coop(), 2);
    }
}
