//! Multi-frame object tracking over cooperative detections.
//!
//! §II-A: "the sensing devices on autonomous vehicles work together to
//! map the local environment and monitor the motion \[of\] surrounding
//! vehicles". Detection gives positions per frame; this module links
//! them through time: greedy nearest-neighbour association with a
//! constant-velocity prediction (an alpha-beta filter — the classic
//! lightweight precursor to a Kalman filter), track confirmation after
//! repeated hits and retirement after repeated misses.
//!
//! Works identically on single-shot and cooperative detections — fused
//! input simply gives the tracker more (and more confident) detections
//! to associate, which is the paper's point.

use cooper_geometry::Vec3;
use cooper_lidar_sim::ObjectClass;
use cooper_spod::Detection;
use serde::{Deserialize, Serialize};

/// Identifier of a track, stable across its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackState {
    /// Seen, but not yet confirmed by enough consecutive hits.
    Tentative,
    /// Confirmed object.
    Confirmed,
    /// Missed recently; kept alive on prediction.
    Coasting,
}

/// One tracked object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Stable identifier.
    pub id: TrackId,
    /// Object class (from the first associated detection).
    pub class: ObjectClass,
    /// Current position estimate (receiver frame, metres).
    pub position: Vec3,
    /// Current velocity estimate, m/s.
    pub velocity: Vec3,
    /// Lifecycle state.
    pub state: TrackState,
    /// Consecutive updates with an associated detection.
    pub hits: u32,
    /// Consecutive updates without one.
    pub misses: u32,
    /// Last associated detection score.
    pub last_score: f32,
}

/// Tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Maximum association distance between a predicted track position
    /// and a detection center, metres.
    pub gate_distance: f64,
    /// Hits needed to confirm a track.
    pub confirm_after: u32,
    /// Misses tolerated before a track is dropped.
    pub drop_after: u32,
    /// Position smoothing gain (alpha), `0..=1`; higher trusts the
    /// measurement more.
    pub alpha: f64,
    /// Velocity gain (beta), `0..=1`.
    pub beta: f64,
    /// Confidence decay applied to [`Track::last_score`] on every missed
    /// frame, `(0, 1]`. A hit restores the carried confidence to at
    /// least the new detection's score (see [`Tracker::update`]).
    pub score_decay: f32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            gate_distance: 3.0,
            confirm_after: 2,
            drop_after: 3,
            alpha: 0.6,
            beta: 0.3,
            score_decay: 0.9,
        }
    }
}

impl TrackerConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.gate_distance <= 0.0 {
            return Err("gate distance must be positive".into());
        }
        if self.confirm_after == 0 || self.drop_after == 0 {
            return Err("confirm/drop thresholds must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.beta) {
            return Err("alpha/beta must be in [0, 1]".into());
        }
        if !(self.score_decay > 0.0 && self.score_decay <= 1.0) {
            return Err("score decay must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// What one [`Tracker::update`] call did, for per-step reporting and
/// telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerStepSummary {
    /// Detections associated with an existing track.
    pub matched: usize,
    /// New tentative tracks spawned from unmatched detections.
    pub spawned: usize,
    /// Tracks promoted (or restored) to [`TrackState::Confirmed`].
    pub promoted: usize,
    /// Confirmed tracks that missed and went [`TrackState::Coasting`].
    pub coasted: usize,
    /// Tracks retired after too many consecutive misses.
    pub dropped: usize,
}

/// A greedy nearest-neighbour multi-object tracker with alpha-beta
/// smoothing.
///
/// # Examples
///
/// ```
/// use cooper_core::tracking::{Tracker, TrackerConfig};
/// use cooper_core::Detection;
/// use cooper_geometry::{Obb3, Vec3};
/// use cooper_lidar_sim::ObjectClass;
///
/// let mut tracker = Tracker::new(TrackerConfig::default());
/// let det = |x: f64| Detection {
///     class: ObjectClass::Car,
///     obb: Obb3::new(Vec3::new(x, 0.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
///     score: 0.9,
/// };
/// tracker.update(&[det(10.0)], 0.1);
/// tracker.update(&[det(11.0)], 0.1);
/// let confirmed = tracker.confirmed_tracks();
/// assert_eq!(confirmed.len(), 1);
/// assert!(confirmed[0].velocity.x > 0.0); // moving away
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl Tracker {
    /// Creates a tracker.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`TrackerConfig::validate`].
    pub fn new(config: TrackerConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid tracker config: {msg}");
        }
        Tracker {
            config,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// All live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Confirmed tracks only.
    pub fn confirmed_tracks(&self) -> Vec<&Track> {
        self.tracks
            .iter()
            .filter(|t| matches!(t.state, TrackState::Confirmed | TrackState::Coasting))
            .collect()
    }

    /// Live tracks per lifecycle state:
    /// `(tentative, confirmed, coasting)`.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for t in &self.tracks {
            match t.state {
                TrackState::Tentative => counts.0 += 1,
                TrackState::Confirmed => counts.1 += 1,
                TrackState::Coasting => counts.2 += 1,
            }
        }
        counts
    }

    /// Advances the tracker by one frame: predict, associate (greedy
    /// best-distance, same class, within the gate), update hits/misses
    /// and spawn tracks for unmatched detections.
    ///
    /// Confidence is carried across frames: a hit raises
    /// [`Track::last_score`] to at least the new detection's score but
    /// never lowers it, and every miss decays it by
    /// [`TrackerConfig::score_decay`] — so a briefly occluded object
    /// keeps most of the confidence its evidence earned.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not positive and finite.
    pub fn update(&mut self, detections: &[Detection], dt: f64) -> TrackerStepSummary {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let mut summary = TrackerStepSummary::default();
        // Predict.
        for t in &mut self.tracks {
            t.position += t.velocity * dt;
        }
        // Build all candidate (distance, track, detection) pairs within
        // the gate, then associate greedily by ascending distance.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, t) in self.tracks.iter().enumerate() {
            for (di, d) in detections.iter().enumerate() {
                if d.class != t.class {
                    continue;
                }
                let dist = t.position.distance_xy(d.obb.center);
                if dist <= self.config.gate_distance {
                    pairs.push((dist, ti, di));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut track_used = vec![false; self.tracks.len()];
        let mut det_used = vec![false; detections.len()];
        for (_, ti, di) in pairs {
            if track_used[ti] || det_used[di] {
                continue;
            }
            track_used[ti] = true;
            det_used[di] = true;
            summary.matched += 1;
            let t = &mut self.tracks[ti];
            let d = &detections[di];
            let residual = d.obb.center - t.position;
            t.position += residual * self.config.alpha;
            t.velocity += residual * (self.config.beta / dt);
            t.hits += 1;
            t.misses = 0;
            t.last_score = d.score.max(t.last_score);
            // A Coasting track was already confirmed once; the preceding
            // miss zeroed `hits`, so waiting for `confirm_after` fresh
            // hits would strand it in Coasting under alternating
            // hit/miss. Re-association restores Confirmed immediately.
            if t.state == TrackState::Coasting || t.hits >= self.config.confirm_after {
                if t.state != TrackState::Confirmed {
                    summary.promoted += 1;
                }
                t.state = TrackState::Confirmed;
            }
        }
        // Unmatched tracks miss.
        for (ti, used) in track_used.iter().enumerate() {
            if !used {
                let t = &mut self.tracks[ti];
                t.misses += 1;
                t.hits = 0;
                t.last_score *= self.config.score_decay;
                if t.state == TrackState::Confirmed {
                    t.state = TrackState::Coasting;
                    summary.coasted += 1;
                }
            }
        }
        let drop_after = self.config.drop_after;
        let before = self.tracks.len();
        self.tracks.retain(|t| t.misses < drop_after);
        summary.dropped = before - self.tracks.len();
        // Unmatched detections spawn tentative tracks.
        for (di, d) in detections.iter().enumerate() {
            if det_used[di] {
                continue;
            }
            summary.spawned += 1;
            self.next_id += 1;
            self.tracks.push(Track {
                id: TrackId(self.next_id),
                class: d.class,
                position: d.obb.center,
                velocity: Vec3::ZERO,
                state: TrackState::Tentative,
                hits: 1,
                misses: 0,
                last_score: d.score,
            });
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Obb3;

    fn det(x: f64, y: f64) -> Detection {
        Detection {
            class: ObjectClass::Car,
            obb: Obb3::new(Vec3::new(x, y, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
            score: 0.8,
        }
    }

    fn ped(x: f64, y: f64) -> Detection {
        Detection {
            class: ObjectClass::Pedestrian,
            obb: Obb3::new(Vec3::new(x, y, -1.0), Vec3::new(0.6, 0.6, 1.7), 0.0),
            score: 0.6,
        }
    }

    #[test]
    fn track_confirms_and_estimates_velocity() {
        let mut tr = Tracker::new(TrackerConfig::default());
        // A car moving +10 m/s in x, 10 Hz frames.
        for step in 0..5 {
            tr.update(&[det(10.0 + step as f64, 0.0)], 0.1);
        }
        let confirmed = tr.confirmed_tracks();
        assert_eq!(confirmed.len(), 1);
        let t = confirmed[0];
        assert!(t.velocity.x > 4.0, "velocity {}", t.velocity);
        assert!((t.position.x - 14.0).abs() < 1.5, "position {}", t.position);
    }

    #[test]
    fn identity_is_stable_across_frames() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0), det(30.0, 5.0)], 0.1);
        let ids_before: Vec<TrackId> = tr.tracks().iter().map(|t| t.id).collect();
        tr.update(&[det(10.2, 0.0), det(30.1, 5.1)], 0.1);
        let ids_after: Vec<TrackId> = tr.tracks().iter().map(|t| t.id).collect();
        assert_eq!(ids_before, ids_after);
    }

    #[test]
    fn missed_tracks_coast_then_drop() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0)], 0.1);
        tr.update(&[det(10.0, 0.0)], 0.1);
        assert_eq!(tr.confirmed_tracks().len(), 1);
        // Object disappears.
        tr.update(&[], 0.1);
        assert_eq!(tr.tracks()[0].state, TrackState::Coasting);
        tr.update(&[], 0.1);
        tr.update(&[], 0.1);
        assert!(tr.tracks().is_empty(), "track should be dropped");
    }

    #[test]
    fn classes_do_not_cross_associate() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0)], 0.1);
        // A pedestrian appears exactly where the car track predicts.
        tr.update(&[ped(10.0, 0.0)], 0.1);
        assert_eq!(tr.tracks().len(), 2, "must spawn a separate track");
        let classes: Vec<ObjectClass> = tr.tracks().iter().map(|t| t.class).collect();
        assert!(classes.contains(&ObjectClass::Car));
        assert!(classes.contains(&ObjectClass::Pedestrian));
    }

    #[test]
    fn gate_prevents_far_association() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0)], 0.1);
        tr.update(&[det(20.0, 0.0)], 0.1);
        // 10 m jump exceeds the 3 m gate: two distinct tracks.
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn greedy_association_prefers_nearest() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0), det(12.0, 0.0)], 0.1);
        let id_near = tr.tracks()[0].id;
        // Both detections move slightly; the nearer one must keep its id.
        tr.update(&[det(10.2, 0.0), det(12.2, 0.0)], 0.1);
        assert_eq!(tr.tracks()[0].id, id_near);
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn coasting_track_prediction_reacquires() {
        let mut tr = Tracker::new(TrackerConfig::default());
        // Build velocity over several frames: 10 m/s.
        for step in 0..4 {
            tr.update(&[det(10.0 + step as f64, 0.0)], 0.1);
        }
        let id = tr.confirmed_tracks()[0].id;
        // One missed frame; object continues moving.
        tr.update(&[], 0.1);
        // Reappears where prediction says (~15): reacquired, same id.
        tr.update(&[det(15.0, 0.0)], 0.1);
        let t = tr.tracks().iter().find(|t| t.id == id).expect("track kept");
        assert_eq!(t.misses, 0);
        assert_eq!(t.state, TrackState::Confirmed, "reacquired track confirms");
    }

    #[test]
    fn coasting_track_reconfirms_on_rehit() {
        // Regression: hit → hit (confirm) → miss (coast) → hit. The miss
        // zeroes `hits`, so the re-hit leaves `hits = 1 < confirm_after`;
        // before the fix the track stayed Coasting forever under
        // alternating hit/miss even though it was already confirmed.
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[det(10.0, 0.0)], 0.1);
        tr.update(&[det(10.0, 0.0)], 0.1);
        assert_eq!(tr.tracks()[0].state, TrackState::Confirmed);
        tr.update(&[], 0.1);
        assert_eq!(tr.tracks()[0].state, TrackState::Coasting);
        let summary = tr.update(&[det(10.0, 0.0)], 0.1);
        let t = &tr.tracks()[0];
        assert_eq!(t.hits, 1, "miss reset the hit streak");
        assert_eq!(
            t.state,
            TrackState::Confirmed,
            "re-associated Coasting track must restore Confirmed immediately"
        );
        assert_eq!(summary.promoted, 1);
        // Alternating hit/miss keeps the already-confirmed object
        // flapping between Confirmed and Coasting, never Tentative.
        for _ in 0..3 {
            tr.update(&[], 0.1);
            assert_eq!(tr.tracks()[0].state, TrackState::Coasting);
            tr.update(&[det(10.0, 0.0)], 0.1);
            assert_eq!(tr.tracks()[0].state, TrackState::Confirmed);
        }
    }

    #[test]
    fn confidence_carries_across_misses() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let strong = Detection {
            score: 0.9,
            ..det(10.0, 0.0)
        };
        let weak = Detection {
            score: 0.3,
            ..det(10.0, 0.0)
        };
        tr.update(&[strong], 0.1);
        tr.update(&[], 0.1);
        let decayed = tr.tracks()[0].last_score;
        assert!((decayed - 0.9 * 0.9).abs() < 1e-6, "miss decays the score");
        tr.update(&[weak], 0.1);
        assert!(
            tr.tracks()[0].last_score > weak.score,
            "a weak re-hit must not erase carried confidence"
        );
    }

    #[test]
    fn update_summary_counts_transitions() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let s = tr.update(&[det(10.0, 0.0), det(30.0, 5.0)], 0.1);
        assert_eq!(s.spawned, 2);
        assert_eq!(s.matched, 0);
        let s = tr.update(&[det(10.0, 0.0)], 0.1);
        assert_eq!(s.matched, 1);
        assert_eq!(s.promoted, 1);
        assert_eq!(tr.state_counts(), (1, 1, 0));
        let s = tr.update(&[], 0.1);
        assert_eq!(s.coasted, 1);
        let s = tr.update(&[], 0.1);
        let s2 = tr.update(&[], 0.1);
        assert_eq!(s.dropped + s2.dropped, 2, "both tracks retire");
        assert!(tr.tracks().is_empty());
    }

    #[test]
    fn config_rejects_bad_score_decay() {
        let bad = TrackerConfig {
            score_decay: 0.0,
            ..TrackerConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("score decay"));
    }

    #[test]
    #[should_panic(expected = "invalid tracker config")]
    fn bad_config_panics() {
        let _ = Tracker::new(TrackerConfig {
            gate_distance: 0.0,
            ..TrackerConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn bad_dt_panics() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&[], 0.0);
    }

    #[test]
    fn config_validation_messages() {
        let bad_alpha = TrackerConfig {
            alpha: 1.5,
            ..TrackerConfig::default()
        };
        assert!(bad_alpha.validate().unwrap_err().contains("alpha"));
        let bad_confirm = TrackerConfig {
            confirm_after: 0,
            ..TrackerConfig::default()
        };
        assert!(bad_confirm.validate().unwrap_err().contains("confirm"));
    }
}
