//! Cooper's statistical analysis: distance bands, the easy/moderate/hard
//! difficulty classification, and detection-score improvement CDFs
//! (the paper's §IV-E and Figure 8).

use serde::{Deserialize, Serialize};

/// The paper's distance bands: "According to the actual detection
/// distance of LiDAR, we divide it into three scales of near (<10m),
/// medium (10-25m) and far (>25m), which are represented in the
/// illustration by white, gray and black" (Figure 3 caption context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DistanceBand {
    /// Less than 10 m from the observer.
    Near,
    /// 10–25 m from the observer.
    Medium,
    /// More than 25 m from the observer.
    Far,
}

impl DistanceBand {
    /// Classifies a planar distance in metres.
    pub fn of(distance_m: f64) -> Self {
        if distance_m < 10.0 {
            DistanceBand::Near
        } else if distance_m <= 25.0 {
            DistanceBand::Medium
        } else {
            DistanceBand::Far
        }
    }
}

impl std::fmt::Display for DistanceBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DistanceBand::Near => "near",
            DistanceBand::Medium => "medium",
            DistanceBand::Far => "far",
        })
    }
}

/// The paper's per-object difficulty, defined by *who* detected it in
/// the single shots (§IV-E): "easy refers to when one or more vehicles
/// are able to detect the same object. Moderate refers to when only one
/// vehicle is able to clearly detect this object. Finally, hard is given
/// when no cars are able to detect this object."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CooperDifficulty {
    /// Detected by both single shots.
    Easy,
    /// Detected by exactly one single shot.
    Moderate,
    /// Detected by neither single shot.
    Hard,
}

impl CooperDifficulty {
    /// All difficulties in Figure-8 order.
    pub const ALL: [CooperDifficulty; 3] = [
        CooperDifficulty::Easy,
        CooperDifficulty::Moderate,
        CooperDifficulty::Hard,
    ];

    /// Classifies one object from its two single-shot detection scores.
    pub fn classify(score_a: Option<f32>, score_b: Option<f32>) -> Self {
        match (score_a, score_b) {
            (Some(_), Some(_)) => CooperDifficulty::Easy,
            (Some(_), None) | (None, Some(_)) => CooperDifficulty::Moderate,
            (None, None) => CooperDifficulty::Hard,
        }
    }
}

impl std::fmt::Display for CooperDifficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CooperDifficulty::Easy => "easy",
            CooperDifficulty::Moderate => "moderate",
            CooperDifficulty::Hard => "hard",
        })
    }
}

/// One object's detection-score improvement from cooperative
/// perception, as plotted in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreImprovement {
    /// The difficulty class of the object.
    pub difficulty: CooperDifficulty,
    /// Increase in detection score, percent.
    ///
    /// For easy/moderate objects this is the relative gain over the best
    /// single-shot score; for hard objects (no single-shot baseline) it
    /// is the raw cooperative score × 100 — the paper's "flat increase
    /// … in raw detection score".
    pub increase_percent: f64,
}

impl ScoreImprovement {
    /// Computes the improvement for one object, or `None` when the
    /// object is not detected cooperatively either.
    pub fn compute(
        score_a: Option<f32>,
        score_b: Option<f32>,
        score_coop: Option<f32>,
    ) -> Option<Self> {
        let coop = score_coop?;
        let difficulty = CooperDifficulty::classify(score_a, score_b);
        let increase_percent = match difficulty {
            CooperDifficulty::Hard => f64::from(coop) * 100.0,
            _ => {
                let best = f64::from(score_a.unwrap_or(0.0).max(score_b.unwrap_or(0.0)));
                if best <= 0.0 {
                    f64::from(coop) * 100.0
                } else {
                    (f64::from(coop) - best) / best * 100.0
                }
            }
        };
        Some(ScoreImprovement {
            difficulty,
            increase_percent,
        })
    }
}

/// An empirical CDF over improvement percentages — one Figure-8 line.
///
/// # Examples
///
/// ```
/// use cooper_core::stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![5.0, 10.0, 20.0]);
/// assert_eq!(cdf.fraction_at_or_below(10.0), 2.0 / 3.0);
/// assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples. Non-finite samples are dropped.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|s| s.is_finite());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`; 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The samples, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_bands_match_paper() {
        assert_eq!(DistanceBand::of(0.0), DistanceBand::Near);
        assert_eq!(DistanceBand::of(9.99), DistanceBand::Near);
        assert_eq!(DistanceBand::of(10.0), DistanceBand::Medium);
        assert_eq!(DistanceBand::of(25.0), DistanceBand::Medium);
        assert_eq!(DistanceBand::of(25.01), DistanceBand::Far);
    }

    #[test]
    fn difficulty_classification() {
        assert_eq!(
            CooperDifficulty::classify(Some(0.7), Some(0.6)),
            CooperDifficulty::Easy
        );
        assert_eq!(
            CooperDifficulty::classify(Some(0.7), None),
            CooperDifficulty::Moderate
        );
        assert_eq!(
            CooperDifficulty::classify(None, Some(0.6)),
            CooperDifficulty::Moderate
        );
        assert_eq!(
            CooperDifficulty::classify(None, None),
            CooperDifficulty::Hard
        );
    }

    #[test]
    fn improvement_easy_is_relative() {
        let imp = ScoreImprovement::compute(Some(0.76), Some(0.70), Some(0.86)).unwrap();
        assert_eq!(imp.difficulty, CooperDifficulty::Easy);
        // (0.86 − 0.76)/0.76 ≈ 13 % — the paper's Figure-2 example.
        assert!(
            (imp.increase_percent - 13.16).abs() < 0.1,
            "{}",
            imp.increase_percent
        );
    }

    #[test]
    fn improvement_hard_is_raw_score() {
        let imp = ScoreImprovement::compute(None, None, Some(0.55)).unwrap();
        assert_eq!(imp.difficulty, CooperDifficulty::Hard);
        assert!((imp.increase_percent - 55.0).abs() < 1e-4);
    }

    #[test]
    fn undetected_cooperative_gives_none() {
        assert!(ScoreImprovement::compute(Some(0.5), None, None).is_none());
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_samples(vec![3.0, 1.0, 2.0, f64::NAN]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 1.0 / 3.0);
        assert_eq!(cdf.fraction_at_or_below(2.5), 2.0 / 3.0);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(3.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.min(), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let _ = Cdf::from_samples(vec![1.0]).quantile(1.5);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", DistanceBand::Near), "near");
        assert_eq!(format!("{}", CooperDifficulty::Hard), "hard");
    }
}
