//! Per-sender trust state for Byzantine-tolerant fusion.
//!
//! Transport-level integrity ([`crate::ExchangePacket::verify_integrity`])
//! and the content guards ([`crate::guard_alignment`],
//! [`crate::consistency`]) each reject individual bad packets. This
//! module adds the *policy* layer on top: every receiver keeps one
//! [`TrustState`] per sender, feeds it the step's verdicts, and stops
//! spending bandwidth, governor budget and fusion compute on peers
//! whose packets keep failing.
//!
//! The state machine:
//!
//! ```text
//! Trusted ──violations ≥ suspect_after──► Suspect
//! Suspect ──violations ≥ quarantine_after──► Quarantined
//! Suspect ──clean ≥ probation_clean_steps──► Trusted
//! Quarantined ──quarantine_steps elapsed──► Probation
//! Probation ──any violation──► Quarantined (timer restarts)
//! Probation ──clean ≥ probation_clean_steps──► Trusted
//! ```
//!
//! While a sender is quarantined the receiver skips its transfers
//! entirely (a [`crate::fleet::TransportDropReason::Quarantined`]
//! drop): nothing is offered to the governor, nothing crosses the
//! channel, nothing is decoded. Probation re-admits the sender's
//! packets — they flow and are fused again — but one more violation
//! sends it straight back.
//!
//! All transitions are driven from the fleet loop's serial merge, in
//! fleet order, so trust-guarded runs keep the deterministic-reports
//! contract.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Tuning knobs of the trust layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Violations (over the sender's lifetime with this receiver) that
    /// turn Trusted into Suspect.
    pub suspect_after: u32,
    /// Violations that turn Suspect into Quarantined.
    pub quarantine_after: u32,
    /// Steps a quarantine lasts before the sender is put on probation.
    pub quarantine_steps: u32,
    /// Consecutive clean steps (with at least one delivered packet
    /// checked) needed on probation — or as a suspect — to return to
    /// Trusted.
    pub probation_clean_steps: u32,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            suspect_after: 1,
            quarantine_after: 3,
            quarantine_steps: 6,
            probation_clean_steps: 3,
        }
    }
}

impl TrustConfig {
    /// Checks the configuration for nonsensical values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.suspect_after == 0 || self.quarantine_after == 0 {
            return Err("trust thresholds must be at least 1".into());
        }
        if self.quarantine_after < self.suspect_after {
            return Err("quarantine threshold cannot be below the suspect threshold".into());
        }
        if self.quarantine_steps == 0 || self.probation_clean_steps == 0 {
            return Err("trust durations must be at least 1 step".into());
        }
        Ok(())
    }
}

/// Where one sender stands with one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrustLevel {
    /// No open concerns; packets flow and fuse normally.
    Trusted,
    /// Violations observed; packets still flow, the counter is armed.
    Suspect,
    /// Transfers are skipped entirely until the quarantine elapses.
    Quarantined,
    /// Re-admitted on a trial basis after a quarantine.
    Probation,
}

impl std::fmt::Display for TrustLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrustLevel::Trusted => "trusted",
            TrustLevel::Suspect => "suspect",
            TrustLevel::Quarantined => "quarantined",
            TrustLevel::Probation => "probation",
        })
    }
}

/// One receiver's running assessment of one sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustState {
    /// Current level.
    pub level: TrustLevel,
    /// Violations accumulated since the last return to Trusted.
    pub violations: u32,
    /// Steps remaining in the current quarantine (only meaningful while
    /// [`TrustLevel::Quarantined`]).
    pub quarantine_remaining: u32,
    /// Consecutive clean checked steps while Suspect or on Probation.
    pub clean_streak: u32,
}

impl Default for TrustState {
    fn default() -> Self {
        TrustState {
            level: TrustLevel::Trusted,
            violations: 0,
            quarantine_remaining: 0,
            clean_streak: 0,
        }
    }
}

/// What one [`TrustState::note_step`] transition did — the ledger
/// surfaces these so the fleet can count quarantines and reinstatements
/// without diffing states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustTransition {
    /// No level change.
    None,
    /// The sender entered (or re-entered) quarantine this step.
    Quarantined,
    /// The quarantine elapsed; the sender is on probation.
    Paroled,
    /// The sender earned its way back to Trusted.
    Reinstated,
}

impl TrustState {
    /// `true` while the receiver should skip this sender's transfers.
    pub fn blocks(&self) -> bool {
        self.level == TrustLevel::Quarantined
    }

    /// Advances the state by one step. `violations` is how many of the
    /// sender's packets failed a check this step; `checked` is whether
    /// any packet from the sender was actually examined (clean streaks
    /// only grow on steps with evidence).
    pub fn note_step(
        &mut self,
        violations: u32,
        checked: bool,
        cfg: &TrustConfig,
    ) -> TrustTransition {
        match self.level {
            TrustLevel::Quarantined => {
                self.quarantine_remaining = self.quarantine_remaining.saturating_sub(1);
                if self.quarantine_remaining == 0 {
                    self.level = TrustLevel::Probation;
                    self.clean_streak = 0;
                    TrustTransition::Paroled
                } else {
                    TrustTransition::None
                }
            }
            TrustLevel::Trusted | TrustLevel::Suspect | TrustLevel::Probation if violations > 0 => {
                self.violations = self.violations.saturating_add(violations);
                self.clean_streak = 0;
                if self.level == TrustLevel::Probation || self.violations >= cfg.quarantine_after {
                    self.level = TrustLevel::Quarantined;
                    self.quarantine_remaining = cfg.quarantine_steps;
                    TrustTransition::Quarantined
                } else {
                    if self.violations >= cfg.suspect_after {
                        self.level = TrustLevel::Suspect;
                    }
                    TrustTransition::None
                }
            }
            TrustLevel::Suspect | TrustLevel::Probation => {
                if checked {
                    self.clean_streak = self.clean_streak.saturating_add(1);
                    if self.clean_streak >= cfg.probation_clean_steps {
                        *self = TrustState::default();
                        return TrustTransition::Reinstated;
                    }
                }
                TrustTransition::None
            }
            TrustLevel::Trusted => TrustTransition::None,
        }
    }
}

/// Aggregate trust activity of one receiver over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustVehicleStats {
    /// Packet-level violations this receiver charged to its senders.
    pub violations: u64,
    /// Times a sender entered quarantine with this receiver.
    pub quarantines: u64,
    /// Transfers skipped because the sender was quarantined.
    pub blocked_transfers: u64,
    /// Times a sender earned its way back to Trusted.
    pub reinstated: u64,
}

/// Every (receiver, sender) trust state of a fleet run. Ordered map, so
/// iteration — and the derived report columns — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrustLedger {
    states: BTreeMap<(u32, u32), TrustState>,
}

impl TrustLedger {
    /// Creates an empty ledger (everyone starts Trusted).
    pub fn new() -> Self {
        TrustLedger::default()
    }

    /// `true` when `receiver` should skip transfers from `sender`.
    pub fn blocks(&self, receiver: u32, sender: u32) -> bool {
        self.states
            .get(&(receiver, sender))
            .is_some_and(TrustState::blocks)
    }

    /// The state of one (receiver, sender) pair, if any concern or
    /// history exists.
    pub fn state(&self, receiver: u32, sender: u32) -> Option<&TrustState> {
        self.states.get(&(receiver, sender))
    }

    /// How many senders `receiver` currently has quarantined.
    pub fn quarantined_count(&self, receiver: u32) -> usize {
        self.states
            .range((receiver, u32::MIN)..=(receiver, u32::MAX))
            .filter(|(_, s)| s.blocks())
            .count()
    }

    /// Advances every tracked pair by one step and books the step's
    /// evidence: `violations` maps (receiver, sender) to how many of
    /// that sender's packets failed a check; `checked` holds the pairs
    /// whose packets were examined at all. Returns the transitions that
    /// occurred, in pair order.
    pub fn end_step(
        &mut self,
        violations: &BTreeMap<(u32, u32), u32>,
        checked: &[(u32, u32)],
        cfg: &TrustConfig,
    ) -> Vec<((u32, u32), TrustTransition)> {
        for pair in violations.keys() {
            self.states.entry(*pair).or_default();
        }
        for pair in checked {
            self.states.entry(*pair).or_default();
        }
        let checked: std::collections::BTreeSet<(u32, u32)> = checked.iter().copied().collect();
        let mut transitions = Vec::new();
        for (pair, state) in &mut self.states {
            let v = violations.get(pair).copied().unwrap_or(0);
            let transition = state.note_step(v, checked.contains(pair), cfg);
            if transition != TrustTransition::None {
                transitions.push((*pair, transition));
            }
        }
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrustConfig {
        TrustConfig::default()
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        for bad in [
            TrustConfig {
                suspect_after: 0,
                ..cfg()
            },
            TrustConfig {
                quarantine_after: 0,
                ..cfg()
            },
            TrustConfig {
                suspect_after: 5,
                quarantine_after: 2,
                ..cfg()
            },
            TrustConfig {
                quarantine_steps: 0,
                ..cfg()
            },
            TrustConfig {
                probation_clean_steps: 0,
                ..cfg()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn violations_walk_trusted_to_quarantined() {
        let mut state = TrustState::default();
        assert_eq!(state.note_step(1, true, &cfg()), TrustTransition::None);
        assert_eq!(state.level, TrustLevel::Suspect);
        assert_eq!(state.note_step(1, true, &cfg()), TrustTransition::None);
        assert_eq!(
            state.note_step(1, true, &cfg()),
            TrustTransition::Quarantined
        );
        assert!(state.blocks());
    }

    #[test]
    fn quarantine_elapses_into_probation_then_trusted() {
        let mut state = TrustState {
            level: TrustLevel::Quarantined,
            violations: 3,
            quarantine_remaining: 2,
            clean_streak: 0,
        };
        assert_eq!(state.note_step(0, false, &cfg()), TrustTransition::None);
        assert_eq!(state.note_step(0, false, &cfg()), TrustTransition::Paroled);
        assert_eq!(state.level, TrustLevel::Probation);
        assert!(!state.blocks());
        // Clean checked steps walk probation back to trusted; unchecked
        // steps (sender out of range) do not count.
        assert_eq!(state.note_step(0, false, &cfg()), TrustTransition::None);
        for _ in 0..2 {
            assert_eq!(state.note_step(0, true, &cfg()), TrustTransition::None);
        }
        assert_eq!(
            state.note_step(0, true, &cfg()),
            TrustTransition::Reinstated
        );
        assert_eq!(state, TrustState::default());
    }

    #[test]
    fn probation_violation_requarantines_immediately() {
        let mut state = TrustState {
            level: TrustLevel::Probation,
            violations: 3,
            quarantine_remaining: 0,
            clean_streak: 2,
        };
        assert_eq!(
            state.note_step(1, true, &cfg()),
            TrustTransition::Quarantined
        );
        assert_eq!(state.quarantine_remaining, cfg().quarantine_steps);
    }

    #[test]
    fn ledger_tracks_pairs_independently_and_in_order() {
        let mut ledger = TrustLedger::new();
        assert!(!ledger.blocks(1, 2));
        let mut violations = BTreeMap::new();
        violations.insert((1, 2), 3u32);
        let transitions = ledger.end_step(&violations, &[(1, 2), (1, 3)], &cfg());
        assert_eq!(transitions, vec![((1, 2), TrustTransition::Quarantined)]);
        assert!(ledger.blocks(1, 2));
        assert!(!ledger.blocks(1, 3));
        assert!(!ledger.blocks(3, 2), "trust is per receiver");
        assert_eq!(ledger.quarantined_count(1), 1);
        assert_eq!(ledger.quarantined_count(3), 0);
        assert_eq!(ledger.state(1, 3).unwrap().level, TrustLevel::Trusted);
    }

    #[test]
    fn levels_format_for_reports() {
        assert_eq!(TrustLevel::Quarantined.to_string(), "quarantined");
        assert_eq!(TrustLevel::Probation.to_string(), "probation");
    }
}
