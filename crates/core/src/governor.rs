//! The bandwidth-governor policy interface.
//!
//! §IV-G of the paper shrinks exchanged frames to "what the receiver
//! actually needs" — an ROI wedge, background removed — so cooperative
//! perception fits the DSRC channel instead of hoping it does. The
//! fleet loop closes that loop per directed transfer: it assembles a
//! [`TransferOffer`] describing every way the sender's scan could be
//! encoded (ROI category × frame kind, each with its wire size and air
//! time) together with the receiver's demand (its blind sectors) and
//! the channel's remaining air-time budget, then asks a
//! [`GovernorPolicy`] which encoding to send — or whether to skip the
//! transfer entirely rather than blow the exchange deadline.
//!
//! The menu spans **four tiers** of degradation, cheapest content last:
//! raw keyframes, raw deltas (background subtracted, keyed to the last
//! keyframe), ROI-clipped variants of either, and — with
//! [`GovernorConfig::features`] — quantized BEV **feature frames**
//! (wire-format v3, the F-Cooper exchange level), where the sender runs
//! the SPOD front half and ships per-cell features instead of points.
//!
//! The policy lives behind a trait because the reference
//! implementation (`cooper_v2x::BandwidthGovernor`) belongs with the
//! channel models in `cooper-v2x`, which depends on this crate — the
//! fleet can only name the contract, not the implementation.

use cooper_pointcloud::roi::{BlindSector, RoiCategory};
use cooper_pointcloud::{FrameKind, VoxelGridConfig};

/// One way a transfer's payload could be encoded: an ROI category and
/// frame kind, priced in wire bytes and (when the channel accounts air
/// time) seconds on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCandidate {
    /// ROI category applied to the sender's content.
    pub roi: RoiCategory,
    /// Encoding of that content: raw keyframe, raw delta, or a
    /// quantized BEV feature frame (the v3 feature-exchange tier).
    pub kind: FrameKind,
    /// Total wire size of the resulting exchange packet, bytes.
    pub wire_bytes: usize,
    /// Air time the packet would occupy, seconds; `None` when the
    /// channel model does not account air time.
    pub airtime_s: Option<f64>,
}

/// Everything a governor may consult about one directed transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferOffer<'a> {
    /// Simulation step of the transfer.
    pub step: usize,
    /// Transmitting vehicle's id.
    pub from: u32,
    /// Receiving vehicle's id.
    pub to: u32,
    /// `true` when the sender's keyframe cadence fell due this step
    /// (delta candidates reference an older keyframe than usual).
    pub keyframe_due: bool,
    /// Blocked sectors of the *receiver's* own view this step — its
    /// demand for cooperative content, in its own sensor frame.
    pub receiver_blind_sectors: &'a [BlindSector],
    /// The encodings on offer, every available (ROI, kind) pair.
    pub candidates: &'a [TransferCandidate],
    /// Air time left in the channel's current window, seconds; `None`
    /// when the channel model keeps no window accounting.
    pub headroom_s: Option<f64>,
}

impl TransferOffer<'_> {
    /// The candidate with the given ROI and kind, if offered.
    pub fn candidate(&self, roi: RoiCategory, kind: FrameKind) -> Option<TransferCandidate> {
        self.candidates
            .iter()
            .copied()
            .find(|c| c.roi == roi && c.kind == kind)
    }
}

/// A governor's decision about one directed transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorVerdict {
    /// Send the payload encoded as this candidate describes.
    Send(TransferCandidate),
    /// Send nothing: no candidate fits the budget. The fleet records
    /// this as a [`crate::fleet::TransportDropReason::BudgetExceeded`].
    Skip,
}

/// Decides, per directed transfer, what subset of the sender's scan to
/// send and how to encode it — or to skip the transfer.
///
/// Implementations must be deterministic functions of the offer (plus
/// their own configuration): the fleet consults the governor serially
/// in delivery order, and the reports are bit-identical at any thread
/// count only if the governor is too.
pub trait GovernorPolicy {
    /// Picks a candidate (or skips) for the offered transfer.
    fn decide(&mut self, offer: &TransferOffer<'_>) -> GovernorVerdict;
}

/// The ungoverned baseline: always sends the first offered candidate
/// (the fleet offers the widest ROI at the cadence kind first).
#[derive(Debug, Clone, Copy, Default)]
pub struct SendFirstPolicy;

impl GovernorPolicy for SendFirstPolicy {
    fn decide(&mut self, offer: &TransferOffer<'_>) -> GovernorVerdict {
        match offer.candidates.first() {
            Some(c) => GovernorVerdict::Send(*c),
            None => GovernorVerdict::Skip,
        }
    }
}

/// Configuration of the governed exchange path
/// ([`crate::fleet::FleetSimulation::run_governed`]): the sender-side
/// codec state every vehicle maintains, and the blind-sector detection
/// the receivers' demand is computed from.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Enable wire-format v2 delta encoding (background subtraction via
    /// a per-vehicle `StaticMap` plus keyframe/delta cadence). When
    /// `false` every frame is a keyframe of the raw scan.
    pub delta_encode: bool,
    /// Keyframe cadence: every `keyframe_every`-th frame is a keyframe
    /// (1 = all keyframes). Ignored unless `delta_encode`.
    pub keyframe_every: u32,
    /// Scans a voxel must appear in before it is classified as static
    /// background. Ignored unless `delta_encode`.
    pub static_threshold: u32,
    /// Voxel grid keying both the static map and the delta reference.
    pub grid: VoxelGridConfig,
    /// Azimuth bins used for blind-sector detection.
    pub blind_bins: usize,
    /// A bin is blocked when its nearest above-ground return is closer
    /// than this, metres.
    pub occluder_range_m: f64,
    /// Minimum angular width of a reported blind sector, radians.
    pub min_sector_width_rad: f64,
    /// Returns below this sensor-frame height are ground, not
    /// occluders, metres.
    pub ground_z_below_m: f64,
    /// Offer the feature-exchange tier: senders run the SPOD front half
    /// over their own scan and the candidate menu gains wire-format v3
    /// quantized BEV feature frames per ROI (F-Cooper), priced by their
    /// real encoded size. Policies that never pick a
    /// [`FrameKind::Features`] candidate behave exactly as before.
    pub features: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            delta_encode: true,
            keyframe_every: 5,
            static_threshold: 3,
            grid: VoxelGridConfig::voxelnet_car(),
            blind_bins: 360,
            occluder_range_m: 15.0,
            min_sector_width_rad: 10f64.to_radians(),
            ground_z_below_m: -1.0,
            features: false,
        }
    }
}

impl GovernorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.keyframe_every == 0 {
            return Err("keyframe_every must be positive".to_string());
        }
        if self.static_threshold == 0 {
            return Err("static_threshold must be positive".to_string());
        }
        if self.blind_bins == 0 {
            return Err("blind_bins must be positive".to_string());
        }
        if self.occluder_range_m <= 0.0 || self.occluder_range_m.is_nan() {
            return Err("occluder_range_m must be positive".to_string());
        }
        if self.min_sector_width_rad <= 0.0 || self.min_sector_width_rad.is_nan() {
            return Err("min_sector_width_rad must be positive".to_string());
        }
        self.grid.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer_with(candidates: &[TransferCandidate]) -> TransferOffer<'_> {
        TransferOffer {
            step: 0,
            from: 1,
            to: 2,
            keyframe_due: true,
            receiver_blind_sectors: &[],
            candidates,
            headroom_s: None,
        }
    }

    #[test]
    fn send_first_policy_takes_first_candidate() {
        let candidates = [
            TransferCandidate {
                roi: RoiCategory::FullFrame,
                kind: FrameKind::Keyframe,
                wire_bytes: 1000,
                airtime_s: None,
            },
            TransferCandidate {
                roi: RoiCategory::ForwardOneWay,
                kind: FrameKind::Keyframe,
                wire_bytes: 100,
                airtime_s: None,
            },
        ];
        let mut policy = SendFirstPolicy;
        match policy.decide(&offer_with(&candidates)) {
            GovernorVerdict::Send(c) => assert_eq!(c.wire_bytes, 1000),
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        assert_eq!(policy.decide(&offer_with(&[])), GovernorVerdict::Skip);
    }

    #[test]
    fn offer_candidate_lookup() {
        let candidates = [TransferCandidate {
            roi: RoiCategory::FrontFov120,
            kind: FrameKind::Delta,
            wire_bytes: 64,
            airtime_s: Some(0.001),
        }];
        let offer = offer_with(&candidates);
        assert!(offer
            .candidate(RoiCategory::FrontFov120, FrameKind::Delta)
            .is_some());
        assert!(offer
            .candidate(RoiCategory::FullFrame, FrameKind::Delta)
            .is_none());
    }

    #[test]
    fn config_validation() {
        assert!(GovernorConfig::default().validate().is_ok());
        let bad = GovernorConfig {
            keyframe_every: 0,
            ..GovernorConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GovernorConfig {
            occluder_range_m: -1.0,
            ..GovernorConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
