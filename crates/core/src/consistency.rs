//! Content-consistency guard for received clouds.
//!
//! The alignment guard ([`crate::guard_alignment`]) checks *where* a
//! received cloud claims to be; this module checks *what it claims to
//! contain*. A malicious (or broken) cooperator can pass every
//! transport- and alignment-level check while still poisoning fusion:
//! injecting car-sized ghost clusters into otherwise-honest scans,
//! replaying a stale scan under a fresh pose, or teleporting its
//! content across steps. Each attack leaves a physical fingerprint the
//! receiver can test against its own sensing:
//!
//! - **Ghosts occupy observed free space.** If the receiver's own beams
//!   passed *through* the location of a remote cluster and returned
//!   from something farther away, that space is known-empty — a real
//!   car there would have intercepted the beams. The test is
//!   height-aware: a beam clearing an occluder flies high over the
//!   space behind it, so genuinely occluded objects (the case
//!   cooperative perception exists for) generate no free-space
//!   evidence and are never flagged.
//! - **Real senders move continuously.** The remote cloud's centroid in
//!   the shared world frame cannot jump farther between consecutive
//!   packets than the fleet's speed envelope allows.
//! - **Real stamps advance.** A replayed scan re-broadcasts its capture
//!   stamp; honest stamps — even stale ones — are strictly monotonic.
//!
//! The guard is pure and deterministic: verdicts depend only on the two
//! clouds, the stamp and the per-sender [`SenderHistory`] snapshot, so
//! fleet runs keep the bit-identical-at-any-thread-count contract.

use cooper_geometry::Vec3;
use cooper_pointcloud::PointCloud;

/// Tuning knobs of the consistency guard.
///
/// Defaults are calibrated on the synthetic scenario library: honest
/// packets under rated GPS noise pass, while a single injected ghost
/// cluster ([`cooper_lidar_sim::FaultKind::GhostClusters`]) trips
/// [`ConsistencyVerdict::GhostSuspected`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyConfig {
    /// Azimuth bins the receiver's scan is indexed into for the
    /// free-space test.
    pub azimuth_bins: usize,
    /// A remote point only counts as ghost evidence when an ego beam
    /// reached at least this much farther through its location, metres.
    pub free_space_margin_m: f64,
    /// Remote points within this planar range of an ego return (same
    /// bin neighborhood) are corroborated, never ghost evidence.
    pub match_tolerance_m: f64,
    /// Vertical half-window for deciding an ego beam passed *through* a
    /// remote point's location, metres.
    pub height_tolerance_m: f64,
    /// Remote points nearer than this are ignored — the receiver cannot
    /// observe its own footprint, so the zone carries no evidence.
    pub min_range_m: f64,
    /// Points at or below this sensor-frame height are treated as
    /// ground returns and excluded from both evidence and candidacy.
    pub ground_z_m: f64,
    /// Flag the packet once this many remote points sit in observed
    /// free space.
    pub min_ghost_points: usize,
    /// Fastest plausible sender motion for the teleport bound, m/s.
    pub max_speed_m_per_s: f64,
    /// Slack added to the teleport bound, metres — absorbs scene churn
    /// at the edges of the remote's sensing range.
    pub teleport_slack_m: f64,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        ConsistencyConfig {
            azimuth_bins: 360,
            free_space_margin_m: 3.0,
            match_tolerance_m: 2.0,
            height_tolerance_m: 0.6,
            min_range_m: 4.0,
            ground_z_m: -1.4,
            min_ghost_points: 15,
            max_speed_m_per_s: 40.0,
            teleport_slack_m: 8.0,
        }
    }
}

impl ConsistencyConfig {
    /// Checks the configuration for nonsensical values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.azimuth_bins < 8 {
            return Err("consistency guard needs at least 8 azimuth bins".into());
        }
        for (value, name) in [
            (self.free_space_margin_m, "free-space margin"),
            (self.match_tolerance_m, "match tolerance"),
            (self.height_tolerance_m, "height tolerance"),
            (self.max_speed_m_per_s, "max speed"),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(format!("consistency {name} must be positive and finite"));
            }
        }
        if self.min_ghost_points == 0 {
            return Err("min ghost points must be at least 1".into());
        }
        Ok(())
    }
}

/// What a receiver remembers about one sender between steps — the
/// state the teleport and replay checks compare against. Owned by the
/// fleet loop in a per-(receiver, sender) map; read in the parallel
/// perceive phase, written back in the serial merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderHistory {
    /// Frame stamp of the sender's last accepted-for-checking packet.
    pub last_stamp: u32,
    /// Centroid of that packet's cloud in the shared world frame.
    pub last_centroid: Vec3,
}

/// The guard's verdict on one received cloud. Anything but
/// [`ConsistencyVerdict::Consistent`] excludes the packet from fusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsistencyVerdict {
    /// Nothing physically impossible found.
    Consistent,
    /// Remote points occupy space the receiver's own beams observed as
    /// empty.
    GhostSuspected {
        /// Remote points flagged as free-space violations.
        ghost_points: usize,
    },
    /// The content centroid jumped farther than the speed envelope
    /// allows since the sender's previous packet.
    Teleport {
        /// Observed centroid jump, metres.
        jump_m: f64,
        /// What the speed envelope allowed, metres.
        bound_m: f64,
    },
    /// The packet's stamp does not advance past the sender's previous
    /// one — a replayed or duplicated scan.
    ReplayedStamp {
        /// The offending stamp.
        stamp: u32,
    },
}

impl ConsistencyVerdict {
    /// `true` when the packet may enter fusion.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ConsistencyVerdict::Consistent)
    }

    /// Ghost points flagged, zero for non-ghost verdicts — the detail
    /// value carried by drop reports and trace marks.
    pub fn ghost_points(&self) -> usize {
        match self {
            ConsistencyVerdict::GhostSuspected { ghost_points } => *ghost_points,
            _ => 0,
        }
    }
}

/// The receiver's scan indexed for free-space queries: per azimuth bin,
/// the planar range and height of every (non-ground) return. Build once
/// per step per receiver, query once per received packet.
#[derive(Debug, Clone)]
pub struct FreeSpaceIndex {
    bins: Vec<Vec<(f64, f64)>>,
}

impl FreeSpaceIndex {
    /// Indexes `ego_cloud` (receiver sensor frame) into `bins` azimuth
    /// bins. Ground-level returns still count as beam-path evidence —
    /// a beam that hit the ground at 20 m flew through every car-height
    /// location on the way — but [`ConsistencyConfig::ground_z_m`]
    /// filtering happens at query time for candidacy.
    pub fn build(ego_cloud: &PointCloud, cfg: &ConsistencyConfig) -> Self {
        let n = cfg.azimuth_bins.max(8);
        let mut bins = vec![Vec::new(); n];
        for p in ego_cloud.iter() {
            let r = planar_range(p.position);
            if r < cfg.min_range_m {
                continue;
            }
            bins[bin_of(p.position, n)].push((r, p.position.z));
        }
        FreeSpaceIndex { bins }
    }

    /// Counts remote points (receiver sensor frame) that sit in space
    /// the ego's beams observed as empty: some beam in the same azimuth
    /// neighborhood passed through the point's range *and height* and
    /// returned from beyond the margin, while no ego return corroborates
    /// the point.
    pub fn ghost_points(&self, remote_in_ego: &PointCloud, cfg: &ConsistencyConfig) -> usize {
        let n = self.bins.len();
        let mut flagged = 0usize;
        for p in remote_in_ego.iter() {
            let r = planar_range(p.position);
            if r < cfg.min_range_m || p.position.z <= cfg.ground_z_m {
                continue;
            }
            let b = bin_of(p.position, n);
            let mut evidence = false;
            let mut corroborated = false;
            for nb in [(b + n - 1) % n, b, (b + 1) % n] {
                for &(er, ez) in &self.bins[nb] {
                    // Only above-ground ego returns corroborate an
                    // object claim — a ground ring at the same range
                    // says nothing about a car floating above it.
                    if ez > cfg.ground_z_m
                        && (er - r).abs() <= cfg.match_tolerance_m
                        && (ez - p.position.z).abs() <= 2.0 * cfg.match_tolerance_m
                    {
                        corroborated = true;
                        break;
                    }
                    // The beam to (er, ez) crossed range r at height
                    // ez * r / er (rays leave the sensor origin).
                    if er > r + cfg.free_space_margin_m
                        && (ez * r / er - p.position.z).abs() <= cfg.height_tolerance_m
                    {
                        evidence = true;
                    }
                }
                if corroborated {
                    break;
                }
            }
            if evidence && !corroborated {
                flagged += 1;
            }
        }
        flagged
    }
}

/// Runs the full consistency check on one received cloud.
///
/// `remote_in_ego` is the sender's cloud already transformed into the
/// receiver's sensor frame (the claimed [`crate::alignment_transform`]);
/// `remote_world_centroid` is the same cloud's centroid in the shared
/// world frame. `history` is the receiver's memory of this sender;
/// `step_duration_s` scales the teleport bound by elapsed stamps.
///
/// Checks run cheapest-first — stamp replay, teleport, then the
/// free-space sweep — and the first violation wins.
pub fn check_consistency(
    ego_index: &FreeSpaceIndex,
    remote_in_ego: &PointCloud,
    remote_world_centroid: Vec3,
    stamp: u32,
    history: Option<&SenderHistory>,
    step_duration_s: f64,
    cfg: &ConsistencyConfig,
) -> (ConsistencyVerdict, SenderHistory) {
    let next = SenderHistory {
        last_stamp: stamp,
        last_centroid: remote_world_centroid,
    };
    if let Some(prev) = history {
        if stamp <= prev.last_stamp {
            // Keep the old history: the replayed packet teaches us
            // nothing new about the sender's real motion.
            return (ConsistencyVerdict::ReplayedStamp { stamp }, *prev);
        }
        let elapsed = u64::from(stamp - prev.last_stamp) as f64;
        let bound = cfg.max_speed_m_per_s * step_duration_s * elapsed + cfg.teleport_slack_m;
        let jump = (remote_world_centroid - prev.last_centroid).norm();
        if jump > bound {
            return (
                ConsistencyVerdict::Teleport {
                    jump_m: jump,
                    bound_m: bound,
                },
                next,
            );
        }
    }
    let ghost_points = ego_index.ghost_points(remote_in_ego, cfg);
    if ghost_points >= cfg.min_ghost_points {
        return (ConsistencyVerdict::GhostSuspected { ghost_points }, next);
    }
    (ConsistencyVerdict::Consistent, next)
}

fn planar_range(p: Vec3) -> f64 {
    (p.x * p.x + p.y * p.y).sqrt()
}

fn bin_of(p: Vec3, bins: usize) -> usize {
    let azimuth = p.y.atan2(p.x);
    let unit = (azimuth + std::f64::consts::PI) / std::f64::consts::TAU;
    ((unit * bins as f64) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_pointcloud::Point;

    fn cfg() -> ConsistencyConfig {
        ConsistencyConfig::default()
    }

    /// A ring of "ground" returns: beams at several downward elevations
    /// hitting the plane 1.8 m below the sensor, every 1° of azimuth.
    fn ground_scan() -> PointCloud {
        let mut cloud = PointCloud::new();
        for deg in 0..360 {
            let az = f64::from(deg).to_radians();
            for range in [8.0, 12.0, 18.0, 26.0, 40.0] {
                let z = -1.8;
                cloud.push(Point::new(
                    Vec3::new(range * az.cos(), range * az.sin(), z),
                    0.15,
                ));
            }
        }
        cloud
    }

    /// A car-sized cluster of points centred at `(x, y)`, mid-height.
    fn car_cluster(x: f64, y: f64, points: usize) -> PointCloud {
        (0..points)
            .map(|i| {
                let fx = (i % 10) as f64 / 10.0 - 0.5;
                let fy = (i / 10) as f64 / 10.0 - 0.5;
                Point::new(Vec3::new(x + fx * 4.2, y + fy * 1.8, -1.0), 0.5)
            })
            .collect()
    }

    fn merged(a: &PointCloud, b: &PointCloud) -> PointCloud {
        let mut out = a.clone();
        for p in b.iter() {
            out.push(*p);
        }
        out
    }

    #[test]
    fn ghost_in_observed_free_space_is_flagged() {
        let index = FreeSpaceIndex::build(&ground_scan(), &cfg());
        // A fabricated car at 12 m where the ego's beams reach 18-40 m.
        let ghost = car_cluster(12.0, 0.0, 60);
        let (verdict, _) = check_consistency(&index, &ghost, Vec3::ZERO, 1, None, 1.0, &cfg());
        assert!(
            matches!(verdict, ConsistencyVerdict::GhostSuspected { ghost_points } if ghost_points >= 15),
            "{verdict:?}"
        );
    }

    #[test]
    fn corroborated_object_is_consistent() {
        // Ego sees the same car the remote reports: corroborated.
        let car = car_cluster(12.0, 0.0, 60);
        let ego = merged(&ground_scan(), &car);
        let index = FreeSpaceIndex::build(&ego, &cfg());
        let (verdict, _) = check_consistency(&index, &car, Vec3::ZERO, 1, None, 1.0, &cfg());
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn occluded_object_is_not_flagged() {
        // The ego's beams stop at a wall at 6 m in the +x direction
        // (and fly high above whatever is behind it): a remote car at
        // 12 m behind the wall generates no free-space evidence.
        let mut ego = PointCloud::new();
        for deg in -20i32..=20 {
            let az = f64::from(deg).to_radians();
            for zi in 0..8 {
                let z = -1.6 + 0.4 * f64::from(zi);
                ego.push(Point::new(
                    Vec3::new(6.0 * az.cos(), 6.0 * az.sin(), z),
                    0.3,
                ));
            }
        }
        let index = FreeSpaceIndex::build(&ego, &cfg());
        let hidden = car_cluster(12.0, 0.0, 60);
        let (verdict, _) = check_consistency(&index, &hidden, Vec3::ZERO, 1, None, 1.0, &cfg());
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn replayed_stamp_is_flagged_and_history_is_kept() {
        let index = FreeSpaceIndex::build(&ground_scan(), &cfg());
        let empty = PointCloud::new();
        let prev = SenderHistory {
            last_stamp: 7,
            last_centroid: Vec3::new(100.0, 0.0, 0.0),
        };
        for stamp in [7, 3] {
            let (verdict, history) = check_consistency(
                &index,
                &empty,
                Vec3::new(101.0, 0.0, 0.0),
                stamp,
                Some(&prev),
                1.0,
                &cfg(),
            );
            assert_eq!(verdict, ConsistencyVerdict::ReplayedStamp { stamp });
            assert_eq!(history, prev, "replay must not advance history");
        }
    }

    #[test]
    fn teleport_beyond_speed_envelope_is_flagged() {
        let index = FreeSpaceIndex::build(&ground_scan(), &cfg());
        let empty = PointCloud::new();
        let prev = SenderHistory {
            last_stamp: 4,
            last_centroid: Vec3::ZERO,
        };
        // One elapsed step at 40 m/s + 8 m slack = 48 m bound.
        let (verdict, _) = check_consistency(
            &index,
            &empty,
            Vec3::new(100.0, 0.0, 0.0),
            5,
            Some(&prev),
            1.0,
            &cfg(),
        );
        assert!(
            matches!(verdict, ConsistencyVerdict::Teleport { .. }),
            "{verdict:?}"
        );
        // The same jump over ten elapsed steps is plausible.
        let (verdict, _) = check_consistency(
            &index,
            &empty,
            Vec3::new(100.0, 0.0, 0.0),
            14,
            Some(&prev),
            1.0,
            &cfg(),
        );
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn honest_first_contact_is_consistent() {
        let index = FreeSpaceIndex::build(&ground_scan(), &cfg());
        let (verdict, history) = check_consistency(
            &index,
            &PointCloud::new(),
            Vec3::new(5.0, 0.0, 0.0),
            9,
            None,
            1.0,
            &cfg(),
        );
        assert!(verdict.is_consistent());
        assert_eq!(history.last_stamp, 9);
    }

    #[test]
    fn config_validation_catches_nonsense() {
        assert!(cfg().validate().is_ok());
        for bad in [
            ConsistencyConfig {
                azimuth_bins: 2,
                ..cfg()
            },
            ConsistencyConfig {
                free_space_margin_m: 0.0,
                ..cfg()
            },
            ConsistencyConfig {
                min_ghost_points: 0,
                ..cfg()
            },
            ConsistencyConfig {
                max_speed_m_per_s: f64::NAN,
                ..cfg()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn verdict_detail_helpers() {
        assert!(ConsistencyVerdict::Consistent.is_consistent());
        assert_eq!(
            ConsistencyVerdict::GhostSuspected { ghost_points: 33 }.ghost_points(),
            33
        );
        assert_eq!(
            ConsistencyVerdict::ReplayedStamp { stamp: 1 }.ghost_points(),
            0
        );
    }
}
