//! Property-based tests for the SPOD detector components.

use cooper_geometry::{Obb3, Vec3};
use cooper_lidar_sim::ObjectClass;
use cooper_pointcloud::VoxelCoord;
use cooper_spod::anchors::{decode_box, encode_box};
use cooper_spod::eval::{average_precision, match_detections, precision_recall_curve};
use cooper_spod::nn::{bce_with_logit, sigmoid, smooth_l1};
use cooper_spod::sparse_conv::{dense_reference_conv, SparseConv3};
use cooper_spod::{non_max_suppression, Detection, SparseTensor3};
use proptest::prelude::*;

fn obb() -> impl Strategy<Value = Obb3> {
    (
        -30.0..30.0f64,
        -30.0..30.0f64,
        -2.0..0.0f64,
        1.0..6.0f64,
        0.5..3.0f64,
        0.5..3.0f64,
        -3.0..3.0f64,
    )
        .prop_map(|(x, y, z, l, w, h, yaw)| Obb3::new(Vec3::new(x, y, z), Vec3::new(l, w, h), yaw))
}

fn detection() -> impl Strategy<Value = Detection> {
    (obb(), 0.0..1.0f32).prop_map(|(obb, score)| Detection {
        class: ObjectClass::Car,
        obb,
        score,
    })
}

fn sparse_tensor(channels: usize) -> impl Strategy<Value = SparseTensor3> {
    prop::collection::vec(
        (
            (-5..5i32, -5..5i32, -3..3i32),
            prop::collection::vec(-2.0..2.0f32, channels),
        ),
        0..20,
    )
    .prop_map(move |sites| {
        let mut t = SparseTensor3::new(channels);
        for ((x, y, z), f) in sites {
            t.set(VoxelCoord::new(x, y, z), f);
        }
        t
    })
}

proptest! {
    #[test]
    fn box_encode_decode_round_trip(anchor in obb(), gt in obb()) {
        let residual = encode_box(&anchor, &gt);
        let back = decode_box(&anchor, &residual);
        prop_assert!((back.center - gt.center).norm() < 1e-3,
            "center {} vs {}", back.center, gt.center);
        prop_assert!((back.size - gt.size).norm() < 1e-3);
        // Yaw matches modulo π (heading ambiguity).
        let dyaw = (back.yaw - gt.yaw).rem_euclid(std::f64::consts::PI);
        prop_assert!(dyaw < 1e-6 || (std::f64::consts::PI - dyaw) < 1e-6, "dyaw {dyaw}");
    }

    #[test]
    fn nms_output_is_conflict_free_subset(dets in prop::collection::vec(detection(), 0..30),
                                          thr in 0.05..0.9f64) {
        let input_len = dets.len();
        let kept = non_max_suppression(dets, thr);
        prop_assert!(kept.len() <= input_len);
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                prop_assert!(kept[i].obb.iou_bev(&kept[j].obb) <= thr + 1e-9);
            }
        }
        // Sorted by score descending.
        for w in kept.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded(a in -50.0..50.0f32, b in -50.0..50.0f32) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn bce_is_non_negative(logit in -30.0..30.0f32, target in prop::bool::ANY) {
        let t = if target { 1.0 } else { 0.0 };
        prop_assert!(bce_with_logit(logit, t) >= -1e-6);
    }

    #[test]
    fn smooth_l1_is_even_and_non_negative(e in -10.0..10.0f32) {
        prop_assert!(smooth_l1(e) >= 0.0);
        prop_assert!((smooth_l1(e) - smooth_l1(-e)).abs() < 1e-6);
    }

    #[test]
    fn sparse_conv_matches_dense_reference(t in sparse_tensor(3)) {
        let layer = SparseConv3::seeded(3, 4, 123);
        let sparse = layer.forward(&t);
        let dense = dense_reference_conv(&layer, &t);
        prop_assert_eq!(sparse.active_sites(), dense.active_sites());
        for (coord, f) in sparse.iter() {
            let g = dense.get(*coord).unwrap();
            for (a, b) in f.iter().zip(g) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matching_partitions_detections_and_ground_truth(
        dets in prop::collection::vec(detection(), 0..15),
        gts in prop::collection::vec(obb(), 0..10),
        iou in 0.1..0.9f64,
    ) {
        let m = match_detections(&dets, &gts, iou);
        prop_assert_eq!(m.true_positives.len() + m.false_positives.len(), dets.len());
        prop_assert_eq!(m.true_positives.len() + m.false_negatives.len(), gts.len());
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        // No ground truth claimed twice.
        let mut seen = std::collections::HashSet::new();
        for (_, gt_idx) in &m.true_positives {
            prop_assert!(seen.insert(*gt_idx));
        }
    }

    #[test]
    fn average_precision_bounded(
        dets in prop::collection::vec(detection(), 0..15),
        gts in prop::collection::vec(obb(), 1..8),
    ) {
        let frames = vec![(dets, gts)];
        let ap = average_precision(&precision_recall_curve(&frames, 0.3));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ap), "AP {ap}");
    }
}

proptest! {
    #[test]
    fn persisted_weights_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        // Arbitrary bytes must produce an error, never a panic or an
        // unbounded allocation.
        let _ = cooper_spod::persist::detector_from_bytes(&bytes);
    }

    #[test]
    fn weight_decoder_rejects_truncations_of_valid_files(cut_fraction in 0.0..1.0f64) {
        use std::sync::OnceLock;
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        let bytes = BYTES.get_or_init(|| {
            let detector = cooper_spod::train::train(
                cooper_spod::SpodConfig::default(),
                &cooper_spod::train::TrainingConfig {
                    scenes: 2,
                    epochs: 1,
                    ..cooper_spod::train::TrainingConfig::fast()
                },
            );
            detector.to_bytes().to_vec()
        });
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(cooper_spod::persist::detector_from_bytes(&bytes[..cut]).is_err());
    }
}
