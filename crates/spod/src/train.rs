//! In-repo SGD training of the SPOD detection heads.
//!
//! The paper trains SPOD end-to-end on KITTI; this reproduction fits the
//! RPN heads (objectness + box regression) on labelled synthetic scenes
//! from [`cooper_lidar_sim::dataset`]. See the crate-level substitution
//! note.

use cooper_lidar_sim::dataset::{generate_cooperative_scene, generate_scene, SceneConfig};
use cooper_lidar_sim::{BeamModel, ObjectClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::anchors::{assign_label, AnchorConfig, AnchorLabel};
use crate::detector::{SpodConfig, SpodDetector};

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of generated training scenes.
    pub scenes: usize,
    /// Passes over the scene set.
    pub epochs: usize,
    /// Initial SGD learning rate (halved each epoch).
    pub learning_rate: f32,
    /// Approximate negatives trained per positive (hard balancing).
    pub negative_ratio: f64,
    /// Seed for scene generation and negative sampling.
    pub seed: u64,
    /// Scene composition.
    pub scene_config: SceneConfig,
    /// Beam models cycled across scenes — mixing densities is what makes
    /// SPOD work "not only on high density data, but also … much sparser
    /// point clouds".
    pub beam_models: Vec<BeamModel>,
    /// Every n-th scene is a fused two-vehicle cloud (0 disables), so
    /// the heads also see the density distribution of cooperative input.
    pub cooperative_every: usize,
    /// Number of held-out validation scenes evaluated after each epoch
    /// (0 disables validation).
    pub validation_scenes: usize,
}

impl TrainingConfig {
    /// A quick configuration for tests and examples (~seconds).
    pub fn fast() -> Self {
        TrainingConfig {
            scenes: 12,
            epochs: 2,
            learning_rate: 0.08,
            negative_ratio: 3.0,
            seed: 42,
            scene_config: SceneConfig::default(),
            beam_models: vec![
                BeamModel::vlp16(),
                BeamModel::hdl64().with_azimuth_steps(900),
            ],
            cooperative_every: 3,
            validation_scenes: 0,
        }
    }

    /// The standard configuration used by the experiment harness.
    pub fn standard() -> Self {
        TrainingConfig {
            scenes: 120,
            epochs: 4,
            negative_ratio: 6.0,
            cooperative_every: 4,
            ..TrainingConfig::fast()
        }
    }

    /// Validates hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenes == 0 {
            return Err("need at least one training scene".into());
        }
        if self.epochs == 0 {
            return Err("need at least one epoch".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning rate must be positive".into());
        }
        if self.beam_models.is_empty() {
            return Err("need at least one beam model".into());
        }
        self.scene_config.validate()
    }
}

/// Validation metrics measured after one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochValidation {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Car precision on the held-out scenes at the default threshold.
    pub precision: f64,
    /// Car recall on the held-out scenes (visible cars only).
    pub recall: f64,
}

/// Summary statistics of one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Positive anchor updates applied.
    pub positives: u64,
    /// Negative anchor updates applied.
    pub negatives: u64,
    /// Ground-truth boxes that had no active anchor at all (fully
    /// occluded objects — undetectable from this viewpoint).
    pub unreachable_ground_truth: u64,
    /// Per-epoch held-out validation (empty when
    /// [`TrainingConfig::validation_scenes`] is 0).
    pub validation: Vec<EpochValidation>,
}

/// Evaluates car precision/recall on held-out scenes.
fn validate_detector(
    detector: &SpodDetector,
    training: &TrainingConfig,
    epoch: usize,
) -> EpochValidation {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for i in 0..training.validation_scenes {
        let beams = &training.beam_models[i % training.beam_models.len()];
        // Offset the seed far from the training range.
        let scene = generate_scene(
            training.seed ^ 0x7a11_da7e ^ (i as u64) << 32,
            &training.scene_config,
            beams,
        );
        let gts: Vec<cooper_geometry::Obb3> = scene
            .labels
            .iter()
            .filter(|l| l.class == ObjectClass::Car && scene.cloud.count_in_box(&l.obb) >= 10)
            .map(|l| l.obb)
            .collect();
        let dets = detector.detect_class(
            &scene.cloud,
            ObjectClass::Car,
            detector.config().score_threshold,
        );
        let mut claimed = vec![false; gts.len()];
        for d in &dets {
            let mut best: Option<(f64, usize)> = None;
            for (gi, g) in gts.iter().enumerate() {
                if claimed[gi] {
                    continue;
                }
                let dist = g.center_distance_bev(&d.obb);
                if dist <= 2.5 && best.is_none_or(|(bd, _)| dist < bd) {
                    best = Some((dist, gi));
                }
            }
            match best {
                Some((_, gi)) => {
                    claimed[gi] = true;
                    tp += 1;
                }
                None => fp += 1,
            }
        }
        fn_ += claimed.iter().filter(|c| !**c).count();
    }
    EpochValidation {
        epoch,
        precision: if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
    }
}

/// Trains a detector from scratch.
///
/// # Panics
///
/// Panics when `training` fails [`TrainingConfig::validate`].
pub fn train(config: SpodConfig, training: &TrainingConfig) -> SpodDetector {
    train_with_stats(config, training).0
}

/// Trains and also returns the run statistics.
///
/// # Panics
///
/// Panics when `training` fails [`TrainingConfig::validate`].
pub fn train_with_stats(
    config: SpodConfig,
    training: &TrainingConfig,
) -> (SpodDetector, TrainingStats) {
    if let Err(msg) = training.validate() {
        panic!("invalid training config: {msg}");
    }
    let mut detector = SpodDetector::new(config);
    let mut stats = TrainingStats::default();
    let mut rng = StdRng::seed_from_u64(training.seed);

    // Pre-extract features once per scene (the trunk is fixed).
    struct PreparedScene {
        features: Vec<((i32, i32), Vec<f32>)>,
        labels: Vec<(ObjectClass, cooper_geometry::Obb3)>,
    }
    let prepared: Vec<PreparedScene> = (0..training.scenes)
        .map(|i| {
            let beams = &training.beam_models[i % training.beam_models.len()];
            let seed = training.seed + i as u64;
            let cooperative = training.cooperative_every > 0
                && i % training.cooperative_every == training.cooperative_every - 1;
            let scene = if cooperative {
                generate_cooperative_scene(seed, &training.scene_config, beams)
            } else {
                generate_scene(seed, &training.scene_config, beams)
            };
            let bev = detector.featurize(&scene.cloud);
            let mut features: Vec<((i32, i32), Vec<f32>)> = bev
                .iter()
                .map(|(&cell, _)| {
                    (
                        cell,
                        bev.window_features(cell.0, cell.1, detector.config().window_radius),
                    )
                })
                .collect();
            // HashMap order is nondeterministic; fix it so identical
            // seeds always produce identical SGD update order.
            features.sort_by_key(|(cell, _)| *cell);
            let labels = scene.labels.iter().map(|l| (l.class, l.obb)).collect();
            PreparedScene { features, labels }
        })
        .collect();

    let grid = detector.config().voxel_grid;
    let n_yaws = AnchorConfig::YAWS.len();
    let mut learning_rate = training.learning_rate;

    for epoch in 0..training.epochs {
        for scene in &prepared {
            for head_idx in 0..detector.heads().len() {
                let head_config = *detector.heads()[head_idx].config();
                let class_gt: Vec<cooper_geometry::Obb3> = scene
                    .labels
                    .iter()
                    .filter(|(c, _)| *c == head_config.class)
                    .map(|(_, b)| *b)
                    .collect();

                // Pass 1: label every (cell, yaw) anchor.
                let mut labelled: Vec<(usize, usize, AnchorLabel)> = Vec::new();
                let mut positives = 0usize;
                let mut best_per_gt: Vec<(f64, Option<usize>)> = vec![(0.0, None); class_gt.len()];
                for (f_idx, (cell, _)) in scene.features.iter().enumerate() {
                    for yaw_idx in 0..n_yaws {
                        let anchor = head_config.anchor_at(&grid, *cell, yaw_idx);
                        let label = assign_label(&anchor, &class_gt, &head_config);
                        if matches!(label, AnchorLabel::Positive { .. }) {
                            positives += 1;
                        }
                        let entry_idx = labelled.len();
                        for (gt_idx, gt) in class_gt.iter().enumerate() {
                            if anchor.center_distance_bev(gt) > 6.0 {
                                continue;
                            }
                            let iou = anchor.iou_bev(gt);
                            if iou > best_per_gt[gt_idx].0 {
                                best_per_gt[gt_idx] = (iou, Some(entry_idx));
                            }
                        }
                        labelled.push((f_idx, yaw_idx, label));
                    }
                }
                // Force-match: every ground truth with any overlapping
                // anchor gets its best anchor as a positive, even below
                // the IoU threshold (SECOND's lowest-anchor rule). A
                // ground truth with no overlap at all is unreachable —
                // fully occluded from this viewpoint.
                for (gt_idx, &(iou, entry)) in best_per_gt.iter().enumerate() {
                    match entry {
                        Some(entry_idx) if iou > 0.12 => {
                            if !matches!(labelled[entry_idx].2, AnchorLabel::Positive { .. }) {
                                labelled[entry_idx].2 = AnchorLabel::Positive { gt_index: gt_idx };
                                positives += 1;
                            }
                        }
                        _ => stats.unreachable_ground_truth += 1,
                    }
                }

                // Pass 2: decide which negatives to train. Epoch 0 uses
                // balanced random sampling; later epochs use online hard
                // example mining (train the negatives the current head
                // scores highest — exactly the future false positives).
                let negative_budget =
                    ((positives.max(4) as f64) * training.negative_ratio).round() as usize;
                let negative_entries: Vec<usize> = labelled
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, l))| matches!(l, AnchorLabel::Negative))
                    .map(|(i, _)| i)
                    .collect();
                let selected_negatives: Vec<usize> = if epoch == 0 {
                    let keep_probability = if negative_entries.is_empty() {
                        0.0
                    } else {
                        (negative_budget as f64 / negative_entries.len() as f64).min(1.0)
                    };
                    negative_entries
                        .into_iter()
                        .filter(|_| rng.gen::<f64>() < keep_probability)
                        .collect()
                } else {
                    let mut scored: Vec<(f32, usize)> = negative_entries
                        .into_iter()
                        .map(|i| {
                            let (f_idx, yaw_idx, _) = labelled[i];
                            let logit = detector.heads()[head_idx]
                                .objectness_logit(&scene.features[f_idx].1, yaw_idx);
                            (logit, i)
                        })
                        .collect();
                    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                    scored
                        .into_iter()
                        .take(negative_budget)
                        .map(|(_, i)| i)
                        .collect()
                };
                for &i in &selected_negatives {
                    let (f_idx, yaw_idx, _) = labelled[i];
                    detector.heads_mut()[head_idx].train_negative(
                        &scene.features[f_idx].1,
                        yaw_idx,
                        learning_rate,
                    );
                    stats.negatives += 1;
                }
                for (f_idx, yaw_idx, label) in labelled {
                    let features = &scene.features[f_idx].1;
                    if let AnchorLabel::Positive { gt_index } = label {
                        let cell = scene.features[f_idx].0;
                        let anchor = head_config.anchor_at(&grid, cell, yaw_idx);
                        // Positives are scarce relative to negatives;
                        // apply each update twice (≈2× positive loss
                        // weight, as SECOND's focal weighting does).
                        for _ in 0..2 {
                            detector.heads_mut()[head_idx].train_positive(
                                features,
                                yaw_idx,
                                &anchor,
                                &class_gt[gt_index],
                                learning_rate,
                            );
                        }
                        stats.positives += 1;
                    }
                }
            }
        }
        if training.validation_scenes > 0 {
            let v = validate_detector(&detector, training, epoch);
            stats.validation.push(v);
        }
        learning_rate *= 0.5;
    }
    (detector, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_training_learns_to_detect() {
        let (detector, stats) = train_with_stats(SpodConfig::default(), &TrainingConfig::fast());
        assert!(stats.positives > 0, "no positive anchors seen");
        assert!(stats.negatives > 0, "no negative anchors seen");

        // Evaluate on a held-out scene.
        let scene = generate_scene(9_999, &SceneConfig::default(), &BeamModel::vlp16());
        let detections = detector.detect_class(&scene.cloud, ObjectClass::Car, 0.5);
        // At least one visible car must be detected with IoU > 0.3.
        let visible_cars: Vec<_> = scene
            .labels
            .iter()
            .filter(|l| l.class == ObjectClass::Car && scene.cloud.count_in_box(&l.obb) >= 20)
            .collect();
        if !visible_cars.is_empty() {
            let hit = visible_cars
                .iter()
                .any(|gt| detections.iter().any(|d| d.obb.iou_bev(&gt.obb) > 0.3));
            assert!(
                hit,
                "no visible car detected ({} dets, {} visible cars)",
                detections.len(),
                visible_cars.len()
            );
        }
        // And empty space must not be full of detections.
        let empty = cooper_pointcloud::PointCloud::new();
        assert!(detector.detect(&empty).is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = TrainingConfig {
            scenes: 4,
            epochs: 1,
            ..TrainingConfig::fast()
        };
        let a = train(SpodConfig::default(), &cfg);
        let b = train(SpodConfig::default(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid training config")]
    fn zero_scenes_panics() {
        let cfg = TrainingConfig {
            scenes: 0,
            ..TrainingConfig::fast()
        };
        let _ = train(SpodConfig::default(), &cfg);
    }

    #[test]
    fn validation_tracks_epochs() {
        let cfg = TrainingConfig {
            scenes: 6,
            epochs: 2,
            validation_scenes: 3,
            ..TrainingConfig::fast()
        };
        let (_, stats) = train_with_stats(SpodConfig::default(), &cfg);
        assert_eq!(stats.validation.len(), 2);
        for (i, v) in stats.validation.iter().enumerate() {
            assert_eq!(v.epoch, i);
            assert!((0.0..=1.0).contains(&v.precision));
            assert!((0.0..=1.0).contains(&v.recall));
        }
    }

    #[test]
    fn validate_messages() {
        let mut cfg = TrainingConfig::fast();
        cfg.epochs = 0;
        assert!(cfg.validate().unwrap_err().contains("epoch"));
        let mut cfg2 = TrainingConfig::fast();
        cfg2.learning_rate = 0.0;
        assert!(cfg2.validate().unwrap_err().contains("learning rate"));
        let mut cfg3 = TrainingConfig::fast();
        cfg3.beam_models.clear();
        assert!(cfg3.validate().unwrap_err().contains("beam"));
    }
}
