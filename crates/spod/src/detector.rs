//! The assembled SPOD detector pipeline.

use cooper_exec::Executor;
use cooper_geometry::{Aabb3, Obb3, Vec3};
use cooper_lidar_sim::ObjectClass;
use cooper_pointcloud::{IncrementalVoxelizer, PointCloud, VoxelGrid, VoxelGridConfig};
use cooper_telemetry::names as telemetry_names;
use serde::{Deserialize, Serialize};

use crate::anchors::AnchorConfig;
use crate::bev::BevMap;
use crate::head::DetectionHead;
use crate::preprocess::{densify, PreprocessConfig};
use crate::sparse_conv::{ConvRulebook, SparseConv3};
use crate::train::{train, TrainingConfig};
use crate::vfe::VoxelFeatureEncoder;

/// One detected object: class, sensor-frame box and confidence score.
///
/// The score is the sigmoid objectness of the winning anchor — the
/// "detecting score" reported in the paper's Figures 3 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected class.
    pub class: ObjectClass,
    /// The decoded oriented box in the input cloud's frame.
    pub obb: Obb3,
    /// Confidence in `[0, 1]`.
    pub score: f32,
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} (score {:.2})",
            self.class, self.obb.center, self.score
        )
    }
}

/// Static configuration of the SPOD pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpodConfig {
    /// Voxelization extent and resolution. 360° coverage: cooperative
    /// clouds contain returns all around the receiver.
    pub voxel_grid: VoxelGridConfig,
    /// Feature channels flowing through the middle layers.
    pub channels: usize,
    /// Preprocessing (spherical densification) applied to input clouds.
    pub preprocess: PreprocessConfig,
    /// Detections below this score are discarded.
    pub score_threshold: f32,
    /// BEV IoU threshold for non-maximum suppression.
    pub nms_iou: f64,
    /// Distance-NMS factor: same-class detections closer than this
    /// fraction of the smaller box length are duplicates (0 disables).
    pub nms_distance_factor: f64,
    /// RPN receptive-field radius in BEV cells (window side is
    /// `2·radius + 1`). Must cover the longest anchor.
    pub window_radius: i32,
    /// Sensor mount height (anchors sit on the ground this far below
    /// the sensor origin).
    pub mount_height: f64,
    /// When set, returns within this margin (metres) of the ground plane
    /// are excluded from voxelization — standard LiDAR ground
    /// segmentation. Road returns dominate raw scans and carry no object
    /// evidence; removing them restores the foreground/background
    /// balance the RPN heads train against. `None` disables (ablation).
    pub ground_removal_margin: Option<f64>,
    /// Seed for the deterministic feature-extractor weights.
    pub seed: u64,
}

impl Default for SpodConfig {
    fn default() -> Self {
        SpodConfig {
            voxel_grid: VoxelGridConfig {
                extent: Aabb3::new(Vec3::new(-80.0, -80.0, -3.0), Vec3::new(80.0, 80.0, 3.0)),
                voxel_size: Vec3::new(0.5, 0.5, 0.5),
                max_points_per_voxel: 35,
            },
            channels: 8,
            preprocess: PreprocessConfig::sparse_default(),
            score_threshold: 0.5,
            nms_iou: 0.2,
            nms_distance_factor: 0.5,
            window_radius: 3,
            mount_height: 1.8,
            ground_removal_margin: Some(0.3),
            seed: 0xC00_9E6,
        }
    }
}

/// Points per voxelization chunk. Fixed (never derived from thread
/// count) so chunk boundaries — and with them the grouping of float
/// accumulations — are identical however many workers voxelize. Sized
/// so a typical densified scan splits into enough chunks to occupy a
/// small work pool without drowning in merge overhead.
const VOXELIZE_CHUNK_POINTS: usize = 16_384;

/// BEV cells per parallel RPN chunk. Fixed boundaries keep the
/// detection emission order — and thus the NMS input and its outcome —
/// identical at any thread count.
const RPN_CHUNK_CELLS: usize = 512;

/// Options for [`SpodDetector::detect_with`] — the single detection
/// entry point the old `detect`/`detect_with_threshold`/`detect_class`
/// trio collapsed into.
///
/// # Examples
///
/// ```
/// use cooper_exec::Executor;
/// use cooper_lidar_sim::ObjectClass;
/// use cooper_spod::DetectOptions;
///
/// let options = DetectOptions::default()
///     .with_threshold(0.4)
///     .with_class(ObjectClass::Car)
///     .with_executor(Executor::sequential());
/// ```
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// Score threshold; `None` uses [`SpodConfig::score_threshold`].
    pub threshold: Option<f32>,
    /// Restrict detection to one class; `None` runs every head.
    pub class: Option<ObjectClass>,
    /// Executor driving the chunk-parallel stages (voxelize, VFE,
    /// rulebook, sparse conv, RPN). Output is bit-identical at any
    /// thread budget; callers already parallel at a coarser grain (the
    /// fleet fans out per receiver) should pass
    /// [`Executor::sequential`] to avoid nested thread spawn.
    pub executor: Executor,
}

impl Default for DetectOptions {
    fn default() -> Self {
        DetectOptions {
            threshold: None,
            class: None,
            executor: Executor::new(None),
        }
    }
}

impl DetectOptions {
    /// Sets an explicit score threshold (PR-curve sweeps).
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Restricts detection to one class (cheaper when only cars matter,
    /// as in the Cooper evaluation).
    pub fn with_class(mut self, class: ObjectClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Sets the executor for the chunk-parallel stages.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }
}

/// Reusable scratch arenas for [`SpodDetector::detect_with`].
///
/// The hot path's largest recurring allocation is the submanifold
/// convolution rulebook (27 neighbour indices per active site, shared
/// by both conv layers). Keeping one `DetectScratch` per vehicle (or
/// per worker) across steps lets those buffers keep their capacity
/// instead of being reallocated every frame.
///
/// Contents are buffers, never carried state: every call fully
/// overwrites what it later reads, so reusing a scratch cannot change
/// any result bit.
#[derive(Debug, Default)]
pub struct DetectScratch {
    /// Conv neighbour table, rebuilt per featurize, reused by conv1 and
    /// conv2 (submanifold convolutions keep the active set fixed).
    rulebook: ConvRulebook,
}

impl DetectScratch {
    /// An empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        DetectScratch::default()
    }
}

/// Carried state slice of [`FeaturizeCache`]: everything derived from
/// the last input cloud.
#[derive(Debug)]
struct CachedPerception {
    /// The raw input cloud the rest of this state was derived from.
    input: PointCloud,
    /// Scoring options the cached `detections` were produced under:
    /// `(threshold bits, class restriction)`.
    fingerprint: (u32, Option<ObjectClass>),
    /// Embedded VFE tensor aligned with the voxelizer's current grid.
    embedded: crate::tensor::SparseTensor3,
    /// BEV map collapsed from the current grid's deep features.
    bev: BevMap,
    /// Detections for `input` under `fingerprint`.
    detections: Vec<Detection>,
}

/// Persistent per-stream state for [`SpodDetector::detect_incremental`].
///
/// Unlike [`DetectScratch`] — whose contents are overwritten before
/// every read — this cache *carries* results across calls: the
/// incremental voxelizer's chunk partials and grid, the embedded VFE
/// tensor, the collapsed BEV map, and the last detections. Keep exactly
/// one cache per detection stream (e.g. per receiver × input kind);
/// feeding one cache clouds from different streams destroys all reuse
/// but never changes any result bit.
#[derive(Debug, Default)]
pub struct FeaturizeCache {
    voxelizer: Option<IncrementalVoxelizer>,
    state: Option<CachedPerception>,
}

impl FeaturizeCache {
    /// An empty cache; the first detection through it runs from scratch.
    pub fn new() -> Self {
        FeaturizeCache::default()
    }

    /// Drops all carried state; the next detection runs from scratch.
    pub fn clear(&mut self) {
        self.voxelizer = None;
        self.state = None;
    }

    /// `true` when the cache holds a previous step's results.
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }
}

/// Bitwise equality of two clouds ([`cooper_pointcloud::Point::bits_eq`]
/// pointwise).
fn clouds_bits_eq(a: &PointCloud, b: &PointCloud) -> bool {
    a.len() == b.len()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(p, q)| p.bits_eq(q))
}

/// The SPOD 3-D object detector (Figure 1 of the paper): preprocessing →
/// voxel feature extractor → sparse convolutional middle layers → BEV
/// collapse → SSD-style RPN heads → NMS.
///
/// One instance handles any input density — "not only … high density
/// data, but also … much sparser point clouds" — which is what lets the
/// same network run on single-shot and fused cooperative clouds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpodDetector {
    config: SpodConfig,
    vfe: VoxelFeatureEncoder,
    conv1: SparseConv3,
    conv2: SparseConv3,
    heads: Vec<DetectionHead>,
}

impl SpodDetector {
    /// Creates a detector with deterministic feature-extractor weights
    /// and untrained (zero) heads. Use [`SpodDetector::train_default`] or
    /// [`crate::train::train`] to fit the heads.
    pub fn new(config: SpodConfig) -> Self {
        let vfe = VoxelFeatureEncoder::seeded(config.channels, config.seed);
        let conv1 = SparseConv3::seeded(config.channels, config.channels, config.seed ^ 1);
        let conv2 = SparseConv3::seeded(config.channels, config.channels, config.seed ^ 2);
        let side = (2 * config.window_radius + 1) as usize;
        let feature_dim = (config.channels + crate::bev::Z_STRUCTURE_CHANNELS) * side * side;
        let heads = ObjectClass::TARGETS
            .iter()
            .map(|&class| {
                DetectionHead::new(
                    feature_dim,
                    AnchorConfig::for_class(class, config.mount_height),
                )
            })
            .collect();
        SpodDetector {
            config,
            vfe,
            conv1,
            conv2,
            heads,
        }
    }

    /// Trains a detector with the default pipeline configuration.
    pub fn train_default(training: &TrainingConfig) -> Self {
        train(SpodConfig::default(), training)
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SpodConfig {
        &self.config
    }

    /// Mutable access to the per-class heads, for the trainer.
    pub(crate) fn heads_mut(&mut self) -> &mut [DetectionHead] {
        &mut self.heads
    }

    /// The per-class heads.
    pub fn heads(&self) -> &[DetectionHead] {
        &self.heads
    }

    /// The VFE embedding layer (weight-file persistence).
    pub fn vfe_layer(&self) -> &crate::nn::Linear {
        self.vfe.layer()
    }

    /// The first sparse convolution (weight-file persistence).
    pub fn conv1_layer(&self) -> &SparseConv3 {
        &self.conv1
    }

    /// The second sparse convolution (weight-file persistence).
    pub fn conv2_layer(&self) -> &SparseConv3 {
        &self.conv2
    }

    /// Reconstructs a detector from loaded parts (weight-file loading).
    pub fn from_parts(
        config: SpodConfig,
        vfe: VoxelFeatureEncoder,
        conv1: SparseConv3,
        conv2: SparseConv3,
        heads: Vec<DetectionHead>,
    ) -> Self {
        SpodDetector {
            config,
            vfe,
            conv1,
            conv2,
            heads,
        }
    }

    /// Serializes the trained detector to a versioned binary weight
    /// blob. See [`crate::persist`].
    pub fn to_bytes(&self) -> bytes::Bytes {
        crate::persist::detector_to_bytes(self)
    }

    /// Loads a detector written by [`SpodDetector::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::persist::PersistError> {
        crate::persist::detector_from_bytes(bytes)
    }

    /// Runs the feature-extraction trunk: preprocessing, voxelization,
    /// VFE, two sparse convolutions and the BEV collapse.
    ///
    /// Exposed so the trainer and ablation benches can reuse the exact
    /// inference path (C-INTERMEDIATE). Thin shim over
    /// [`SpodDetector::featurize_with`] with default options and a
    /// throwaway scratch.
    pub fn featurize(&self, cloud: &PointCloud) -> BevMap {
        self.featurize_with(cloud, &DetectOptions::default(), &mut DetectScratch::new())
    }

    /// The feature-extraction trunk with explicit options and scratch:
    /// every stage past preprocessing is chunk-parallel over
    /// `options.executor`, and the conv rulebook arena lives in
    /// `scratch` (built once here, reused by both conv layers and kept
    /// allocated across calls).
    ///
    /// Chunk boundaries are fixed and partial results merge in chunk
    /// order, so the returned map is **bit-identical at any thread
    /// count** — and bit-identical to the sequential path.
    pub fn featurize_with(
        &self,
        cloud: &PointCloud,
        options: &DetectOptions,
        scratch: &mut DetectScratch,
    ) -> BevMap {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_FEATURIZE);
        let executor = &options.executor;
        let dense = self.preprocess(cloud);
        let grid = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VOXELIZE);
            // Chunked even when the executor is sequential: fixed chunk
            // boundaries make the float accumulators (and hence every
            // downstream feature) bit-identical at any thread count.
            let grid = VoxelGrid::from_cloud_chunked(
                &dense,
                self.config.voxel_grid,
                VOXELIZE_CHUNK_POINTS,
                executor,
            );
            cooper_telemetry::counter_add(
                telemetry_names::SPOD_VOXELS_OCCUPIED,
                grid.occupied_count() as u64,
            );
            grid
        };
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_MIDDLE);
        let embedded = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VFE);
            self.vfe.encode_with(&grid, executor)
        };
        self.finish_from_embedded(&embedded, executor, scratch)
    }

    /// Densify and ground removal — the stage shared verbatim by the
    /// from-scratch and incremental featurize paths.
    fn preprocess(&self, cloud: &PointCloud) -> PointCloud {
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_PREPROCESS);
        let mut dense = densify(cloud, &self.config.preprocess);
        if let Some(margin) = self.config.ground_removal_margin {
            let cutoff = -self.config.mount_height + margin;
            dense.retain(|p| p.position.z >= cutoff);
        }
        dense
    }

    /// Rulebook, both sparse convolutions, and the BEV collapse — shared
    /// verbatim by the from-scratch and incremental featurize paths.
    /// Callers open [`telemetry_names::SPAN_SPOD_MIDDLE`] around this.
    fn finish_from_embedded(
        &self,
        embedded: &crate::tensor::SparseTensor3,
        executor: &Executor,
        scratch: &mut DetectScratch,
    ) -> BevMap {
        {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_RULEBOOK);
            // Submanifold convolutions never change the active set, so
            // one neighbour table serves both conv layers.
            scratch.rulebook.rebuild(embedded.coord_slice(), executor);
        }
        let mid = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_CONV1);
            self.conv1
                .forward_with(embedded, &scratch.rulebook, executor)
        };
        let deep = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_CONV2);
            self.conv2.forward_with(&mid, &scratch.rulebook, executor)
        };
        let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_BEV);
        BevMap::collapse(&deep)
    }

    /// Re-encodes only the voxels that changed between `prev` and
    /// `grid`, copying cached embedded rows for voxels whose aggregate
    /// statistics are bitwise-unchanged ([`cooper_pointcloud::Voxel::stats_bits_eq`]).
    ///
    /// Each voxel's encoding is independent of its neighbours, so the
    /// result is bit-identical to a full [`VoxelFeatureEncoder::encode_with`].
    fn encode_incremental(
        &self,
        grid: &VoxelGrid,
        prev: &VoxelGrid,
        prev_embedded: &crate::tensor::SparseTensor3,
    ) -> crate::tensor::SparseTensor3 {
        let channels = self.vfe.channels();
        let coords = grid.coords();
        let voxels = grid.voxels();
        let prev_coords = prev.coords();
        let prev_voxels = prev.voxels();
        let prev_features = prev_embedded.feature_slice();
        let mut features = Vec::with_capacity(coords.len() * channels);
        let mut row = Vec::with_capacity(channels);
        let mut reused = 0u64;
        // Both coordinate lists are sorted: one merged walk pairs each
        // new voxel with its previous incarnation, if any.
        let mut j = 0usize;
        for (i, coord) in coords.iter().enumerate() {
            while j < prev_coords.len() && prev_coords[j] < *coord {
                j += 1;
            }
            if j < prev_coords.len()
                && prev_coords[j] == *coord
                && prev_voxels[j].stats_bits_eq(&voxels[i])
            {
                features.extend_from_slice(&prev_features[j * channels..(j + 1) * channels]);
                reused += 1;
            } else {
                self.vfe
                    .encode_voxel_into(grid, *coord, &voxels[i], &mut row);
                features.extend_from_slice(&row);
            }
        }
        cooper_telemetry::counter_add(telemetry_names::SPOD_INCREMENTAL_VOXELS_REUSED, reused);
        crate::tensor::SparseTensor3::from_sorted_parts(channels, coords.to_vec(), features)
    }

    /// [`SpodDetector::detect_with`] with change-proportional cost:
    /// carries perception state across calls in `cache` and recomputes
    /// only what the input changed.
    ///
    /// Reuse tiers, each **bit-identical** to the from-scratch path:
    ///
    /// 1. Input cloud bitwise-unchanged and same scoring options —
    ///    return the cached detections outright.
    /// 2. Reconstructed grid unchanged (e.g. only out-of-extent points
    ///    moved) — skip VFE, convolutions and BEV; re-score the cached
    ///    map.
    /// 3. Otherwise — reuse voxelization chunk partials inside the
    ///    bitwise-common prefix and cached VFE rows for unchanged
    ///    voxels, then rerun the convolutions and heads.
    ///
    /// Prefix-stable inputs (v2 delta reconstructions, fixed-order
    /// fused segments) make tiers 1–3 cheap; adversarial inputs degrade
    /// to from-scratch cost plus one bitwise compare.
    pub fn detect_incremental(
        &self,
        cloud: &PointCloud,
        options: &DetectOptions,
        scratch: &mut DetectScratch,
        cache: &mut FeaturizeCache,
    ) -> Vec<Detection> {
        let threshold = options.threshold.unwrap_or(self.config.score_threshold);
        let fingerprint = (threshold.to_bits(), options.class);
        if let Some(state) = &cache.state {
            if state.fingerprint == fingerprint && clouds_bits_eq(&state.input, cloud) {
                cooper_telemetry::counter_add(telemetry_names::SPOD_INCREMENTAL_HITS, 1);
                return state.detections.clone();
            }
        }
        let executor = &options.executor;
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_FEATURIZE);
        let dense = self.preprocess(cloud);
        let voxelizer = cache.voxelizer.get_or_insert_with(|| {
            IncrementalVoxelizer::new(self.config.voxel_grid, VOXELIZE_CHUNK_POINTS)
        });
        let update = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VOXELIZE);
            let update = voxelizer.update(&dense, executor);
            cooper_telemetry::counter_add(
                telemetry_names::SPOD_VOXELS_OCCUPIED,
                voxelizer.grid().occupied_count() as u64,
            );
            cooper_telemetry::counter_add(
                telemetry_names::SPOD_INCREMENTAL_CHUNKS_REUSED,
                update.chunks_reused as u64,
            );
            update
        };
        let grid = voxelizer.grid();
        match (&mut cache.state, update.previous) {
            (Some(state), None) => {
                // Grid unchanged: features and BEV carry over; only the
                // scoring options can have changed.
                let detections = self.detect_bev(&state.bev, options);
                state.input = cloud.clone();
                state.fingerprint = fingerprint;
                state.detections = detections.clone();
                detections
            }
            (Some(state), Some(prev_grid)) => {
                let (embedded, bev) = {
                    let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_MIDDLE);
                    let embedded = {
                        let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VFE);
                        self.encode_incremental(grid, &prev_grid, &state.embedded)
                    };
                    let bev = self.finish_from_embedded(&embedded, executor, scratch);
                    (embedded, bev)
                };
                let detections = self.detect_bev(&bev, options);
                state.input = cloud.clone();
                state.fingerprint = fingerprint;
                state.embedded = embedded;
                state.bev = bev;
                state.detections = detections.clone();
                detections
            }
            (state @ None, _) => {
                // Cold cache: full VFE, then the shared back half.
                let (embedded, bev) = {
                    let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_MIDDLE);
                    let embedded = {
                        let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VFE);
                        self.vfe.encode_with(grid, executor)
                    };
                    let bev = self.finish_from_embedded(&embedded, executor, scratch);
                    (embedded, bev)
                };
                let detections = self.detect_bev(&bev, options);
                *state = Some(CachedPerception {
                    input: cloud.clone(),
                    fingerprint,
                    embedded,
                    bev,
                    detections: detections.clone(),
                });
                detections
            }
        }
    }

    /// Detects objects in a sensor-frame cloud.
    ///
    /// Works identically on single-shot and fused cooperative clouds —
    /// the input is just points. Thin shim over
    /// [`SpodDetector::detect_with`] with default options.
    pub fn detect(&self, cloud: &PointCloud) -> Vec<Detection> {
        self.detect_with(cloud, &DetectOptions::default(), &mut DetectScratch::new())
    }

    /// Detects with an explicit score threshold (used by PR-curve
    /// evaluation, which sweeps thresholds). Thin shim over
    /// [`SpodDetector::detect_with`].
    pub fn detect_with_threshold(&self, cloud: &PointCloud, threshold: f32) -> Vec<Detection> {
        self.detect_with(
            cloud,
            &DetectOptions::default().with_threshold(threshold),
            &mut DetectScratch::new(),
        )
    }

    /// Detects only the given class (cheaper when only cars matter, as
    /// in the Cooper evaluation). Thin shim over
    /// [`SpodDetector::detect_with`].
    pub fn detect_class(
        &self,
        cloud: &PointCloud,
        class: ObjectClass,
        threshold: f32,
    ) -> Vec<Detection> {
        self.detect_with(
            cloud,
            &DetectOptions::default()
                .with_class(class)
                .with_threshold(threshold),
            &mut DetectScratch::new(),
        )
    }

    /// The single detection entry point: featurize, score every BEV
    /// cell's anchors with the RPN heads, decode boxes above the
    /// threshold, suppress duplicates.
    ///
    /// The RPN fans BEV cells out in fixed-size chunks over
    /// `options.executor`, each worker reusing one window buffer; chunk
    /// results concatenate in chunk order, so the NMS input — and with
    /// it every returned detection bit — is identical at any thread
    /// count.
    pub fn detect_with(
        &self,
        cloud: &PointCloud,
        options: &DetectOptions,
        scratch: &mut DetectScratch,
    ) -> Vec<Detection> {
        let bev = self.featurize_with(cloud, options, scratch);
        self.detect_bev(&bev, options)
    }

    /// The detector back half: scores a **pre-built BEV feature map**
    /// with the RPN heads and suppresses duplicates — the entry point
    /// for feature-level cooperative perception, where the map being
    /// scored is the fusion of several vehicles' featurized views
    /// ([`crate::fusion::fuse_bev`]) rather than the output of this
    /// detector's own trunk. [`SpodDetector::detect_with`] is exactly
    /// [`SpodDetector::featurize_with`] followed by this.
    ///
    /// Deterministic like the rest of the pipeline: fixed RPN chunk
    /// boundaries make the output bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics when the map's channel count does not match what the
    /// heads were trained against
    /// (`config.channels + Z_STRUCTURE_CHANNELS`).
    pub fn detect_bev(&self, bev: &BevMap, options: &DetectOptions) -> Vec<Detection> {
        assert_eq!(
            bev.channels(),
            self.config.channels + crate::bev::Z_STRUCTURE_CHANNELS,
            "BEV map channels must match the trained heads"
        );
        let threshold = options.threshold.unwrap_or(self.config.score_threshold);
        let heads: Vec<&DetectionHead> = match options.class {
            Some(class) => self
                .heads
                .iter()
                .filter(|h| h.config().class == class)
                .collect(),
            None => self.heads.iter().collect(),
        };
        let detections = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_RPN);
            let parts = options.executor.map_chunks_in(
                bev.cell_slice(),
                RPN_CHUNK_CELLS,
                Vec::new,
                |_, cells, window| {
                    let mut local = Vec::new();
                    for &(x, y) in cells {
                        bev.window_features_into(x, y, self.config.window_radius, window);
                        for head in &heads {
                            for yaw_idx in 0..AnchorConfig::YAWS.len() {
                                let score = head.score(window, yaw_idx);
                                if score < threshold {
                                    continue;
                                }
                                let anchor = head.config().anchor_at(
                                    &self.config.voxel_grid,
                                    (x, y),
                                    yaw_idx,
                                );
                                let residual = head.residual(window, yaw_idx);
                                local.push(Detection {
                                    class: head.config().class,
                                    obb: crate::anchors::decode_box(&anchor, &residual),
                                    score,
                                });
                            }
                        }
                    }
                    local
                },
            );
            let mut detections = Vec::new();
            for part in parts {
                detections.extend(part);
            }
            detections
        };
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_NMS);
        crate::nms::non_max_suppression_with_distance(
            detections,
            self.config.nms_iou,
            self.config.nms_distance_factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_pointcloud::Point;

    fn toy_cloud() -> PointCloud {
        // A car-sized blob of points 10 m ahead, 1.8 m below the sensor.
        let mut cloud = PointCloud::new();
        for i in 0..200 {
            let fx = (i % 20) as f64 * 0.2;
            let fy = ((i / 20) % 5) as f64 * 0.35;
            let fz = (i / 100) as f64 * 0.6;
            cloud.push(Point::new(Vec3::new(8.0 + fx, -0.9 + fy, -1.7 + fz), 0.45));
        }
        cloud
    }

    #[test]
    fn untrained_detector_runs_end_to_end() {
        let det = SpodDetector::new(SpodConfig::default());
        // Zero heads score exactly 0.5 everywhere; with the default 0.5
        // threshold everything passes but NMS bounds the output.
        let detections = det.detect_with_threshold(&toy_cloud(), 0.6);
        assert!(detections.is_empty(), "untrained head must not clear 0.6");
    }

    #[test]
    fn featurize_produces_active_cells() {
        let det = SpodDetector::new(SpodConfig::default());
        let bev = det.featurize(&toy_cloud());
        assert!(bev.active_cells() > 0);
        assert_eq!(
            bev.channels(),
            det.config().channels + crate::bev::Z_STRUCTURE_CHANNELS
        );
    }

    #[test]
    fn empty_cloud_yields_no_detections() {
        let det = SpodDetector::new(SpodConfig::default());
        assert!(det.detect(&PointCloud::new()).is_empty());
    }

    #[test]
    fn detector_is_deterministic() {
        let a = SpodDetector::new(SpodConfig::default());
        let b = SpodDetector::new(SpodConfig::default());
        assert_eq!(a, b);
        let cloud = toy_cloud();
        let fa = a.featurize(&cloud);
        let fb = b.featurize(&cloud);
        assert_eq!(fa, fb);
    }

    #[test]
    fn detect_class_filters() {
        let det = SpodDetector::new(SpodConfig::default());
        let dets = det.detect_class(&toy_cloud(), ObjectClass::Car, 0.4);
        assert!(dets.iter().all(|d| d.class == ObjectClass::Car));
    }

    #[test]
    fn detect_with_matches_shims() {
        let det = SpodDetector::new(SpodConfig::default());
        let cloud = toy_cloud();
        let mut scratch = DetectScratch::new();
        let via_options = det.detect_with(
            &cloud,
            &DetectOptions::default()
                .with_class(ObjectClass::Car)
                .with_threshold(0.4)
                .with_executor(Executor::sequential()),
            &mut scratch,
        );
        assert_eq!(via_options, det.detect_class(&cloud, ObjectClass::Car, 0.4));
        let all_classes = det.detect_with(
            &cloud,
            &DetectOptions::default()
                .with_threshold(0.4)
                .with_executor(Executor::sequential()),
            &mut scratch,
        );
        assert_eq!(all_classes, det.detect_with_threshold(&cloud, 0.4));
    }

    #[test]
    fn detect_with_is_thread_count_invariant_and_scratch_reusable() {
        let det = SpodDetector::new(SpodConfig::default());
        let cloud = toy_cloud();
        let mut scratch = DetectScratch::new();
        let baseline = det.detect_with(
            &cloud,
            &DetectOptions::default()
                .with_threshold(0.4)
                .with_executor(Executor::new(Some(1))),
            &mut scratch,
        );
        let baseline_bev = det.featurize_with(
            &cloud,
            &DetectOptions::default().with_executor(Executor::new(Some(1))),
            &mut scratch,
        );
        for threads in [2, 4] {
            let options = DetectOptions::default()
                .with_threshold(0.4)
                .with_executor(Executor::new(Some(threads)));
            // Same scratch reused across thread counts: results may not
            // depend on what a previous call left in the arenas.
            let dets = det.detect_with(&cloud, &options, &mut scratch);
            assert_eq!(baseline, dets, "detections diverged at {threads} threads");
            let bev = det.featurize_with(&cloud, &options, &mut scratch);
            assert_eq!(baseline_bev, bev, "features diverged at {threads} threads");
        }
    }

    #[test]
    fn detect_bev_matches_detect_with() {
        // detect_with must be exactly featurize + detect_bev, so a
        // pre-fused map routed through detect_bev scores identically.
        let det = SpodDetector::new(SpodConfig::default());
        let cloud = toy_cloud();
        let mut scratch = DetectScratch::new();
        let options = DetectOptions::default()
            .with_threshold(0.4)
            .with_executor(Executor::sequential());
        let bev = det.featurize_with(&cloud, &options, &mut scratch);
        assert_eq!(
            det.detect_bev(&bev, &options),
            det.detect_with(&cloud, &options, &mut scratch)
        );
    }

    #[test]
    #[should_panic(expected = "channels must match")]
    fn detect_bev_rejects_channel_mismatch() {
        let det = SpodDetector::new(SpodConfig::default());
        let wrong = BevMap::from_parts(2, vec![(0, 0)], vec![1.0, 2.0]);
        let _ = det.detect_bev(&wrong, &DetectOptions::default());
    }

    #[test]
    fn featurized_map_survives_the_wire() {
        // The feature tier's sender path: featurize → feature frame →
        // v3 encode → decode → map. Quantization is the only loss.
        let det = SpodDetector::new(SpodConfig::default());
        let bev = det.featurize(&toy_cloud());
        let frame = bev.to_feature_frame();
        let bytes = cooper_pointcloud::encode_features(&frame).unwrap();
        let decoded =
            BevMap::from_feature_frame(&cooper_pointcloud::decode_features(&bytes).unwrap());
        assert_eq!(decoded.active_cells(), bev.active_cells());
        assert_eq!(decoded.channels(), bev.channels());
        let bound = frame.quantization_scale() / 254.0 + 1e-6;
        for (i, (cell, row)) in bev.iter().enumerate() {
            assert_eq!(cell, &decoded.cell_slice()[i]);
            for (a, b) in row.iter().zip(decoded.feature_at(i)) {
                assert!((a - b).abs() <= bound);
            }
        }
    }

    fn shifted_cloud(offset: f64) -> PointCloud {
        // The toy blob plus a second blob that moves with `offset` —
        // the static part stays a bitwise-stable prefix.
        let mut cloud = toy_cloud();
        for i in 0..60 {
            let fx = (i % 10) as f64 * 0.3;
            let fy = (i / 10) as f64 * 0.3;
            cloud.push(Point::new(
                Vec3::new(-12.0 + offset + fx, 4.0 + fy, -1.5),
                0.6,
            ));
        }
        cloud
    }

    #[test]
    fn detect_incremental_matches_detect_with_over_a_sequence() {
        let det = SpodDetector::new(SpodConfig::default());
        let options = DetectOptions::default()
            .with_threshold(0.4)
            .with_executor(Executor::sequential());
        let mut scratch = DetectScratch::new();
        let mut cache = FeaturizeCache::new();
        // A changing sequence with a repeated (memoizable) step in the
        // middle; every step must be bit-identical to from-scratch.
        for offset in [0.0, 0.0, 0.4, 0.4, 1.2, 0.0] {
            let cloud = shifted_cloud(offset);
            let incremental = det.detect_incremental(&cloud, &options, &mut scratch, &mut cache);
            let scratch_run = det.detect_with(&cloud, &options, &mut DetectScratch::new());
            assert_eq!(incremental, scratch_run, "diverged at offset {offset}");
        }
        assert!(cache.is_warm());
    }

    #[test]
    fn detect_incremental_is_thread_count_invariant() {
        let det = SpodDetector::new(SpodConfig::default());
        let mut caches: Vec<FeaturizeCache> = (0..3).map(|_| FeaturizeCache::new()).collect();
        let mut scratch = DetectScratch::new();
        for offset in [0.0, 0.5, 0.5, 2.0] {
            let cloud = shifted_cloud(offset);
            let mut runs = Vec::new();
            for (threads, cache) in [1, 2, 4].iter().zip(caches.iter_mut()) {
                let options = DetectOptions::default()
                    .with_threshold(0.4)
                    .with_executor(Executor::new(Some(*threads)));
                runs.push(det.detect_incremental(&cloud, &options, &mut scratch, cache));
            }
            assert_eq!(runs[0], runs[1]);
            assert_eq!(runs[0], runs[2]);
        }
    }

    #[test]
    fn detect_incremental_handles_option_changes() {
        let det = SpodDetector::new(SpodConfig::default());
        let mut scratch = DetectScratch::new();
        let mut cache = FeaturizeCache::new();
        let cloud = shifted_cloud(0.7);
        let base = DetectOptions::default()
            .with_threshold(0.4)
            .with_executor(Executor::sequential());
        let _ = det.detect_incremental(&cloud, &base, &mut scratch, &mut cache);
        // Same cloud, different threshold/class: tier-1 must not serve
        // the stale detections.
        for options in [
            DetectOptions::default()
                .with_threshold(0.45)
                .with_executor(Executor::sequential()),
            DetectOptions::default()
                .with_threshold(0.4)
                .with_class(ObjectClass::Car)
                .with_executor(Executor::sequential()),
        ] {
            let incremental = det.detect_incremental(&cloud, &options, &mut scratch, &mut cache);
            let scratch_run = det.detect_with(&cloud, &options, &mut DetectScratch::new());
            assert_eq!(incremental, scratch_run);
        }
    }

    #[test]
    fn featurize_cache_clear_resets() {
        let det = SpodDetector::new(SpodConfig::default());
        let mut scratch = DetectScratch::new();
        let mut cache = FeaturizeCache::new();
        let cloud = toy_cloud();
        let options = DetectOptions::default()
            .with_threshold(0.4)
            .with_executor(Executor::sequential());
        let warm = det.detect_incremental(&cloud, &options, &mut scratch, &mut cache);
        assert!(cache.is_warm());
        cache.clear();
        assert!(!cache.is_warm());
        let cold = det.detect_incremental(&cloud, &options, &mut scratch, &mut cache);
        assert_eq!(warm, cold);
    }

    #[test]
    fn display_detection() {
        let d = Detection {
            class: ObjectClass::Car,
            obb: Obb3::new(Vec3::ZERO, Vec3::new(4.5, 1.8, 1.5), 0.0),
            score: 0.87,
        };
        assert!(format!("{d}").contains("0.87"));
    }
}
