//! The assembled SPOD detector pipeline.

use cooper_geometry::{Aabb3, Obb3, Vec3};
use cooper_lidar_sim::ObjectClass;
use cooper_pointcloud::{PointCloud, VoxelGrid, VoxelGridConfig};
use cooper_telemetry::names as telemetry_names;
use serde::{Deserialize, Serialize};

use crate::anchors::AnchorConfig;
use crate::bev::BevMap;
use crate::head::DetectionHead;
use crate::preprocess::{densify, PreprocessConfig};
use crate::sparse_conv::SparseConv3;
use crate::train::{train, TrainingConfig};
use crate::vfe::VoxelFeatureEncoder;

/// One detected object: class, sensor-frame box and confidence score.
///
/// The score is the sigmoid objectness of the winning anchor — the
/// "detecting score" reported in the paper's Figures 3 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected class.
    pub class: ObjectClass,
    /// The decoded oriented box in the input cloud's frame.
    pub obb: Obb3,
    /// Confidence in `[0, 1]`.
    pub score: f32,
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} (score {:.2})",
            self.class, self.obb.center, self.score
        )
    }
}

/// Static configuration of the SPOD pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpodConfig {
    /// Voxelization extent and resolution. 360° coverage: cooperative
    /// clouds contain returns all around the receiver.
    pub voxel_grid: VoxelGridConfig,
    /// Feature channels flowing through the middle layers.
    pub channels: usize,
    /// Preprocessing (spherical densification) applied to input clouds.
    pub preprocess: PreprocessConfig,
    /// Detections below this score are discarded.
    pub score_threshold: f32,
    /// BEV IoU threshold for non-maximum suppression.
    pub nms_iou: f64,
    /// Distance-NMS factor: same-class detections closer than this
    /// fraction of the smaller box length are duplicates (0 disables).
    pub nms_distance_factor: f64,
    /// RPN receptive-field radius in BEV cells (window side is
    /// `2·radius + 1`). Must cover the longest anchor.
    pub window_radius: i32,
    /// Sensor mount height (anchors sit on the ground this far below
    /// the sensor origin).
    pub mount_height: f64,
    /// When set, returns within this margin (metres) of the ground plane
    /// are excluded from voxelization — standard LiDAR ground
    /// segmentation. Road returns dominate raw scans and carry no object
    /// evidence; removing them restores the foreground/background
    /// balance the RPN heads train against. `None` disables (ablation).
    pub ground_removal_margin: Option<f64>,
    /// Seed for the deterministic feature-extractor weights.
    pub seed: u64,
}

impl Default for SpodConfig {
    fn default() -> Self {
        SpodConfig {
            voxel_grid: VoxelGridConfig {
                extent: Aabb3::new(Vec3::new(-80.0, -80.0, -3.0), Vec3::new(80.0, 80.0, 3.0)),
                voxel_size: Vec3::new(0.5, 0.5, 0.5),
                max_points_per_voxel: 35,
            },
            channels: 8,
            preprocess: PreprocessConfig::sparse_default(),
            score_threshold: 0.5,
            nms_iou: 0.2,
            nms_distance_factor: 0.5,
            window_radius: 3,
            mount_height: 1.8,
            ground_removal_margin: Some(0.3),
            seed: 0xC00_9E6,
        }
    }
}

/// Points per voxelization chunk. Fixed (never derived from thread
/// count) so chunk boundaries — and with them the grouping of float
/// accumulations — are identical however many workers voxelize. Sized
/// so a typical densified scan splits into enough chunks to occupy a
/// small work pool without drowning in merge overhead.
const VOXELIZE_CHUNK_POINTS: usize = 16_384;

/// The SPOD 3-D object detector (Figure 1 of the paper): preprocessing →
/// voxel feature extractor → sparse convolutional middle layers → BEV
/// collapse → SSD-style RPN heads → NMS.
///
/// One instance handles any input density — "not only … high density
/// data, but also … much sparser point clouds" — which is what lets the
/// same network run on single-shot and fused cooperative clouds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpodDetector {
    config: SpodConfig,
    vfe: VoxelFeatureEncoder,
    conv1: SparseConv3,
    conv2: SparseConv3,
    heads: Vec<DetectionHead>,
}

impl SpodDetector {
    /// Creates a detector with deterministic feature-extractor weights
    /// and untrained (zero) heads. Use [`SpodDetector::train_default`] or
    /// [`crate::train::train`] to fit the heads.
    pub fn new(config: SpodConfig) -> Self {
        let vfe = VoxelFeatureEncoder::seeded(config.channels, config.seed);
        let conv1 = SparseConv3::seeded(config.channels, config.channels, config.seed ^ 1);
        let conv2 = SparseConv3::seeded(config.channels, config.channels, config.seed ^ 2);
        let side = (2 * config.window_radius + 1) as usize;
        let feature_dim = (config.channels + crate::bev::Z_STRUCTURE_CHANNELS) * side * side;
        let heads = ObjectClass::TARGETS
            .iter()
            .map(|&class| {
                DetectionHead::new(
                    feature_dim,
                    AnchorConfig::for_class(class, config.mount_height),
                )
            })
            .collect();
        SpodDetector {
            config,
            vfe,
            conv1,
            conv2,
            heads,
        }
    }

    /// Trains a detector with the default pipeline configuration.
    pub fn train_default(training: &TrainingConfig) -> Self {
        train(SpodConfig::default(), training)
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SpodConfig {
        &self.config
    }

    /// Mutable access to the per-class heads, for the trainer.
    pub(crate) fn heads_mut(&mut self) -> &mut [DetectionHead] {
        &mut self.heads
    }

    /// The per-class heads.
    pub fn heads(&self) -> &[DetectionHead] {
        &self.heads
    }

    /// The VFE embedding layer (weight-file persistence).
    pub fn vfe_layer(&self) -> &crate::nn::Linear {
        self.vfe.layer()
    }

    /// The first sparse convolution (weight-file persistence).
    pub fn conv1_layer(&self) -> &SparseConv3 {
        &self.conv1
    }

    /// The second sparse convolution (weight-file persistence).
    pub fn conv2_layer(&self) -> &SparseConv3 {
        &self.conv2
    }

    /// Reconstructs a detector from loaded parts (weight-file loading).
    pub fn from_parts(
        config: SpodConfig,
        vfe: VoxelFeatureEncoder,
        conv1: SparseConv3,
        conv2: SparseConv3,
        heads: Vec<DetectionHead>,
    ) -> Self {
        SpodDetector {
            config,
            vfe,
            conv1,
            conv2,
            heads,
        }
    }

    /// Serializes the trained detector to a versioned binary weight
    /// blob. See [`crate::persist`].
    pub fn to_bytes(&self) -> bytes::Bytes {
        crate::persist::detector_to_bytes(self)
    }

    /// Loads a detector written by [`SpodDetector::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::persist::PersistError`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::persist::PersistError> {
        crate::persist::detector_from_bytes(bytes)
    }

    /// Runs the feature-extraction trunk: preprocessing, voxelization,
    /// VFE, two sparse convolutions and the BEV collapse.
    ///
    /// Exposed so the trainer and ablation benches can reuse the exact
    /// inference path (C-INTERMEDIATE).
    pub fn featurize(&self, cloud: &PointCloud) -> BevMap {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_FEATURIZE);
        let dense = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_PREPROCESS);
            let mut dense = densify(cloud, &self.config.preprocess);
            if let Some(margin) = self.config.ground_removal_margin {
                let cutoff = -self.config.mount_height + margin;
                dense.retain(|p| p.position.z >= cutoff);
            }
            dense
        };
        let grid = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VOXELIZE);
            // Chunked even when the executor is sequential: fixed chunk
            // boundaries make the float accumulators (and hence every
            // downstream feature) bit-identical at any thread count.
            let executor = cooper_exec::Executor::new(None);
            let grid = VoxelGrid::from_cloud_chunked(
                &dense,
                self.config.voxel_grid,
                VOXELIZE_CHUNK_POINTS,
                &executor,
            );
            cooper_telemetry::counter_add(
                telemetry_names::SPOD_VOXELS_OCCUPIED,
                grid.occupied_count() as u64,
            );
            grid
        };
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_MIDDLE);
        let embedded = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_VFE);
            self.vfe.encode(&grid)
        };
        let mid = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_CONV1);
            self.conv1.forward(&embedded)
        };
        let deep = {
            let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_CONV2);
            self.conv2.forward(&mid)
        };
        let _layer = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_BEV);
        BevMap::collapse(&deep)
    }

    /// Detects objects in a sensor-frame cloud.
    ///
    /// Works identically on single-shot and fused cooperative clouds —
    /// the input is just points.
    pub fn detect(&self, cloud: &PointCloud) -> Vec<Detection> {
        self.detect_with_threshold(cloud, self.config.score_threshold)
    }

    /// Detects with an explicit score threshold (used by PR-curve
    /// evaluation, which sweeps thresholds).
    pub fn detect_with_threshold(&self, cloud: &PointCloud, threshold: f32) -> Vec<Detection> {
        let bev = self.featurize(cloud);
        let detections = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_RPN);
            let mut detections = Vec::new();
            for (&(x, y), _) in bev.iter() {
                let features = bev.window_features(x, y, self.config.window_radius);
                for head in &self.heads {
                    for yaw_idx in 0..AnchorConfig::YAWS.len() {
                        let score = head.score(&features, yaw_idx);
                        if score < threshold {
                            continue;
                        }
                        let anchor =
                            head.config()
                                .anchor_at(&self.config.voxel_grid, (x, y), yaw_idx);
                        let residual = head.residual(&features, yaw_idx);
                        let obb = crate::anchors::decode_box(&anchor, &residual);
                        detections.push(Detection {
                            class: head.config().class,
                            obb,
                            score,
                        });
                    }
                }
            }
            detections
        };
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_NMS);
        crate::nms::non_max_suppression_with_distance(
            detections,
            self.config.nms_iou,
            self.config.nms_distance_factor,
        )
    }

    /// Detects only the given class (cheaper when only cars matter, as
    /// in the Cooper evaluation).
    pub fn detect_class(
        &self,
        cloud: &PointCloud,
        class: ObjectClass,
        threshold: f32,
    ) -> Vec<Detection> {
        let bev = self.featurize(cloud);
        let Some(head) = self.heads.iter().find(|h| h.config().class == class) else {
            return Vec::new();
        };
        let detections = {
            let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_RPN);
            let mut detections = Vec::new();
            for (&(x, y), _) in bev.iter() {
                let features = bev.window_features(x, y, self.config.window_radius);
                for yaw_idx in 0..AnchorConfig::YAWS.len() {
                    let score = head.score(&features, yaw_idx);
                    if score < threshold {
                        continue;
                    }
                    let anchor = head
                        .config()
                        .anchor_at(&self.config.voxel_grid, (x, y), yaw_idx);
                    let residual = head.residual(&features, yaw_idx);
                    detections.push(Detection {
                        class,
                        obb: crate::anchors::decode_box(&anchor, &residual),
                        score,
                    });
                }
            }
            detections
        };
        let _stage = cooper_telemetry::span!(telemetry_names::SPAN_SPOD_NMS);
        crate::nms::non_max_suppression_with_distance(
            detections,
            self.config.nms_iou,
            self.config.nms_distance_factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_pointcloud::Point;

    fn toy_cloud() -> PointCloud {
        // A car-sized blob of points 10 m ahead, 1.8 m below the sensor.
        let mut cloud = PointCloud::new();
        for i in 0..200 {
            let fx = (i % 20) as f64 * 0.2;
            let fy = ((i / 20) % 5) as f64 * 0.35;
            let fz = (i / 100) as f64 * 0.6;
            cloud.push(Point::new(Vec3::new(8.0 + fx, -0.9 + fy, -1.7 + fz), 0.45));
        }
        cloud
    }

    #[test]
    fn untrained_detector_runs_end_to_end() {
        let det = SpodDetector::new(SpodConfig::default());
        // Zero heads score exactly 0.5 everywhere; with the default 0.5
        // threshold everything passes but NMS bounds the output.
        let detections = det.detect_with_threshold(&toy_cloud(), 0.6);
        assert!(detections.is_empty(), "untrained head must not clear 0.6");
    }

    #[test]
    fn featurize_produces_active_cells() {
        let det = SpodDetector::new(SpodConfig::default());
        let bev = det.featurize(&toy_cloud());
        assert!(bev.active_cells() > 0);
        assert_eq!(
            bev.channels(),
            det.config().channels + crate::bev::Z_STRUCTURE_CHANNELS
        );
    }

    #[test]
    fn empty_cloud_yields_no_detections() {
        let det = SpodDetector::new(SpodConfig::default());
        assert!(det.detect(&PointCloud::new()).is_empty());
    }

    #[test]
    fn detector_is_deterministic() {
        let a = SpodDetector::new(SpodConfig::default());
        let b = SpodDetector::new(SpodConfig::default());
        assert_eq!(a, b);
        let cloud = toy_cloud();
        let fa = a.featurize(&cloud);
        let fb = b.featurize(&cloud);
        assert_eq!(fa, fb);
    }

    #[test]
    fn detect_class_filters() {
        let det = SpodDetector::new(SpodConfig::default());
        let dets = det.detect_class(&toy_cloud(), ObjectClass::Car, 0.4);
        assert!(dets.iter().all(|d| d.class == ObjectClass::Car));
    }

    #[test]
    fn display_detection() {
        let d = Detection {
            class: ObjectClass::Car,
            obb: Obb3::new(Vec3::ZERO, Vec3::new(4.5, 1.8, 1.5), 0.0),
            score: 0.87,
        };
        assert!(format!("{d}").contains("0.87"));
    }
}
