//! SPOD — Sparse Point-cloud Object Detection.
//!
//! A from-scratch Rust implementation of the detector proposed by the
//! Cooper paper (§III): "the proposed detector … consists of three
//! components":
//!
//! 1. **Preprocessing** — sparse clouds are "projected onto a sphere …
//!    to generate a dense representation" ([`preprocess`], built on
//!    [`cooper_pointcloud::RangeImage`]).
//! 2. **Voxel feature extractor** — voxel-wise features fed through a
//!    voxel feature encoding layer, "well demonstrated by VoxelNet"
//!    ([`vfe`]).
//! 3. **Sparse convolutional middle layers** ([`sparse_conv`], a
//!    rulebook-style submanifold sparse 3-D convolution engine: "output
//!    points are not computed if there is no related input points"),
//!    followed by an SSD-style **region proposal network** over the
//!    bird's-eye-view feature map ([`head`], [`anchors`], [`non_max_suppression`]).
//!
//! # Substitution note (documented in `DESIGN.md`)
//!
//! The paper trains the whole network end-to-end on KITTI with GPU SGD.
//! Rust has no mature deep-learning stack, so this implementation keeps
//! the full architecture but fits parameters at a smaller scale: the VFE
//! and sparse-conv layers use deterministic seeded random-feature
//! weights, and the RPN heads (objectness + box regression, the decision
//! surface) are trained in-repo with pure-Rust SGD on labelled synthetic
//! scenes ([`train`]). Detection confidence remains a learned, monotone
//! function of point evidence — the property all of the paper's results
//! build on.
//!
//! # Examples
//!
//! ```no_run
//! use cooper_lidar_sim::{dataset::SceneConfig, BeamModel};
//! use cooper_spod::{train::TrainingConfig, SpodDetector};
//!
//! let detector = SpodDetector::train_default(&TrainingConfig::fast());
//! let scene = cooper_lidar_sim::dataset::generate_scene(
//!     999,
//!     &SceneConfig::default(),
//!     &BeamModel::vlp16(),
//! );
//! let detections = detector.detect(&scene.cloud);
//! for d in &detections {
//!     println!("{} at {} score {:.2}", d.class, d.obb.center, d.score);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod bev;
mod detector;
pub mod eval;
pub mod fusion;
pub mod head;
mod nms;
pub mod nn;
pub mod persist;
pub mod preprocess;
pub mod sparse_conv;
mod tensor;
pub mod train;
pub mod vfe;

pub use detector::{
    DetectOptions, DetectScratch, Detection, FeaturizeCache, SpodConfig, SpodDetector,
};
pub use fusion::{filter_bev_roi, fuse_bev, transform_bev, FeatureFusionMode};
pub use nms::non_max_suppression;
pub use tensor::SparseTensor3;
