//! Feature-level fusion of BEV maps (the F-Cooper family).
//!
//! Cooper exchanges raw points; its successor F-Cooper (Chen et al.,
//! SEC 2019) exchanges intermediate *features* instead: each vehicle
//! runs the detector front half locally and ships its sparse BEV
//! feature map, and the receiver fuses incoming maps with its own by
//! **elementwise maximum** before running the RPN head. This module
//! implements that fusion rule plus an adaptive per-cell
//! confidence-weighted variant, together with the geometric plumbing a
//! receiver needs: re-binning a sender's map into the receiver's grid
//! under the alignment transform, and ROI-clipping a map to the same
//! wedges the raw-point tiers use.
//!
//! Everything here is deterministic: fusion walks cells in ascending
//! order with fixed contributor order, so fused maps — and the
//! detections behind them — are bit-identical at any thread count.

use cooper_geometry::{RigidTransform, Vec3};
use cooper_pointcloud::roi::RoiCategory;
use cooper_pointcloud::VoxelGridConfig;

use crate::bev::BevMap;

/// Floor added to every adaptive-fusion weight so a cell whose
/// contributors are all zero still averages instead of dividing by zero.
const ADAPTIVE_WEIGHT_EPS: f32 = 1e-6;

/// How a receiver combines overlapping BEV feature cells from several
/// vehicles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FeatureFusionMode {
    /// F-Cooper's rule: per-channel elementwise maximum over all
    /// contributors. Order-independent by construction and idempotent —
    /// fusing a map with itself changes nothing.
    Max,
    /// Adaptive per-cell confidence weighting: each contributor's cell
    /// is weighted by its feature-vector L2 norm (a magnitude proxy for
    /// how much point evidence produced it), and the fused cell is the
    /// weighted mean. Cells seen by only one vehicle pass through
    /// unchanged; contested cells lean toward the vehicle that actually
    /// observed structure there.
    Adaptive,
}

impl std::fmt::Display for FeatureFusionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FeatureFusionMode::Max => "max",
            FeatureFusionMode::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for FeatureFusionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "max" => Ok(FeatureFusionMode::Max),
            "adaptive" => Ok(FeatureFusionMode::Adaptive),
            other => Err(format!(
                "unknown fusion mode '{other}' (expected 'max' or 'adaptive')"
            )),
        }
    }
}

/// Fuses several BEV feature maps into one over the union of their
/// active cells.
///
/// With [`FeatureFusionMode::Max`] each output channel is the maximum
/// over the contributors active at that cell (F-Cooper's `max(f_i)`);
/// with [`FeatureFusionMode::Adaptive`] it is the L2-norm-weighted mean
/// `Σ wᵢ·fᵢ / Σ wᵢ`, `wᵢ = ε + ‖fᵢ‖₂`. Either way a cell only one map
/// observed passes through unchanged, so fusing with an empty map is the
/// identity.
///
/// # Panics
///
/// Panics when `maps` is empty or the maps disagree on channel count —
/// both programmer errors (wire-side channel mismatches are rejected
/// before maps get here).
pub fn fuse_bev(maps: &[&BevMap], mode: FeatureFusionMode) -> BevMap {
    assert!(!maps.is_empty(), "fusion needs at least one map");
    let channels = maps[0].channels();
    assert!(
        maps.iter().all(|m| m.channels() == channels),
        "fused maps must agree on channel count"
    );
    let mut heads = vec![0usize; maps.len()];
    let mut cells: Vec<(i32, i32)> = Vec::new();
    let mut features: Vec<f32> = Vec::new();
    loop {
        let mut cell: Option<(i32, i32)> = None;
        for (k, m) in maps.iter().enumerate() {
            if heads[k] < m.active_cells() {
                let c = m.cell_slice()[heads[k]];
                if cell.is_none_or(|best| c < best) {
                    cell = Some(c);
                }
            }
        }
        let Some(cell) = cell else { break };
        let base = features.len();
        match mode {
            FeatureFusionMode::Max => {
                features.extend(std::iter::repeat_n(f32::NEG_INFINITY, channels));
                for (k, m) in maps.iter().enumerate() {
                    if heads[k] < m.active_cells() && m.cell_slice()[heads[k]] == cell {
                        for (acc, &v) in features[base..].iter_mut().zip(m.feature_at(heads[k])) {
                            *acc = acc.max(v);
                        }
                        heads[k] += 1;
                    }
                }
                for v in features[base..].iter_mut() {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
            }
            FeatureFusionMode::Adaptive => {
                features.extend(std::iter::repeat_n(0.0f32, channels));
                let mut weight_sum = 0.0f32;
                for (k, m) in maps.iter().enumerate() {
                    if heads[k] < m.active_cells() && m.cell_slice()[heads[k]] == cell {
                        let row = m.feature_at(heads[k]);
                        let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                        let w = ADAPTIVE_WEIGHT_EPS + if norm.is_finite() { norm } else { 0.0 };
                        for (acc, &v) in features[base..].iter_mut().zip(row) {
                            *acc += w * if v.is_finite() { v } else { 0.0 };
                        }
                        weight_sum += w;
                        heads[k] += 1;
                    }
                }
                for v in features[base..].iter_mut() {
                    *v /= weight_sum;
                }
            }
        }
        cells.push(cell);
    }
    BevMap::from_parts(channels, cells, features)
}

/// Re-bins a sender's BEV feature map into the receiver's grid under
/// the sender→receiver alignment transform.
///
/// Each cell's planar center is pushed through `transform` and re-binned
/// by nearest cell; cells landing outside the receiver's extent are
/// dropped (the feature-tier analogue of points leaving the detection
/// range), and cells that collide after re-binning max-merge — the same
/// rule fusion itself would apply. The resampling is nearest-neighbor by
/// design: at the detector's 0.5 m cell pitch, sub-cell interpolation
/// buys nothing the quantized wire features could express.
pub fn transform_bev(map: &BevMap, transform: &RigidTransform, grid: &VoxelGridConfig) -> BevMap {
    let min = grid.extent.min();
    let max = grid.extent.max();
    let size = grid.voxel_size;
    let mut cells: Vec<(i32, i32)> = Vec::with_capacity(map.active_cells());
    let mut features: Vec<f32> = Vec::with_capacity(map.active_cells() * map.channels());
    for (i, &(x, y)) in map.cell_slice().iter().enumerate() {
        let center = Vec3::new(
            min.x + (f64::from(x) + 0.5) * size.x,
            min.y + (f64::from(y) + 0.5) * size.y,
            0.0,
        );
        let moved = transform.apply(center);
        if moved.x < min.x || moved.x >= max.x || moved.y < min.y || moved.y >= max.y {
            continue;
        }
        cells.push((
            ((moved.x - min.x) / size.x).floor() as i32,
            ((moved.y - min.y) / size.y).floor() as i32,
        ));
        features.extend_from_slice(map.feature_at(i));
    }
    BevMap::from_parts(map.channels(), cells, features)
}

/// Clips a BEV feature map to an ROI category, mirroring the wedges
/// [`cooper_pointcloud::roi::extract_roi`] applies to raw points:
/// [`RoiCategory::FrontFov120`] keeps cells whose center azimuth (from
/// the sensor origin) is within ±60°, [`RoiCategory::ForwardOneWay`]
/// within ±30° and 50 m range. Azimuth and range are measured at the
/// cell's planar center, so the clip agrees with the point-tier ROI to
/// within half a cell.
pub fn filter_bev_roi(map: &BevMap, grid: &VoxelGridConfig, roi: RoiCategory) -> BevMap {
    let (half_angle, max_range) = match roi {
        RoiCategory::FullFrame => return map.clone(),
        // extract_roi: sector(cloud, 0.0, 120°) — half-angle 60°.
        RoiCategory::FrontFov120 => (60f64.to_radians(), f64::INFINITY),
        // extract_roi: 60° sector limited to 50 m.
        RoiCategory::ForwardOneWay => (30f64.to_radians(), 50.0),
    };
    let min = grid.extent.min();
    let size = grid.voxel_size;
    let mut cells: Vec<(i32, i32)> = Vec::new();
    let mut features: Vec<f32> = Vec::new();
    for (i, &(x, y)) in map.cell_slice().iter().enumerate() {
        let cx = min.x + (f64::from(x) + 0.5) * size.x;
        let cy = min.y + (f64::from(y) + 0.5) * size.y;
        let range = (cx * cx + cy * cy).sqrt();
        if range > max_range || cy.atan2(cx).abs() > half_angle {
            continue;
        }
        cells.push((x, y));
        features.extend_from_slice(map.feature_at(i));
    }
    BevMap::from_parts(map.channels(), cells, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose};

    fn map_of(channels: usize, entries: &[((i32, i32), &[f32])]) -> BevMap {
        let mut cells = Vec::new();
        let mut features = Vec::new();
        for &(cell, row) in entries {
            assert_eq!(row.len(), channels);
            cells.push(cell);
            features.extend_from_slice(row);
        }
        BevMap::from_parts(channels, cells, features)
    }

    #[test]
    fn max_fusion_takes_elementwise_max_over_union() {
        let a = map_of(2, &[((0, 0), &[1.0, 5.0]), ((2, 1), &[3.0, 0.0])]);
        let b = map_of(2, &[((0, 0), &[4.0, 2.0]), ((7, 7), &[1.0, 1.0])]);
        let fused = fuse_bev(&[&a, &b], FeatureFusionMode::Max);
        assert_eq!(fused.active_cells(), 3);
        assert_eq!(fused.get(0, 0).unwrap(), &[4.0, 5.0][..]);
        assert_eq!(fused.get(2, 1).unwrap(), &[3.0, 0.0][..]);
        assert_eq!(fused.get(7, 7).unwrap(), &[1.0, 1.0][..]);
    }

    #[test]
    fn max_fusion_is_idempotent_and_identity_with_empty() {
        let a = map_of(
            3,
            &[((1, -4), &[0.5, -2.0, 1.0]), ((3, 3), &[0.0, 0.0, 9.0])],
        );
        let empty = map_of(3, &[]);
        assert_eq!(fuse_bev(&[&a, &a], FeatureFusionMode::Max), a);
        assert_eq!(fuse_bev(&[&a, &empty], FeatureFusionMode::Max), a);
    }

    #[test]
    fn adaptive_fusion_weights_by_magnitude() {
        // A strong cell (norm 4) against a weak one (norm 1): the fused
        // value must sit much closer to the strong contributor.
        let strong = map_of(1, &[((0, 0), &[4.0])]);
        let weak = map_of(1, &[((0, 0), &[1.0])]);
        let fused = fuse_bev(&[&strong, &weak], FeatureFusionMode::Adaptive);
        let v = fused.get(0, 0).unwrap()[0];
        // (4·4 + 1·1) / (4 + 1) = 3.4
        assert!((v - 3.4).abs() < 1e-3, "got {v}");
        // Single-contributor cells pass through unchanged.
        let other = map_of(1, &[((5, 5), &[2.0])]);
        let fused = fuse_bev(&[&strong, &other], FeatureFusionMode::Adaptive);
        assert!((fused.get(5, 5).unwrap()[0] - 2.0).abs() < 1e-5);
        assert!((fused.get(0, 0).unwrap()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn adaptive_fusion_survives_all_zero_cells() {
        let a = map_of(2, &[((0, 0), &[0.0, 0.0])]);
        let b = map_of(2, &[((0, 0), &[0.0, 0.0])]);
        let fused = fuse_bev(&[&a, &b], FeatureFusionMode::Adaptive);
        assert_eq!(fused.get(0, 0).unwrap(), &[0.0, 0.0][..]);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn fusion_rejects_channel_mismatch() {
        let a = map_of(2, &[((0, 0), &[1.0, 2.0])]);
        let b = map_of(3, &[((0, 0), &[1.0, 2.0, 3.0])]);
        let _ = fuse_bev(&[&a, &b], FeatureFusionMode::Max);
    }

    #[test]
    fn transform_shifts_cells_by_whole_voxels() {
        let grid = crate::SpodConfig::default().voxel_grid;
        // One cell at the receiver-grid origin area.
        let map = map_of(1, &[((160, 160), &[7.0])]);
        // Sender sits 2 m ahead of the receiver (same heading): its
        // cells land 2 m (= 4 cells at 0.5 m) forward in receiver frame.
        let sender = Pose::new(Vec3::new(2.0, 0.0, 0.0), Attitude::level());
        let receiver = Pose::origin();
        let t = RigidTransform::between(&sender, &receiver);
        let moved = transform_bev(&map, &t, &grid);
        assert_eq!(moved.active_cells(), 1);
        assert_eq!(moved.get(164, 160).unwrap(), &[7.0][..]);
    }

    #[test]
    fn transform_drops_cells_leaving_the_extent() {
        let grid = crate::SpodConfig::default().voxel_grid;
        let map = map_of(1, &[((319, 160), &[1.0])]); // near +x edge
        let sender = Pose::new(Vec3::new(50.0, 0.0, 0.0), Attitude::level());
        let t = RigidTransform::between(&sender, &Pose::origin());
        assert_eq!(transform_bev(&map, &t, &grid).active_cells(), 0);
    }

    #[test]
    fn roi_filter_mirrors_point_wedges() {
        let grid = crate::SpodConfig::default().voxel_grid;
        // Cell centers: (160,160) ≈ (0.25, 0.25) — forward; (100,160) ≈
        // (-29.75, 0.25) — behind; (200,160) ≈ (20.25, 0.25) — forward
        // at 20 m.
        let map = map_of(
            1,
            &[
                ((100, 160), &[1.0]),
                ((160, 160), &[2.0]),
                ((200, 160), &[3.0]),
            ],
        );
        let full = filter_bev_roi(&map, &grid, RoiCategory::FullFrame);
        assert_eq!(full.active_cells(), 3);
        let front = filter_bev_roi(&map, &grid, RoiCategory::FrontFov120);
        assert_eq!(front.active_cells(), 2);
        assert!(front.get(100, 160).is_none(), "behind-cell must be clipped");
        // (160,160)'s center sits at 45° azimuth: inside the 120° FOV
        // but outside the ±30° forward wedge.
        let forward = filter_bev_roi(&map, &grid, RoiCategory::ForwardOneWay);
        assert_eq!(forward.active_cells(), 1);
        assert!(forward.get(200, 160).is_some());
        // A forward cell beyond 50 m is clipped by the range limit.
        let far = map_of(1, &[((280, 160), &[1.0])]); // ≈ (60.25, 0.25)
        assert_eq!(
            filter_bev_roi(&far, &grid, RoiCategory::ForwardOneWay).active_cells(),
            0
        );
        assert_eq!(
            filter_bev_roi(&far, &grid, RoiCategory::FrontFov120).active_cells(),
            1
        );
    }
}
