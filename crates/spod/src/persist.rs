//! Binary persistence for trained detectors.
//!
//! Training is deterministic but takes seconds; a deployed system loads
//! weights instead. The format is a hand-rolled versioned binary layout
//! (the workspace deliberately carries no serialization-format crate):
//! every numeric field in a fixed order, validated on load.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cooper_geometry::{Aabb3, Vec3};
use cooper_lidar_sim::ObjectClass;
use cooper_pointcloud::{RangeImageConfig, VoxelGridConfig};

use crate::anchors::AnchorConfig;
use crate::detector::{SpodConfig, SpodDetector};
use crate::head::DetectionHead;
use crate::nn::Linear;
use crate::preprocess::PreprocessConfig;
use crate::sparse_conv::SparseConv3;
use crate::vfe::VoxelFeatureEncoder;

const MAGIC: &[u8; 4] = b"SPOD";
const VERSION: u8 = 1;

/// Errors loading a persisted detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended early.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u8),
    /// A structural invariant failed (dimension mismatch, unknown
    /// class tag, non-finite weight).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "weight file truncated"),
            PersistError::BadMagic => write!(f, "not a SPOD weight file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported weight version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt weight file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), PersistError> {
        if self.buf.remaining() < n {
            Err(PersistError::Truncated)
        } else {
            Ok(())
        }
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        self.need(4)?;
        let v = self.buf.get_f32();
        if v.is_finite() {
            Ok(v)
        } else {
            Err(PersistError::Corrupt("non-finite f32"))
        }
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        self.need(8)?;
        let v = self.buf.get_f64();
        if v.is_finite() {
            Ok(v)
        } else {
            Err(PersistError::Corrupt("non-finite f64"))
        }
    }
    fn vec3(&mut self) -> Result<Vec3, PersistError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }
    fn f32_vec(&mut self, len: usize) -> Result<Vec<f32>, PersistError> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }
}

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f64(v.x);
    buf.put_f64(v.y);
    buf.put_f64(v.z);
}

fn put_linear(buf: &mut BytesMut, l: &Linear) {
    buf.put_u32(l.in_dim() as u32);
    buf.put_u32(l.out_dim() as u32);
    for &w in l.weights() {
        buf.put_f32(w);
    }
    for &b in l.biases() {
        buf.put_f32(b);
    }
}

fn read_linear(r: &mut Reader<'_>) -> Result<Linear, PersistError> {
    let in_dim = r.u32()? as usize;
    let out_dim = r.u32()? as usize;
    if in_dim == 0 || out_dim == 0 || in_dim * out_dim > 1 << 24 {
        return Err(PersistError::Corrupt("implausible linear dimensions"));
    }
    let w = r.f32_vec(in_dim * out_dim)?;
    let b = r.f32_vec(out_dim)?;
    Ok(Linear::from_parameters(in_dim, out_dim, w, b))
}

fn class_tag(class: ObjectClass) -> u8 {
    match class {
        ObjectClass::Car => 0,
        ObjectClass::Pedestrian => 1,
        ObjectClass::Cyclist => 2,
        ObjectClass::Background => 3,
    }
}

fn class_from_tag(tag: u8) -> Result<ObjectClass, PersistError> {
    Ok(match tag {
        0 => ObjectClass::Car,
        1 => ObjectClass::Pedestrian,
        2 => ObjectClass::Cyclist,
        3 => ObjectClass::Background,
        _ => return Err(PersistError::Corrupt("unknown class tag")),
    })
}

/// Serializes a detector (configuration + all weights).
pub fn detector_to_bytes(detector: &SpodDetector) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);

    let c = detector.config();
    put_vec3(&mut buf, c.voxel_grid.extent.min());
    put_vec3(&mut buf, c.voxel_grid.extent.max());
    put_vec3(&mut buf, c.voxel_grid.voxel_size);
    buf.put_u32(c.voxel_grid.max_points_per_voxel as u32);
    buf.put_u32(c.channels as u32);
    buf.put_u32(c.preprocess.range_image.rows as u32);
    buf.put_u32(c.preprocess.range_image.cols as u32);
    buf.put_f64(c.preprocess.range_image.elevation_min);
    buf.put_f64(c.preprocess.range_image.elevation_max);
    buf.put_f64(c.preprocess.range_image.azimuth_min);
    buf.put_f64(c.preprocess.range_image.azimuth_max);
    buf.put_u32(c.preprocess.densify_passes as u32);
    buf.put_f32(c.score_threshold);
    buf.put_f64(c.nms_iou);
    buf.put_f64(c.nms_distance_factor);
    buf.put_u32(c.window_radius as u32);
    buf.put_f64(c.mount_height);
    match c.ground_removal_margin {
        Some(m) => {
            buf.put_u8(1);
            buf.put_f64(m);
        }
        None => {
            buf.put_u8(0);
            buf.put_f64(0.0);
        }
    }
    buf.put_u64(c.seed);

    put_linear(&mut buf, detector.vfe_layer());
    for conv in [detector.conv1_layer(), detector.conv2_layer()] {
        buf.put_u32(conv.in_channels() as u32);
        buf.put_u32(conv.out_channels() as u32);
        for tap in conv.kernel_taps() {
            for &w in tap {
                buf.put_f32(w);
            }
        }
        for &b in conv.bias_values() {
            buf.put_f32(b);
        }
    }

    buf.put_u8(detector.heads().len() as u8);
    for head in detector.heads() {
        let hc = head.config();
        buf.put_u8(class_tag(hc.class));
        put_vec3(&mut buf, hc.size);
        buf.put_f64(hc.center_z);
        buf.put_f64(hc.positive_iou);
        buf.put_f64(hc.negative_iou);
        for l in head.objectness_layers() {
            put_linear(&mut buf, l);
        }
        for l in head.regression_layers() {
            put_linear(&mut buf, l);
        }
    }
    buf.freeze()
}

/// Loads a detector previously written by [`detector_to_bytes`].
///
/// # Errors
///
/// Returns a [`PersistError`] for truncated, mismatched or corrupt
/// input.
pub fn detector_from_bytes(bytes: &[u8]) -> Result<SpodDetector, PersistError> {
    let mut r = Reader { buf: bytes };
    r.need(5)?;
    let mut magic = [0u8; 4];
    r.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.buf.get_u8();
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }

    let extent_min = r.vec3()?;
    let extent_max = r.vec3()?;
    let voxel_size = r.vec3()?;
    let max_points_per_voxel = r.u32()? as usize;
    let channels = r.u32()? as usize;
    if channels == 0 || channels > 1024 || max_points_per_voxel > 1 << 20 {
        return Err(PersistError::Corrupt("implausible channel configuration"));
    }
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    if rows > 1 << 16 || cols > 1 << 16 {
        return Err(PersistError::Corrupt("implausible range-image dimensions"));
    }
    let elevation_min = r.f64()?;
    let elevation_max = r.f64()?;
    let azimuth_min = r.f64()?;
    let azimuth_max = r.f64()?;
    let densify_passes = r.u32()? as usize;
    let score_threshold = r.f32()?;
    let nms_iou = r.f64()?;
    let nms_distance_factor = r.f64()?;
    let window_radius = r.u32()? as i32;
    if !(0..=64).contains(&window_radius) {
        return Err(PersistError::Corrupt("implausible window radius"));
    }
    let mount_height = r.f64()?;
    let has_ground = r.u8()? != 0;
    let ground_margin = r.f64()?;
    let seed = r.u64()?;

    let config = SpodConfig {
        voxel_grid: VoxelGridConfig {
            extent: Aabb3::new(extent_min, extent_max),
            voxel_size,
            max_points_per_voxel,
        },
        channels,
        preprocess: PreprocessConfig {
            range_image: RangeImageConfig {
                rows,
                cols,
                elevation_min,
                elevation_max,
                azimuth_min,
                azimuth_max,
            },
            densify_passes,
        },
        score_threshold,
        nms_iou,
        nms_distance_factor,
        window_radius,
        mount_height,
        ground_removal_margin: has_ground.then_some(ground_margin),
        seed,
    };
    if config.voxel_grid.validate().is_err() || config.preprocess.range_image.validate().is_err() {
        return Err(PersistError::Corrupt("invalid configuration"));
    }

    let vfe_embed = read_linear(&mut r)?;
    if vfe_embed.in_dim() != crate::vfe::RAW_FEATURES || vfe_embed.out_dim() != channels {
        return Err(PersistError::Corrupt("VFE dimension mismatch"));
    }
    let vfe = VoxelFeatureEncoder::from_layer(vfe_embed);

    let mut convs = Vec::with_capacity(2);
    for _ in 0..2 {
        let in_channels = r.u32()? as usize;
        let out_channels = r.u32()? as usize;
        if in_channels != channels || out_channels != channels {
            return Err(PersistError::Corrupt("conv dimension mismatch"));
        }
        let mut kernel = Vec::with_capacity(27);
        for _ in 0..27 {
            kernel.push(r.f32_vec(in_channels * out_channels)?);
        }
        let bias = r.f32_vec(out_channels)?;
        convs.push(SparseConv3::from_parameters(
            in_channels,
            out_channels,
            kernel,
            bias,
        ));
    }
    let conv2 = convs.pop().expect("two convs read");
    let conv1 = convs.pop().expect("two convs read");

    let head_count = r.u8()? as usize;
    if head_count == 0 || head_count > 8 {
        return Err(PersistError::Corrupt("implausible head count"));
    }
    let feature_dim = (channels + crate::bev::Z_STRUCTURE_CHANNELS)
        * ((2 * window_radius + 1) * (2 * window_radius + 1)) as usize;
    let mut heads = Vec::with_capacity(head_count);
    for _ in 0..head_count {
        let class = class_from_tag(r.u8()?)?;
        let size = r.vec3()?;
        let center_z = r.f64()?;
        let positive_iou = r.f64()?;
        let negative_iou = r.f64()?;
        let anchor = AnchorConfig {
            class,
            size,
            center_z,
            positive_iou,
            negative_iou,
        };
        let mut objectness = Vec::with_capacity(AnchorConfig::YAWS.len());
        for _ in 0..AnchorConfig::YAWS.len() {
            let l = read_linear(&mut r)?;
            if l.in_dim() != feature_dim || l.out_dim() != 1 {
                return Err(PersistError::Corrupt("objectness dimension mismatch"));
            }
            objectness.push(l);
        }
        let mut regression = Vec::with_capacity(AnchorConfig::YAWS.len());
        for _ in 0..AnchorConfig::YAWS.len() {
            let l = read_linear(&mut r)?;
            if l.in_dim() != feature_dim || l.out_dim() != crate::anchors::REGRESSION_DIMS {
                return Err(PersistError::Corrupt("regression dimension mismatch"));
            }
            regression.push(l);
        }
        heads.push(DetectionHead::from_parts(anchor, objectness, regression));
    }

    Ok(SpodDetector::from_parts(config, vfe, conv1, conv2, heads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainingConfig};

    fn trained() -> SpodDetector {
        train(
            SpodConfig::default(),
            &TrainingConfig {
                scenes: 3,
                epochs: 1,
                ..TrainingConfig::fast()
            },
        )
    }

    #[test]
    fn round_trip_preserves_detector_exactly() {
        let detector = trained();
        let bytes = detector_to_bytes(&detector);
        let loaded = detector_from_bytes(&bytes).expect("loads");
        assert_eq!(detector, loaded);
    }

    #[test]
    fn loaded_detector_detects_identically() {
        use cooper_lidar_sim::dataset::{generate_scene, SceneConfig};
        use cooper_lidar_sim::BeamModel;
        let detector = trained();
        let loaded = detector_from_bytes(&detector_to_bytes(&detector)).expect("loads");
        let scene = generate_scene(1234, &SceneConfig::default(), &BeamModel::vlp16());
        let a = detector.detect(&scene.cloud);
        let b = loaded.detect(&scene.cloud);
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = detector_to_bytes(&trained());
        for cut in [0usize, 4, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = detector_from_bytes(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(err, PersistError::Truncated | PersistError::BadMagic),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let bytes = detector_to_bytes(&trained()).to_vec();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            detector_from_bytes(&bad).unwrap_err(),
            PersistError::BadMagic
        );
        let mut wrong = bytes;
        wrong[4] = 99;
        assert_eq!(
            detector_from_bytes(&wrong).unwrap_err(),
            PersistError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn nan_weight_rejected() {
        let detector = trained();
        let mut bytes = detector_to_bytes(&detector).to_vec();
        // Stomp somewhere deep in the weight region with NaN bits.
        let off = bytes.len() - 100;
        bytes[off..off + 4].copy_from_slice(&f32::NAN.to_be_bytes());
        let err = detector_from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_) | PersistError::Truncated),
            "unexpected {err}"
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            PersistError::Truncated,
            PersistError::BadMagic,
            PersistError::UnsupportedVersion(3),
            PersistError::Corrupt("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
