//! Bird's-eye-view collapse of the sparse 3-D feature tensor.
//!
//! SECOND-style detectors collapse the z axis after the sparse middle
//! layers and run the 2-D region proposal network on the resulting BEV
//! feature map. The collapse here max-pools features over z per `(x, y)`
//! column and stays sparse: only columns with at least one active voxel
//! exist.

use cooper_pointcloud::FeatureFrame;
use serde::{Deserialize, Serialize};

use crate::tensor::SparseTensor3;

/// Number of vertical-structure channels appended to every collapsed
/// column (occupied-level count, column height span, column base level).
///
/// Max pooling alone cannot distinguish a ground-only column (one
/// occupied z level) from an object column (several stacked levels);
/// these channels restore that signal, which is what separates road
/// surface from vehicles in the RPN.
pub const Z_STRUCTURE_CHANNELS: usize = 3;

/// A sparse BEV feature map: one feature vector per active `(x, y)`
/// column. Each vector is the per-channel max over z of the input tensor
/// followed by [`Z_STRUCTURE_CHANNELS`] vertical-structure statistics.
///
/// Storage is structure-of-arrays: a sorted `(x, y)` cell array plus a
/// flat feature buffer. Window extraction range-scans one contiguous
/// cell run per window column instead of probing a map per cell.
///
/// # Examples
///
/// ```
/// use cooper_pointcloud::VoxelCoord;
/// use cooper_spod::bev::BevMap;
/// use cooper_spod::SparseTensor3;
///
/// let mut t = SparseTensor3::new(2);
/// t.set(VoxelCoord::new(3, 4, 0), vec![1.0, 0.0]);
/// t.set(VoxelCoord::new(3, 4, 1), vec![0.5, 2.0]);
/// let bev = BevMap::collapse(&t);
/// assert_eq!(bev.active_cells(), 1);
/// assert_eq!(bev.channels(), 2 + cooper_spod::bev::Z_STRUCTURE_CHANNELS);
/// assert_eq!(&bev.get(3, 4).unwrap()[..2], &[1.0, 2.0][..]); // per-channel max
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BevMap {
    channels: usize,
    /// Active cells in ascending `(x, y)` order.
    cells: Vec<(i32, i32)>,
    /// Flat feature storage, `channels` values per cell.
    features: Vec<f32>,
}

/// Normalizer for z-structure statistics: a column taller than this many
/// voxels saturates.
const Z_NORM: f32 = 8.0;

impl BevMap {
    /// Collapses a sparse 3-D tensor over z: per-channel max pooling plus
    /// the vertical-structure channels.
    ///
    /// The tensor's sites are sorted by `(x, y, z)`, so every `(x, y)`
    /// column is one contiguous run — the collapse is a single linear
    /// pass, and z ascends within each run (the run's first site is the
    /// column base, the last its top).
    pub fn collapse(tensor: &SparseTensor3) -> Self {
        let in_channels = tensor.channels();
        let channels = in_channels + Z_STRUCTURE_CHANNELS;
        let sites = tensor.coord_slice();
        let mut cells: Vec<(i32, i32)> = Vec::new();
        let mut features: Vec<f32> = Vec::new();
        let mut run = 0;
        while run < sites.len() {
            let cell = (sites[run].x, sites[run].y);
            let mut end = run + 1;
            while end < sites.len() && (sites[end].x, sites[end].y) == cell {
                end += 1;
            }
            let base = features.len();
            features.extend(std::iter::repeat_n(f32::NEG_INFINITY, in_channels));
            for site in run..end {
                for (c, f) in features[base..].iter_mut().zip(tensor.feature_at(site)) {
                    *c = c.max(*f);
                }
            }
            for v in features[base..].iter_mut() {
                if !v.is_finite() {
                    *v = 0.0;
                }
            }
            let levels = (end - run) as u32;
            let z_min = sites[run].z;
            let z_max = sites[end - 1].z;
            features.push((levels as f32 / Z_NORM).min(1.0));
            features.push(((z_max - z_min + 1) as f32 / Z_NORM).min(1.0));
            features.push((z_min as f32 / Z_NORM).clamp(-1.0, 1.0));
            cells.push(cell);
            run = end;
        }
        BevMap {
            channels,
            cells,
            features,
        }
    }

    /// Builds a map directly from its parts, sorting cells and
    /// max-merging duplicates — the constructor for maps that did not
    /// come out of [`BevMap::collapse`]: wire-decoded feature frames and
    /// re-binned (transformed) maps, whose cells may arrive in any order
    /// and may collide.
    ///
    /// Duplicate cells merge by per-channel max, matching the collapse
    /// semantics (and the F-Cooper fusion rule), so the result is
    /// independent of input order.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != cells.len() * channels`.
    pub fn from_parts(channels: usize, cells: Vec<(i32, i32)>, features: Vec<f32>) -> Self {
        assert_eq!(
            features.len(),
            cells.len() * channels,
            "feature storage must hold `channels` values per cell"
        );
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_unstable_by_key(|&i| cells[i]);
        let mut out_cells: Vec<(i32, i32)> = Vec::with_capacity(cells.len());
        let mut out_features: Vec<f32> = Vec::with_capacity(features.len());
        for &i in &order {
            let row = &features[i * channels..(i + 1) * channels];
            if out_cells.last() == Some(&cells[i]) {
                let base = out_features.len() - channels;
                for (acc, &v) in out_features[base..].iter_mut().zip(row) {
                    *acc = acc.max(v);
                }
            } else {
                out_cells.push(cells[i]);
                out_features.extend_from_slice(row);
            }
        }
        BevMap {
            channels,
            cells: out_cells,
            features: out_features,
        }
    }

    /// Converts the map into the codec's wire-interchange form for v3
    /// feature frames (a straight copy — the layouts match by design).
    pub fn to_feature_frame(&self) -> FeatureFrame {
        FeatureFrame::new(self.channels, self.cells.clone(), self.features.clone())
    }

    /// Rebuilds a map from a wire-decoded feature frame. Wire frames
    /// are sorted by construction, but salvaged or foreign frames get
    /// the same defensive sort-and-merge as [`BevMap::from_parts`].
    pub fn from_feature_frame(frame: &FeatureFrame) -> Self {
        BevMap::from_parts(
            frame.channels(),
            frame.cells().to_vec(),
            frame.features().to_vec(),
        )
    }

    /// Features per cell.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of active columns.
    pub fn active_cells(&self) -> usize {
        self.cells.len()
    }

    /// The feature vector of column `(x, y)`, or `None` when inactive.
    pub fn get(&self, x: i32, y: i32) -> Option<&[f32]> {
        self.cells
            .binary_search(&(x, y))
            .ok()
            .map(|i| &self.features[i * self.channels..(i + 1) * self.channels])
    }

    /// Iterates over active `((x, y), features)` pairs in ascending
    /// `(x, y)` order, so consumers that accumulate or tie-break over
    /// cells behave identically run to run.
    pub fn iter(&self) -> impl Iterator<Item = (&(i32, i32), &[f32])> {
        self.cells
            .iter()
            .zip(self.features.chunks_exact(self.channels))
    }

    /// The active cells as a slice (ascending `(x, y)` order) — the SoA
    /// access path for stages that chunk cells across workers.
    pub fn cell_slice(&self) -> &[(i32, i32)] {
        &self.cells
    }

    /// The feature slice of the cell at `index` (cells are in ascending
    /// order).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.active_cells()`.
    pub fn feature_at(&self, index: usize) -> &[f32] {
        &self.features[index * self.channels..(index + 1) * self.channels]
    }

    /// Concatenated features of the `(2·radius+1)²` window centered at
    /// `(x, y)`, zero-filled at inactive cells. Length is
    /// `(2·radius+1)² * channels`.
    ///
    /// This window is what the RPN head consumes per anchor position —
    /// the receptive field of the SSD head. It must be wide enough to
    /// cover the largest anchor (a car is ~9 cells long at 0.5 m
    /// resolution), otherwise box regression cannot see where the object
    /// ends.
    pub fn window_features(&self, x: i32, y: i32, radius: i32) -> Vec<f32> {
        let mut out = Vec::new();
        self.window_features_into(x, y, radius, &mut out);
        out
    }

    /// [`BevMap::window_features`] writing into a reusable buffer: the
    /// hot RPN path calls this once per anchor cell and reuses `out`
    /// across calls, avoiding one allocation per cell. The buffer is
    /// cleared and refilled; layout matches `window_features` exactly
    /// (dy outer, dx inner).
    pub fn window_features_into(&self, x: i32, y: i32, radius: i32, out: &mut Vec<f32>) {
        let side = (2 * radius + 1) as usize;
        out.clear();
        out.resize(side * side * self.channels, 0.0);
        // Cells sort by (x, y), so each window column x+dx is one
        // contiguous cell run: binary-search its start, then scan.
        for (dx_idx, dx) in (-radius..=radius).enumerate() {
            let col = x + dx;
            let start = self.cells.partition_point(|&c| c < (col, y - radius));
            for i in start..self.cells.len() {
                let (cx, cy) = self.cells[i];
                if cx != col || cy > y + radius {
                    break;
                }
                let dy_idx = (cy - (y - radius)) as usize;
                let block = (dy_idx * side + dx_idx) * self.channels;
                out[block..block + self.channels]
                    .copy_from_slice(&self.features[i * self.channels..(i + 1) * self.channels]);
            }
        }
    }
}

impl std::fmt::Display for BevMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BEV map ({} cells × {} channels)",
            self.cells.len(),
            self.channels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_pointcloud::VoxelCoord;

    #[test]
    fn collapse_max_pools_over_z() {
        let mut t = SparseTensor3::new(3);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0, 5.0, 0.0]);
        t.set(VoxelCoord::new(0, 0, 3), vec![2.0, 1.0, 0.5]);
        t.set(VoxelCoord::new(1, 0, 0), vec![9.0, 9.0, 9.0]);
        let bev = BevMap::collapse(&t);
        assert_eq!(bev.active_cells(), 2);
        assert_eq!(&bev.get(0, 0).unwrap()[..3], &[2.0, 5.0, 0.5][..]);
        assert_eq!(&bev.get(1, 0).unwrap()[..3], &[9.0, 9.0, 9.0][..]);
        assert_eq!(bev.get(5, 5), None);
    }

    #[test]
    fn z_structure_channels_distinguish_columns() {
        let mut t = SparseTensor3::new(1);
        // Ground-only column: one occupied level.
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
        // Object column: three stacked levels.
        t.set(VoxelCoord::new(1, 0, 0), vec![1.0]);
        t.set(VoxelCoord::new(1, 0, 1), vec![1.0]);
        t.set(VoxelCoord::new(1, 0, 2), vec![1.0]);
        let bev = BevMap::collapse(&t);
        let ground = bev.get(0, 0).unwrap();
        let object = bev.get(1, 0).unwrap();
        // Level count channel (index 1 = channels() - 3).
        assert!(object[1] > ground[1]);
        // Height span channel.
        assert!(object[2] > ground[2]);
        // Base level matches.
        assert_eq!(object[3], ground[3]);
    }

    #[test]
    fn window_features_layout() {
        let mut t = SparseTensor3::new(1);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
        t.set(VoxelCoord::new(1, 0, 0), vec![2.0]);
        let bev = BevMap::collapse(&t);
        let c = bev.channels();
        let w = bev.window_features(0, 0, 1);
        assert_eq!(w.len(), 9 * c);
        // Row-major (dy outer, dx inner): center block starts at 4·c,
        // right-neighbour block at 5·c.
        assert_eq!(w[4 * c], 1.0);
        assert_eq!(w[5 * c], 2.0);
        // A wider radius widens the vector accordingly.
        assert_eq!(bev.window_features(0, 0, 3).len(), 49 * c);
    }

    #[test]
    fn window_into_reuses_buffer_and_matches() {
        let mut t = SparseTensor3::new(2);
        t.set(VoxelCoord::new(0, -1, 0), vec![1.0, -1.0]);
        t.set(VoxelCoord::new(2, 3, 1), vec![0.5, 0.25]);
        t.set(VoxelCoord::new(-1, 2, 0), vec![4.0, 2.0]);
        let bev = BevMap::collapse(&t);
        let mut buf = vec![9.0; 3]; // stale contents must be discarded
        for (x, y) in [(0, 0), (2, 3), (-1, 2), (10, 10)] {
            for radius in [1, 2, 3] {
                bev.window_features_into(x, y, radius, &mut buf);
                assert_eq!(
                    buf,
                    bev.window_features(x, y, radius),
                    "at ({x},{y}) r{radius}"
                );
            }
        }
    }

    #[test]
    fn window_on_inactive_cell_is_zero_padded() {
        let bev = BevMap::collapse(&SparseTensor3::new(2));
        let w = bev.window_features(10, 10, 1);
        assert_eq!(w.len(), 9 * (2 + Z_STRUCTURE_CHANNELS));
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn display_counts() {
        let bev = BevMap::collapse(&SparseTensor3::new(4));
        assert!(format!("{bev}").contains("0 cells"));
    }
}
