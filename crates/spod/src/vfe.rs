//! Voxel feature encoding (VFE) — SPOD's first learned stage.
//!
//! "In voxel feature extractor components, our framework takes
//! represented point clouds as input, feeding extract\[ed\] voxel-wise
//! features to \[a\] voxel feature encoding layer, this is well
//! demonstrated by VoxelNet" (§III-C). Each occupied voxel is summarized
//! by a hand-specified statistics vector (the analogue of VoxelNet's
//! per-point augmented inputs) and embedded through a linear + ReLU
//! layer into the channel space consumed by the sparse convolutional
//! middle layers.

use cooper_exec::Executor;
use cooper_pointcloud::{Voxel, VoxelGrid};
use serde::{Deserialize, Serialize};

use crate::nn::{relu_in_place, Linear};
use crate::tensor::SparseTensor3;

/// Number of raw statistics computed per voxel before embedding.
pub const RAW_FEATURES: usize = 9;

/// Voxels per parallel chunk in [`VoxelFeatureEncoder::encode_with`].
/// Fixed boundaries keep the output layout independent of thread count.
const VFE_CHUNK_VOXELS: usize = 2048;

/// The voxel feature encoder: raw voxel statistics → embedded channels.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud, VoxelGrid, VoxelGridConfig};
/// use cooper_spod::vfe::VoxelFeatureEncoder;
///
/// let cloud: PointCloud = (0..30)
///     .map(|i| Point::new(Vec3::new(10.0 + 0.01 * i as f64, 0.0, 0.0), 0.5))
///     .collect();
/// let grid = VoxelGrid::from_cloud(&cloud, VoxelGridConfig::voxelnet_car());
/// let encoder = VoxelFeatureEncoder::seeded(8, 1);
/// let tensor = encoder.encode(&grid);
/// assert_eq!(tensor.active_sites(), grid.occupied_count());
/// assert_eq!(tensor.channels(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelFeatureEncoder {
    embed: Linear,
}

impl VoxelFeatureEncoder {
    /// Creates an encoder with `channels` output channels and
    /// deterministic seeded weights.
    pub fn seeded(channels: usize, seed: u64) -> Self {
        VoxelFeatureEncoder {
            embed: Linear::seeded(RAW_FEATURES, channels, seed),
        }
    }

    /// Output channel count.
    pub fn channels(&self) -> usize {
        self.embed.out_dim()
    }

    /// The embedding layer (weight-file persistence).
    pub fn layer(&self) -> &Linear {
        &self.embed
    }

    /// Reconstructs an encoder from a loaded layer.
    ///
    /// # Panics
    ///
    /// Panics when the layer's input dimension is not [`RAW_FEATURES`].
    pub fn from_layer(embed: Linear) -> Self {
        assert_eq!(embed.in_dim(), RAW_FEATURES, "VFE input dimension mismatch");
        VoxelFeatureEncoder { embed }
    }

    /// Computes the raw statistics vector for one voxel.
    ///
    /// Components: normalized point count; centroid offset within the
    /// voxel (3, each in `[-1, 1]`); mean reflectance; absolute centroid
    /// height; vertical sample spread; horizontal sample spread;
    /// normalized sensor range.
    pub fn raw_features(
        grid: &VoxelGrid,
        coord: cooper_pointcloud::VoxelCoord,
        voxel: &Voxel,
    ) -> [f32; RAW_FEATURES] {
        let config = grid.config();
        let centroid = voxel.centroid();
        let center = config.center_of(coord);
        let half = config.voxel_size * 0.5;
        let offset = centroid - center;

        // Exact extrema over all points (insertion-order independent).
        let v_spread = (voxel.max_position.z - voxel.min_position.z).max(0.0);
        let h_spread = (voxel.max_range_xy - voxel.min_range_xy).max(0.0);

        [
            (voxel.count.min(35) as f32) / 35.0,
            (offset.x / half.x).clamp(-1.0, 1.0) as f32,
            (offset.y / half.y).clamp(-1.0, 1.0) as f32,
            (offset.z / half.z).clamp(-1.0, 1.0) as f32,
            voxel.mean_reflectance() as f32,
            (centroid.z / 3.0).clamp(-2.0, 2.0) as f32,
            (v_spread / config.voxel_size.z).clamp(0.0, 1.0) as f32,
            (h_spread / config.voxel_size.x.max(config.voxel_size.y)).clamp(0.0, 1.0) as f32,
            (centroid.range_xy() / 60.0).clamp(0.0, 2.0) as f32,
        ]
    }

    /// Encodes one voxel into `out`: raw statistics → linear embed →
    /// ReLU, overwriting `out` with the embedded channel row.
    ///
    /// This is exactly the per-voxel body of
    /// [`VoxelFeatureEncoder::encode_with`]; because each voxel's
    /// encoding is independent of its neighbours, re-embedding only the
    /// voxels an incremental grid update changed yields rows
    /// bit-identical to a full re-encode.
    pub fn encode_voxel_into(
        &self,
        grid: &VoxelGrid,
        coord: cooper_pointcloud::VoxelCoord,
        voxel: &Voxel,
        out: &mut Vec<f32>,
    ) {
        let raw = Self::raw_features(grid, coord, voxel);
        self.embed.forward_into(&raw, out);
        relu_in_place(out);
    }

    /// Encodes every occupied voxel of `grid` into a sparse feature
    /// tensor.
    pub fn encode(&self, grid: &VoxelGrid) -> SparseTensor3 {
        self.encode_with(grid, &Executor::sequential())
    }

    /// [`VoxelFeatureEncoder::encode`] chunk-parallel over `executor`.
    /// Voxels are independent, so fixed chunk boundaries make the result
    /// bit-identical to the sequential path at any thread count.
    pub fn encode_with(&self, grid: &VoxelGrid, executor: &Executor) -> SparseTensor3 {
        let channels = self.channels();
        let coords = grid.coords();
        let voxels = grid.voxels();
        let parts = executor.map_chunks_in(
            coords,
            VFE_CHUNK_VOXELS,
            || Vec::with_capacity(channels),
            |ci, chunk, buf| {
                let base = ci * VFE_CHUNK_VOXELS;
                let mut out_chunk = Vec::with_capacity(chunk.len() * channels);
                for (s, coord) in chunk.iter().enumerate() {
                    let raw = Self::raw_features(grid, *coord, &voxels[base + s]);
                    self.embed.forward_into(&raw, buf);
                    relu_in_place(buf);
                    out_chunk.extend_from_slice(buf);
                }
                out_chunk
            },
        );
        let mut features = Vec::with_capacity(coords.len() * channels);
        for part in parts {
            features.extend_from_slice(&part);
        }
        SparseTensor3::from_sorted_parts(channels, coords.to_vec(), features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_pointcloud::{Point, PointCloud, VoxelGridConfig};

    fn grid_of(points: Vec<Point>) -> VoxelGrid {
        VoxelGrid::from_cloud(
            &PointCloud::from_points(points),
            VoxelGridConfig::voxelnet_car(),
        )
    }

    #[test]
    fn encode_covers_all_voxels() {
        let grid = grid_of(
            (0..100)
                .map(|i| Point::new(Vec3::new(5.0 + (i % 10) as f64, -2.0, 0.0), 0.4))
                .collect(),
        );
        let enc = VoxelFeatureEncoder::seeded(8, 3);
        let t = enc.encode(&grid);
        assert_eq!(t.active_sites(), grid.occupied_count());
        // ReLU output is non-negative.
        for (_, f) in t.iter() {
            assert!(f.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn raw_features_are_bounded() {
        let grid = grid_of(
            (0..50)
                .map(|i| Point::new(Vec3::new(30.0 + 0.005 * i as f64, 10.0, -1.0), 0.9))
                .collect(),
        );
        for (coord, voxel) in grid.iter() {
            let raw = VoxelFeatureEncoder::raw_features(&grid, *coord, voxel);
            for (i, v) in raw.iter().enumerate() {
                assert!(v.is_finite(), "feature {i} not finite");
                assert!(v.abs() <= 2.0, "feature {i} out of range: {v}");
            }
        }
    }

    #[test]
    fn dense_voxel_has_higher_count_feature() {
        let sparse_grid = grid_of(vec![Point::new(Vec3::new(10.0, 0.0, 0.0), 0.5)]);
        let dense_grid = grid_of(
            (0..35)
                .map(|_| Point::new(Vec3::new(10.0, 0.0, 0.0), 0.5))
                .collect(),
        );
        let (c1, v1) = sparse_grid.iter().next().unwrap();
        let (c2, v2) = dense_grid.iter().next().unwrap();
        let f1 = VoxelFeatureEncoder::raw_features(&sparse_grid, *c1, v1);
        let f2 = VoxelFeatureEncoder::raw_features(&dense_grid, *c2, v2);
        assert!(f2[0] > f1[0]);
        assert_eq!(f2[0], 1.0);
    }

    #[test]
    fn encoder_is_deterministic() {
        let grid = grid_of(vec![Point::new(Vec3::new(10.0, 0.0, 0.0), 0.5)]);
        let a = VoxelFeatureEncoder::seeded(4, 9).encode(&grid);
        let b = VoxelFeatureEncoder::seeded(4, 9).encode(&grid);
        assert_eq!(a, b);
    }

    #[test]
    fn encode_with_matches_sequential_at_any_thread_count() {
        let grid = grid_of(
            (0..400)
                .map(|i| {
                    Point::new(
                        Vec3::new(
                            5.0 + (i % 40) as f64 * 0.7,
                            -15.0 + (i / 40) as f64 * 2.3,
                            -1.0 + (i % 5) as f64 * 0.4,
                        ),
                        0.1 + (i % 9) as f32 * 0.1,
                    )
                })
                .collect(),
        );
        let enc = VoxelFeatureEncoder::seeded(8, 3);
        let sequential = enc.encode(&grid);
        for threads in [2, 4] {
            let parallel = enc.encode_with(&grid, &Executor::new(Some(threads)));
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn per_voxel_encode_matches_full_encode() {
        let grid = grid_of(
            (0..300)
                .map(|i| {
                    Point::new(
                        Vec3::new(
                            2.0 + (i % 30) as f64 * 1.1,
                            -12.0 + (i / 30) as f64 * 2.7,
                            -1.5 + (i % 4) as f64 * 0.6,
                        ),
                        0.05 + (i % 8) as f32 * 0.11,
                    )
                })
                .collect(),
        );
        let enc = VoxelFeatureEncoder::seeded(8, 5);
        let full = enc.encode(&grid);
        let channels = enc.channels();
        let mut row = Vec::with_capacity(channels);
        for (i, (coord, voxel)) in grid.iter().enumerate() {
            enc.encode_voxel_into(&grid, *coord, voxel, &mut row);
            let expected = &full.feature_slice()[i * channels..(i + 1) * channels];
            assert_eq!(row.as_slice(), expected, "voxel {coord} diverged");
        }
    }

    #[test]
    fn empty_grid_gives_empty_tensor() {
        let grid = grid_of(vec![]);
        let t = VoxelFeatureEncoder::seeded(8, 0).encode(&grid);
        assert!(t.is_empty());
    }
}
