//! Detection evaluation: matching, precision/recall and average
//! precision.

use cooper_geometry::Obb3;
use serde::{Deserialize, Serialize};

use crate::detector::Detection;

/// KITTI-style difficulty, approximated by sensor range (the synthetic
/// scenes carry no truncation metadata): easy < 15 m, moderate < 30 m,
/// hard beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RangeDifficulty {
    /// Close, fully visible objects.
    Easy,
    /// Mid-range objects.
    Moderate,
    /// Distant, sparsely sampled objects.
    Hard,
}

impl RangeDifficulty {
    /// All difficulties, easiest first.
    pub const ALL: [RangeDifficulty; 3] = [
        RangeDifficulty::Easy,
        RangeDifficulty::Moderate,
        RangeDifficulty::Hard,
    ];

    /// Classifies a sensor-frame box by its planar range.
    pub fn of(obb: &Obb3) -> Self {
        let r = obb.center.range_xy();
        if r < 15.0 {
            RangeDifficulty::Easy
        } else if r < 30.0 {
            RangeDifficulty::Moderate
        } else {
            RangeDifficulty::Hard
        }
    }
}

impl std::fmt::Display for RangeDifficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RangeDifficulty::Easy => "easy",
            RangeDifficulty::Moderate => "moderate",
            RangeDifficulty::Hard => "hard",
        })
    }
}

/// The result of matching detections against ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchResult {
    /// `(detection index, ground-truth index)` pairs, best-score first.
    pub true_positives: Vec<(usize, usize)>,
    /// Indices of unmatched detections.
    pub false_positives: Vec<usize>,
    /// Indices of unmatched ground-truth boxes.
    pub false_negatives: Vec<usize>,
}

impl MatchResult {
    /// Precision = TP / (TP + FP); 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let tp = self.true_positives.len();
        let total = tp + self.false_positives.len();
        if total == 0 {
            1.0
        } else {
            tp as f64 / total as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let tp = self.true_positives.len();
        let total = tp + self.false_negatives.len();
        if total == 0 {
            1.0
        } else {
            tp as f64 / total as f64
        }
    }
}

/// Greedily matches detections (best score first) to ground truth boxes
/// by BEV IoU: each ground truth may be claimed once; a detection with
/// max-IoU below `iou_threshold` is a false positive.
pub fn match_detections(
    detections: &[Detection],
    ground_truth: &[Obb3],
    iou_threshold: f64,
) -> MatchResult {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].score.total_cmp(&detections[a].score));
    let mut claimed = vec![false; ground_truth.len()];
    let mut result = MatchResult::default();
    for det_idx in order {
        let det = &detections[det_idx];
        let mut best = (0.0f64, None);
        for (gt_idx, gt) in ground_truth.iter().enumerate() {
            if claimed[gt_idx] {
                continue;
            }
            let iou = det.obb.iou_bev(gt);
            if iou > best.0 {
                best = (iou, Some(gt_idx));
            }
        }
        match best {
            (iou, Some(gt_idx)) if iou >= iou_threshold => {
                claimed[gt_idx] = true;
                result.true_positives.push((det_idx, gt_idx));
            }
            _ => result.false_positives.push(det_idx),
        }
    }
    result.false_negatives = claimed
        .iter()
        .enumerate()
        .filter(|(_, &c)| !c)
        .map(|(i, _)| i)
        .collect();
    result
}

/// Greedily matches detections to ground truth by planar center
/// distance scaled by object size: a detection claims a ground truth
/// when their centers are within `factor × gt.size.x` (half the length
/// at `factor = 0.5`). Unlike a fixed IoU threshold this criterion is
/// equally strict for cars and pedestrians relative to their size.
pub fn match_detections_by_center(
    detections: &[Detection],
    ground_truth: &[Obb3],
    factor: f64,
) -> MatchResult {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].score.total_cmp(&detections[a].score));
    let mut claimed = vec![false; ground_truth.len()];
    let mut result = MatchResult::default();
    for det_idx in order {
        let det = &detections[det_idx];
        let mut best: Option<(f64, usize)> = None;
        for (gt_idx, gt) in ground_truth.iter().enumerate() {
            if claimed[gt_idx] {
                continue;
            }
            let dist = det.obb.center_distance_bev(gt);
            if dist <= factor * gt.size.x && best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, gt_idx));
            }
        }
        match best {
            Some((_, gt_idx)) => {
                claimed[gt_idx] = true;
                result.true_positives.push((det_idx, gt_idx));
            }
            None => result.false_positives.push(det_idx),
        }
    }
    result.false_negatives = claimed
        .iter()
        .enumerate()
        .filter(|(_, &c)| !c)
        .map(|(i, _)| i)
        .collect();
    result
}

/// A point on the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Recall at this operating point.
    pub recall: f64,
    /// Precision at this operating point.
    pub precision: f64,
}

/// Builds a precision-recall curve by sweeping a score threshold over
/// pooled detections from many frames, using BEV-IoU matching.
///
/// `frames` pairs each frame's detections with its ground truth.
pub fn precision_recall_curve(
    frames: &[(Vec<Detection>, Vec<Obb3>)],
    iou_threshold: f64,
) -> Vec<PrPoint> {
    precision_recall_curve_with(frames, |dets, gts| {
        match_detections(dets, gts, iou_threshold)
    })
}

/// Like [`precision_recall_curve`] but with size-relative
/// center-distance matching ([`match_detections_by_center`]).
pub fn precision_recall_curve_by_center(
    frames: &[(Vec<Detection>, Vec<Obb3>)],
    factor: f64,
) -> Vec<PrPoint> {
    precision_recall_curve_with(frames, |dets, gts| {
        match_detections_by_center(dets, gts, factor)
    })
}

fn precision_recall_curve_with<F>(
    frames: &[(Vec<Detection>, Vec<Obb3>)],
    matcher: F,
) -> Vec<PrPoint>
where
    F: Fn(&[Detection], &[Obb3]) -> MatchResult,
{
    // Pool scores, then for each candidate threshold re-match per frame.
    let mut thresholds: Vec<f32> = frames
        .iter()
        .flat_map(|(d, _)| d.iter().map(|x| x.score))
        .collect();
    thresholds.sort_by(f32::total_cmp);
    thresholds.dedup();
    let mut curve = Vec::with_capacity(thresholds.len());
    for &t in &thresholds {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for (dets, gts) in frames {
            let kept: Vec<Detection> = dets.iter().copied().filter(|d| d.score >= t).collect();
            let m = matcher(&kept, gts);
            tp += m.true_positives.len();
            fp += m.false_positives.len();
            fn_ += m.false_negatives.len();
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        curve.push(PrPoint { recall, precision });
    }
    curve
}

/// KITTI-style 11-point interpolated average precision over a PR curve.
pub fn average_precision(curve: &[PrPoint]) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    let mut ap = 0.0;
    for i in 0..=10 {
        let r = i as f64 / 10.0;
        let p_max = curve
            .iter()
            .filter(|p| p.recall >= r - 1e-12)
            .map(|p| p.precision)
            .fold(0.0, f64::max);
        ap += p_max / 11.0;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_lidar_sim::ObjectClass;

    fn car_at(x: f64, y: f64) -> Obb3 {
        Obb3::new(Vec3::new(x, y, 0.0), Vec3::new(4.5, 1.8, 1.5), 0.0)
    }

    fn det(x: f64, y: f64, score: f32) -> Detection {
        Detection {
            class: ObjectClass::Car,
            obb: car_at(x, y),
            score,
        }
    }

    #[test]
    fn perfect_match() {
        let gts = vec![car_at(10.0, 0.0), car_at(20.0, 5.0)];
        let dets = vec![det(10.0, 0.0, 0.9), det(20.0, 5.0, 0.8)];
        let m = match_detections(&dets, &gts, 0.5);
        assert_eq!(m.true_positives.len(), 2);
        assert!(m.false_positives.is_empty());
        assert!(m.false_negatives.is_empty());
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn each_ground_truth_claimed_once() {
        let gts = vec![car_at(10.0, 0.0)];
        let dets = vec![det(10.0, 0.0, 0.9), det(10.2, 0.0, 0.8)];
        let m = match_detections(&dets, &gts, 0.5);
        assert_eq!(m.true_positives.len(), 1);
        assert_eq!(m.false_positives.len(), 1);
        // The higher-score detection wins the match.
        assert_eq!(m.true_positives[0].0, 0);
    }

    #[test]
    fn misses_are_false_negatives() {
        let gts = vec![car_at(10.0, 0.0), car_at(40.0, 0.0)];
        let dets = vec![det(10.0, 0.0, 0.9)];
        let m = match_detections(&dets, &gts, 0.5);
        assert_eq!(m.false_negatives, vec![1]);
        assert_eq!(m.recall(), 0.5);
    }

    #[test]
    fn empty_cases() {
        let m = match_detections(&[], &[], 0.5);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        let m2 = match_detections(&[], &[car_at(0.0, 0.0)], 0.5);
        assert_eq!(m2.recall(), 0.0);
    }

    #[test]
    fn pr_curve_and_ap_for_perfect_detector() {
        let frames = vec![(
            vec![det(10.0, 0.0, 0.9), det(20.0, 0.0, 0.8)],
            vec![car_at(10.0, 0.0), car_at(20.0, 0.0)],
        )];
        let curve = precision_recall_curve(&frames, 0.5);
        assert!(!curve.is_empty());
        let ap = average_precision(&curve);
        assert!((ap - 1.0).abs() < 1e-9, "AP {ap}");
    }

    #[test]
    fn ap_penalizes_false_positives() {
        let frames = vec![(
            vec![
                det(10.0, 0.0, 0.9),
                det(50.0, 20.0, 0.95), // confident false positive
            ],
            vec![car_at(10.0, 0.0)],
        )];
        let ap = average_precision(&precision_recall_curve(&frames, 0.5));
        assert!(ap < 0.9, "AP {ap}");
        assert!(ap > 0.2, "AP {ap}");
    }

    #[test]
    fn ap_of_empty_curve_is_zero() {
        assert_eq!(average_precision(&[]), 0.0);
    }

    #[test]
    fn difficulty_bands() {
        assert_eq!(
            RangeDifficulty::of(&car_at(5.0, 0.0)),
            RangeDifficulty::Easy
        );
        assert_eq!(
            RangeDifficulty::of(&car_at(20.0, 0.0)),
            RangeDifficulty::Moderate
        );
        assert_eq!(
            RangeDifficulty::of(&car_at(40.0, 0.0)),
            RangeDifficulty::Hard
        );
        for d in RangeDifficulty::ALL {
            assert!(!format!("{d}").is_empty());
        }
    }
}
