//! Anchor grid and box encoding for the SSD-style region proposal
//! network.
//!
//! "Region Proposal Network (RPN) is constructed using single shot
//! multibox detector (SSD) architecture" (§III-C). Anchors of each
//! class's canonical size are placed at every active BEV cell with two
//! headings (0° and 90°); the head classifies each anchor and regresses
//! the offset to the ground-truth box using the VoxelNet/SECOND
//! residual encoding.

use cooper_geometry::{normalize_angle, Obb3, Vec3};
use cooper_lidar_sim::ObjectClass;
use cooper_pointcloud::VoxelGridConfig;
use serde::{Deserialize, Serialize};

/// Number of regression targets per anchor
/// (`x, y, z, length, width, height, yaw`).
pub const REGRESSION_DIMS: usize = 7;

/// Anchor configuration for one object class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnchorConfig {
    /// The class these anchors detect.
    pub class: ObjectClass,
    /// Anchor box size (class canonical size).
    pub size: Vec3,
    /// Anchor center height in the sensor frame, metres.
    pub center_z: f64,
    /// IoU at or above which an anchor is a positive example.
    pub positive_iou: f64,
    /// IoU below which an anchor is a negative example (the band between
    /// is ignored during training).
    pub negative_iou: f64,
}

impl AnchorConfig {
    /// The standard configuration for a class, given the sensor mount
    /// height (anchor center sits at half object height above ground,
    /// which is `mount_height` below the sensor).
    ///
    /// Thresholds follow SECOND: stricter for cars, looser for small
    /// objects.
    pub fn for_class(class: ObjectClass, mount_height: f64) -> Self {
        let size = class.canonical_size();
        // Random ground-truth yaw against 0°/90° anchors caps the best
        // achievable IoU near 0.35 for elongated boxes, so these sit
        // below SECOND's KITTI thresholds (where anchors match the
        // dominant heading distribution).
        let (positive_iou, negative_iou) = match class {
            ObjectClass::Car => (0.30, 0.15),
            ObjectClass::Pedestrian => (0.12, 0.06),
            ObjectClass::Cyclist => (0.18, 0.09),
            ObjectClass::Background => (1.0, 1.0),
        };
        AnchorConfig {
            class,
            size,
            center_z: size.z * 0.5 - mount_height,
            positive_iou,
            negative_iou,
        }
    }

    /// The two anchor yaws (0° and 90°).
    pub const YAWS: [f64; 2] = [0.0, std::f64::consts::FRAC_PI_2];

    /// The anchor box at BEV cell `(x, y)` of `grid` with yaw index
    /// `yaw_idx`.
    ///
    /// # Panics
    ///
    /// Panics when `yaw_idx >= 2`.
    pub fn anchor_at(&self, grid: &VoxelGridConfig, cell: (i32, i32), yaw_idx: usize) -> Obb3 {
        let center2 = grid.center_of(cooper_pointcloud::VoxelCoord::new(cell.0, cell.1, 0));
        Obb3::new(
            Vec3::new(center2.x, center2.y, self.center_z),
            self.size,
            Self::YAWS[yaw_idx],
        )
    }
}

/// Encodes the VoxelNet residual between a ground-truth box and an
/// anchor: the 7-vector the regression head is trained to output.
pub fn encode_box(anchor: &Obb3, gt: &Obb3) -> [f32; REGRESSION_DIMS] {
    let da = (anchor.size.x * anchor.size.x + anchor.size.y * anchor.size.y).sqrt();
    let yaw_residual = wrap_half_pi(gt.yaw - anchor.yaw);
    [
        ((gt.center.x - anchor.center.x) / da) as f32,
        ((gt.center.y - anchor.center.y) / da) as f32,
        ((gt.center.z - anchor.center.z) / anchor.size.z.max(1e-6)) as f32,
        (gt.size.x / anchor.size.x.max(1e-6)).ln() as f32,
        (gt.size.y / anchor.size.y.max(1e-6)).ln() as f32,
        (gt.size.z / anchor.size.z.max(1e-6)).ln() as f32,
        yaw_residual as f32,
    ]
}

/// Decodes a predicted residual back into a box.
pub fn decode_box(anchor: &Obb3, residual: &[f32]) -> Obb3 {
    assert_eq!(residual.len(), REGRESSION_DIMS, "bad residual length");
    let da = (anchor.size.x * anchor.size.x + anchor.size.y * anchor.size.y).sqrt();
    Obb3::new(
        Vec3::new(
            anchor.center.x + f64::from(residual[0]) * da,
            anchor.center.y + f64::from(residual[1]) * da,
            anchor.center.z + f64::from(residual[2]) * anchor.size.z,
        ),
        Vec3::new(
            anchor.size.x * f64::from(residual[3]).exp(),
            anchor.size.y * f64::from(residual[4]).exp(),
            anchor.size.z * f64::from(residual[5]).exp(),
        ),
        anchor.yaw + f64::from(residual[6]),
    )
}

/// Wraps an angle into `[-π/2, π/2)` — box headings are ambiguous
/// modulo π, so residuals live in the half circle.
fn wrap_half_pi(theta: f64) -> f64 {
    let mut t = normalize_angle(theta);
    if t >= std::f64::consts::FRAC_PI_2 {
        t -= std::f64::consts::PI;
    } else if t < -std::f64::consts::FRAC_PI_2 {
        t += std::f64::consts::PI;
    }
    t
}

/// The label assigned to an anchor during training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnchorLabel {
    /// Matched to the ground-truth box at the given index.
    Positive {
        /// Index into the ground-truth slice.
        gt_index: usize,
    },
    /// Clear background.
    Negative,
    /// IoU in the ignore band; excluded from the loss.
    Ignore,
}

/// Assigns a label to one anchor given all same-class ground-truth
/// boxes, using BEV IoU with a cheap center-distance prefilter.
pub fn assign_label(anchor: &Obb3, ground_truth: &[Obb3], config: &AnchorConfig) -> AnchorLabel {
    let mut best_iou = 0.0;
    let mut best_idx = None;
    let reach = (anchor.size.x + anchor.size.y) * 0.5
        + ground_truth
            .iter()
            .map(|g| (g.size.x + g.size.y) * 0.5)
            .fold(0.0, f64::max);
    for (i, gt) in ground_truth.iter().enumerate() {
        if anchor.center_distance_bev(gt) > reach {
            continue;
        }
        let iou = anchor.iou_bev(gt);
        if iou > best_iou {
            best_iou = iou;
            best_idx = Some(i);
        }
    }
    match best_idx {
        Some(i) if best_iou >= config.positive_iou => AnchorLabel::Positive { gt_index: i },
        _ if best_iou < config.negative_iou => AnchorLabel::Negative,
        _ => AnchorLabel::Ignore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_config() -> AnchorConfig {
        AnchorConfig::for_class(ObjectClass::Car, 1.8)
    }

    #[test]
    fn config_center_z_accounts_for_mount() {
        let c = car_config();
        // Car half-height 0.75 above ground; ground is 1.8 below sensor.
        assert!((c.center_z - (0.75 - 1.8)).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip() {
        let anchor = Obb3::new(Vec3::new(10.0, 5.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0);
        let gt = Obb3::new(Vec3::new(10.8, 4.5, -0.9), Vec3::new(4.2, 1.7, 1.6), 0.2);
        let residual = encode_box(&anchor, &gt);
        let back = decode_box(&anchor, &residual);
        assert!((back.center - gt.center).norm() < 1e-5);
        assert!((back.size - gt.size).norm() < 1e-5);
        assert!((back.yaw - gt.yaw).abs() < 1e-6);
    }

    #[test]
    fn identical_boxes_encode_to_zero() {
        let b = Obb3::new(Vec3::new(3.0, 2.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.4);
        let residual = encode_box(&b, &b);
        for v in residual {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn yaw_residual_wraps_mod_pi() {
        let anchor = Obb3::new(Vec3::ZERO, Vec3::new(4.5, 1.8, 1.5), 0.0);
        // A box rotated by π is the same box; residual must be ~0.
        let flipped = Obb3::new(Vec3::ZERO, Vec3::new(4.5, 1.8, 1.5), std::f64::consts::PI);
        let r = encode_box(&anchor, &flipped);
        assert!(r[6].abs() < 1e-6, "yaw residual {}", r[6]);
    }

    #[test]
    fn anchor_label_assignment() {
        let cfg = car_config();
        let gt = vec![Obb3::new(Vec3::new(10.0, 0.0, cfg.center_z), cfg.size, 0.0)];
        let aligned = Obb3::new(Vec3::new(10.2, 0.1, cfg.center_z), cfg.size, 0.0);
        assert!(matches!(
            assign_label(&aligned, &gt, &cfg),
            AnchorLabel::Positive { gt_index: 0 }
        ));
        let far = Obb3::new(Vec3::new(30.0, 0.0, cfg.center_z), cfg.size, 0.0);
        assert_eq!(assign_label(&far, &gt, &cfg), AnchorLabel::Negative);
        // Partial overlap in the ignore band.
        let partial = Obb3::new(Vec3::new(12.2, 0.6, cfg.center_z), cfg.size, 0.0);
        let label = assign_label(&partial, &gt, &cfg);
        assert!(
            matches!(label, AnchorLabel::Ignore | AnchorLabel::Negative),
            "unexpected {label:?}"
        );
    }

    #[test]
    fn no_ground_truth_means_negative() {
        let cfg = car_config();
        let anchor = Obb3::new(Vec3::ZERO, cfg.size, 0.0);
        assert_eq!(assign_label(&anchor, &[], &cfg), AnchorLabel::Negative);
    }

    #[test]
    fn anchor_at_uses_cell_center() {
        let grid = cooper_pointcloud::VoxelGridConfig::voxelnet_car();
        let cfg = car_config();
        let a0 = cfg.anchor_at(&grid, (10, 10), 0);
        let a1 = cfg.anchor_at(&grid, (10, 10), 1);
        assert_eq!(a0.center, a1.center);
        assert_eq!(a0.yaw, 0.0);
        assert!((a1.yaw - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(a0.size, cfg.size);
    }

    #[test]
    fn class_thresholds_ordered() {
        for class in ObjectClass::TARGETS {
            let c = AnchorConfig::for_class(class, 1.8);
            assert!(c.positive_iou > c.negative_iou);
        }
    }

    #[test]
    fn wrap_half_pi_range() {
        for k in -8..8 {
            let t = wrap_half_pi(0.3 + k as f64 * std::f64::consts::FRAC_PI_2);
            assert!((-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2).contains(&t));
        }
    }
}
