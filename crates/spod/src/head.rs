//! The SSD-style detection head: per-anchor objectness and box
//! regression.

use cooper_geometry::Obb3;
use serde::{Deserialize, Serialize};

use crate::anchors::{encode_box, AnchorConfig, REGRESSION_DIMS};
use crate::nn::{bce_with_logit_grad, sigmoid, smooth_l1_grad, Linear};

/// The trainable head for one object class.
///
/// For each anchor yaw (0°/90°) the head holds an objectness unit (a
/// logistic classifier over the BEV window features) and a 7-way linear
/// regressor producing the VoxelNet box residual. These are the layers
/// trained in-repo by SGD; see the crate-level substitution note.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionHead {
    config: AnchorConfig,
    objectness: Vec<Linear>,
    regression: Vec<Linear>,
}

impl DetectionHead {
    /// Creates a head with zero-initialized weights (every anchor starts
    /// at score 0.5 and zero residual).
    pub fn new(feature_dim: usize, config: AnchorConfig) -> Self {
        DetectionHead {
            config,
            objectness: (0..AnchorConfig::YAWS.len())
                .map(|_| Linear::zeros(feature_dim, 1))
                .collect(),
            regression: (0..AnchorConfig::YAWS.len())
                .map(|_| Linear::zeros(feature_dim, REGRESSION_DIMS))
                .collect(),
        }
    }

    /// The anchor configuration this head detects.
    pub fn config(&self) -> &AnchorConfig {
        &self.config
    }

    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.objectness[0].in_dim()
    }

    /// The per-yaw objectness layers (weight-file persistence).
    pub fn objectness_layers(&self) -> &[Linear] {
        &self.objectness
    }

    /// The per-yaw regression layers (weight-file persistence).
    pub fn regression_layers(&self) -> &[Linear] {
        &self.regression
    }

    /// Reconstructs a head from loaded layers.
    ///
    /// # Panics
    ///
    /// Panics when the layer counts do not match the anchor yaw count.
    pub fn from_parts(
        config: AnchorConfig,
        objectness: Vec<Linear>,
        regression: Vec<Linear>,
    ) -> Self {
        assert_eq!(
            objectness.len(),
            AnchorConfig::YAWS.len(),
            "objectness layer count"
        );
        assert_eq!(
            regression.len(),
            AnchorConfig::YAWS.len(),
            "regression layer count"
        );
        DetectionHead {
            config,
            objectness,
            regression,
        }
    }

    /// Objectness logit for the anchor at yaw index `yaw_idx`.
    ///
    /// # Panics
    ///
    /// Panics when `yaw_idx` is out of range or `features` has the wrong
    /// length.
    pub fn objectness_logit(&self, features: &[f32], yaw_idx: usize) -> f32 {
        // Scalar path: the RPN scores every anchor of every BEV cell, so
        // the allocation-free dot product matters; bits match
        // `forward(features)[0]` exactly.
        self.objectness[yaw_idx].forward_scalar(features)
    }

    /// Detection score (sigmoid of the logit) in `[0, 1]`.
    pub fn score(&self, features: &[f32], yaw_idx: usize) -> f32 {
        sigmoid(self.objectness_logit(features, yaw_idx))
    }

    /// Predicted box residual.
    pub fn residual(&self, features: &[f32], yaw_idx: usize) -> Vec<f32> {
        self.regression[yaw_idx].forward(features)
    }

    /// One SGD step for a *negative* anchor (objectness only).
    pub fn train_negative(&mut self, features: &[f32], yaw_idx: usize, learning_rate: f32) {
        let logit = self.objectness_logit(features, yaw_idx);
        let grad = bce_with_logit_grad(logit, 0.0);
        self.objectness[yaw_idx].sgd_step(0, features, grad, learning_rate);
    }

    /// One SGD step for a *positive* anchor: objectness toward 1 plus
    /// smooth-L1 regression toward the encoded ground-truth residual.
    pub fn train_positive(
        &mut self,
        features: &[f32],
        yaw_idx: usize,
        anchor: &Obb3,
        ground_truth: &Obb3,
        learning_rate: f32,
    ) {
        let logit = self.objectness_logit(features, yaw_idx);
        let grad = bce_with_logit_grad(logit, 1.0);
        self.objectness[yaw_idx].sgd_step(0, features, grad, learning_rate);

        let target = encode_box(anchor, ground_truth);
        let predicted = self.residual(features, yaw_idx);
        for (dim, (&t, &p)) in target.iter().zip(predicted.iter()).enumerate() {
            let g = smooth_l1_grad(p - t);
            self.regression[yaw_idx].sgd_step(dim, features, g, learning_rate);
        }
    }

    /// Total parameter norm — training-health telemetry.
    pub fn parameter_norm(&self) -> f32 {
        self.objectness
            .iter()
            .chain(self.regression.iter())
            .map(Linear::parameter_norm)
            .map(|n| n * n)
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors::decode_box;
    use cooper_geometry::Vec3;
    use cooper_lidar_sim::ObjectClass;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn head() -> DetectionHead {
        DetectionHead::new(8, AnchorConfig::for_class(ObjectClass::Car, 1.8))
    }

    #[test]
    fn fresh_head_scores_half() {
        let h = head();
        assert_eq!(h.score(&[0.5; 8], 0), 0.5);
        assert_eq!(h.score(&[0.5; 8], 1), 0.5);
        assert_eq!(h.residual(&[0.5; 8], 0), vec![0.0; REGRESSION_DIMS]);
        assert_eq!(h.feature_dim(), 8);
    }

    #[test]
    fn training_separates_positive_from_negative() {
        let mut h = head();
        let mut rng = StdRng::seed_from_u64(0);
        // Positive anchors have high feature[0], negatives low.
        for _ in 0..2000 {
            let mut f = [0.0f32; 8];
            for v in f.iter_mut() {
                *v = rng.gen_range(0.0..0.2);
            }
            if rng.gen_bool(0.5) {
                f[0] += 0.8;
                let anchor = Obb3::new(Vec3::ZERO, Vec3::new(4.5, 1.8, 1.5), 0.0);
                h.train_positive(&f, 0, &anchor, &anchor, 0.1);
            } else {
                h.train_negative(&f, 0, 0.1);
            }
        }
        let mut pos = [0.05f32; 8];
        pos[0] = 0.9;
        let neg = [0.05f32; 8];
        assert!(h.score(&pos, 0) > 0.85, "pos score {}", h.score(&pos, 0));
        assert!(h.score(&neg, 0) < 0.15, "neg score {}", h.score(&neg, 0));
        assert!(h.parameter_norm() > 0.0);
    }

    #[test]
    fn regression_learns_constant_offset() {
        let mut h = head();
        let anchor = Obb3::new(Vec3::new(10.0, 0.0, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.0);
        let gt = Obb3::new(Vec3::new(11.0, 0.5, -1.0), Vec3::new(4.5, 1.8, 1.5), 0.1);
        let f = [1.0f32; 8];
        for _ in 0..3000 {
            h.train_positive(&f, 0, &anchor, &gt, 0.02);
        }
        let decoded = decode_box(&anchor, &h.residual(&f, 0));
        assert!(
            (decoded.center - gt.center).norm() < 0.1,
            "decoded center {}",
            decoded.center
        );
        assert!((decoded.yaw - gt.yaw).abs() < 0.05);
    }

    #[test]
    fn yaw_heads_are_independent() {
        let mut h = head();
        let f = [1.0f32; 8];
        for _ in 0..200 {
            h.train_negative(&f, 0, 0.1);
        }
        assert!(h.score(&f, 0) < 0.2);
        assert_eq!(h.score(&f, 1), 0.5, "yaw 1 must be untouched");
    }
}
