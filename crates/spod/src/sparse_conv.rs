//! Submanifold sparse 3-D convolution — SPOD's middle layers.
//!
//! "Then a sparse convolutional middle layer is applied. Sparse CNN
//! offers computational benefits in LiDAR-based detection because the
//! grouping step for point clouds will generate a large number of sparse
//! voxels. In this approach, output points are not computed if there is
//! no related input points" (§III-C).
//!
//! The implementation follows the rulebook formulation used by
//! SECOND/SparseConvNet: for every *active* output site (submanifold
//! convolution keeps the active set identical to the input's) gather the
//! active neighbours within the kernel window and accumulate
//! `W[offset] · features`. Empty neighbourhood positions contribute
//! nothing, so cost scales with the number of active sites — not the
//! grid volume.

use cooper_exec::Executor;
use cooper_pointcloud::VoxelCoord;
use serde::{Deserialize, Serialize};

use crate::nn::relu_in_place;
use crate::tensor::SparseTensor3;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sites per parallel chunk when building rulebooks and running the
/// convolution. Fixed (never derived from the thread count) so chunk
/// boundaries — and thus float accumulation grouping — are identical at
/// any parallelism.
const CONV_CHUNK_SITES: usize = 1024;

/// A 3×3×3 submanifold sparse convolution layer with ReLU.
///
/// # Examples
///
/// ```
/// use cooper_pointcloud::VoxelCoord;
/// use cooper_spod::sparse_conv::SparseConv3;
/// use cooper_spod::SparseTensor3;
///
/// let layer = SparseConv3::seeded(2, 4, 11);
/// let mut input = SparseTensor3::new(2);
/// input.set(VoxelCoord::new(0, 0, 0), vec![1.0, 0.5]);
/// let out = layer.forward(&input);
/// assert_eq!(out.active_sites(), 1); // submanifold: same active set
/// assert_eq!(out.channels(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseConv3 {
    in_channels: usize,
    out_channels: usize,
    /// Kernel weights indexed `[offset][out][in]` where `offset` encodes
    /// the 27 positions of the 3×3×3 window.
    kernel: Vec<Vec<f32>>,
    bias: Vec<f32>,
}

/// The 27 kernel offsets in a fixed order.
fn kernel_offsets() -> impl Iterator<Item = (i32, i32, i32)> {
    (-1..=1).flat_map(|dz| (-1..=1).flat_map(move |dy| (-1..=1).map(move |dx| (dx, dy, dz))))
}

/// A neighbour-index table ("rulebook") for submanifold convolution over
/// a fixed active set: for every site, the flat index of each of its 27
/// kernel neighbours in the sorted coordinate array, or `-1` when that
/// neighbour is inactive.
///
/// Submanifold convolutions never change the active set, so one rulebook
/// built from the VFE output serves *every* conv layer in the stack —
/// the detector builds it once per featurize and reuses it as a scratch
/// arena across frames (the backing `Vec` keeps its capacity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvRulebook {
    site_count: usize,
    /// `site_count × 27` neighbour indices in [`kernel_offsets`] order.
    neighbors: Vec<i32>,
}

impl ConvRulebook {
    /// An empty rulebook (zero sites) — the reusable-arena starting
    /// state.
    pub fn new() -> Self {
        ConvRulebook::default()
    }

    /// Number of sites the table covers.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// Builds a rulebook for a sorted active set.
    pub fn build(coords: &[VoxelCoord], executor: &Executor) -> Self {
        let mut rulebook = ConvRulebook::new();
        rulebook.rebuild(coords, executor);
        rulebook
    }

    /// Rebuilds the table in place for a (sorted) active set, reusing
    /// the backing allocation. Neighbour lookups are binary searches
    /// over `coords`, chunk-parallel across `executor`.
    pub fn rebuild(&mut self, coords: &[VoxelCoord], executor: &Executor) {
        let offsets: Vec<(i32, i32, i32)> = kernel_offsets().collect();
        let parts = executor.map_chunks(coords, CONV_CHUNK_SITES, |_, chunk| {
            let mut table = Vec::with_capacity(chunk.len() * 27);
            for coord in chunk {
                for &(dx, dy, dz) in &offsets {
                    let neighbor = VoxelCoord::new(coord.x + dx, coord.y + dy, coord.z + dz);
                    let index = match coords.binary_search(&neighbor) {
                        Ok(i) => i as i32,
                        Err(_) => -1,
                    };
                    table.push(index);
                }
            }
            table
        });
        self.neighbors.clear();
        self.neighbors.reserve(coords.len() * 27);
        for part in parts {
            self.neighbors.extend_from_slice(&part);
        }
        self.site_count = coords.len();
    }
}

impl SparseConv3 {
    /// Creates a layer with deterministic seeded weights scaled for a
    /// 27-tap kernel.
    ///
    /// # Panics
    ///
    /// Panics if either channel count is zero.
    pub fn seeded(in_channels: usize, out_channels: usize, seed: u64) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * 27) as f64;
        let bound = (3.0 / fan_in).sqrt() as f32;
        let kernel = (0..27)
            .map(|_| {
                (0..in_channels * out_channels)
                    .map(|_| rng.gen_range(-bound..bound))
                    .collect()
            })
            .collect();
        SparseConv3 {
            in_channels,
            out_channels,
            kernel,
            bias: vec![0.0; out_channels],
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The 27 kernel taps, each `out_channels × in_channels` row-major.
    pub fn kernel_taps(&self) -> &[Vec<f32>] {
        &self.kernel
    }

    /// The bias vector.
    pub fn bias_values(&self) -> &[f32] {
        &self.bias
    }

    /// Reconstructs a layer from raw parameters (weight-file loading).
    ///
    /// # Panics
    ///
    /// Panics when the parameter shapes do not match the dimensions.
    pub fn from_parameters(
        in_channels: usize,
        out_channels: usize,
        kernel: Vec<Vec<f32>>,
        bias: Vec<f32>,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert_eq!(kernel.len(), 27, "kernel must have 27 taps");
        assert!(
            kernel.iter().all(|t| t.len() == in_channels * out_channels),
            "kernel tap size mismatch"
        );
        assert_eq!(bias.len(), out_channels, "bias length mismatch");
        SparseConv3 {
            in_channels,
            out_channels,
            kernel,
            bias,
        }
    }

    /// Applies the convolution followed by ReLU.
    ///
    /// Submanifold semantics: the output active set equals the input
    /// active set, which prevents the "dilation" of the sparse pattern
    /// that ordinary convolutions cause (the key trick from SECOND's
    /// middle layers).
    ///
    /// # Panics
    ///
    /// Panics when `input.channels() != self.in_channels()`.
    pub fn forward(&self, input: &SparseTensor3) -> SparseTensor3 {
        let executor = Executor::sequential();
        let rulebook = ConvRulebook::build(input.coord_slice(), &executor);
        self.forward_with(input, &rulebook, &executor)
    }

    /// Applies the convolution using a prebuilt [`ConvRulebook`] over
    /// `executor`, chunk-parallel across sites. Because the active set
    /// is fixed, per-site accumulation (bias, then the 27 taps in fixed
    /// offset order) is independent of chunking — the output is
    /// bit-identical at any thread count and to the sequential
    /// [`SparseConv3::forward`].
    ///
    /// # Panics
    ///
    /// Panics when the input channel count or the rulebook's site count
    /// does not match the input.
    pub fn forward_with(
        &self,
        input: &SparseTensor3,
        rulebook: &ConvRulebook,
        executor: &Executor,
    ) -> SparseTensor3 {
        assert_eq!(input.channels(), self.in_channels, "channel mismatch");
        assert_eq!(
            rulebook.site_count(),
            input.active_sites(),
            "rulebook site count mismatch"
        );
        let in_c = self.in_channels;
        let out_c = self.out_channels;
        let feats = input.feature_slice();
        let parts = executor.map_chunks(input.coord_slice(), CONV_CHUNK_SITES, |ci, chunk| {
            let base = ci * CONV_CHUNK_SITES;
            let mut out_chunk = vec![0.0f32; chunk.len() * out_c];
            for s in 0..chunk.len() {
                let site = base + s;
                let acc = &mut out_chunk[s * out_c..(s + 1) * out_c];
                acc.copy_from_slice(&self.bias);
                let taps = &rulebook.neighbors[site * 27..site * 27 + 27];
                for (k, &j) in taps.iter().enumerate() {
                    if j < 0 {
                        continue;
                    }
                    let j = j as usize;
                    let features = &feats[j * in_c..(j + 1) * in_c];
                    let w = &self.kernel[k];
                    for (o, a) in acc.iter_mut().enumerate() {
                        let row = &w[o * in_c..(o + 1) * in_c];
                        *a += row
                            .iter()
                            .zip(features)
                            .map(|(wi, xi)| wi * xi)
                            .sum::<f32>();
                    }
                }
                relu_in_place(acc);
            }
            out_chunk
        });
        let mut features = Vec::with_capacity(input.active_sites() * out_c);
        for part in parts {
            features.extend_from_slice(&part);
        }
        SparseTensor3::from_sorted_parts(out_c, input.coord_slice().to_vec(), features)
    }
}

/// A dense reference implementation used to validate the sparse engine:
/// materializes the full grid over the active bounding box and convolves
/// naively. Only for tests/benches — cost scales with volume.
pub fn dense_reference_conv(layer: &SparseConv3, input: &SparseTensor3) -> SparseTensor3 {
    let mut out = SparseTensor3::new(layer.out_channels());
    for (coord, _) in input.iter() {
        let mut acc = layer.bias.clone();
        for (k, (dx, dy, dz)) in kernel_offsets().enumerate() {
            let neighbor = VoxelCoord::new(coord.x + dx, coord.y + dy, coord.z + dz);
            let zeros = vec![0.0; layer.in_channels()];
            let features = input.get(neighbor).unwrap_or(&zeros);
            let w = &layer.kernel[k];
            for (o, a) in acc.iter_mut().enumerate() {
                let row = &w[o * layer.in_channels..(o + 1) * layer.in_channels];
                *a += row
                    .iter()
                    .zip(features)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f32>();
            }
        }
        relu_in_place(&mut acc);
        out.set(*coord, acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_with(coords: &[(i32, i32, i32)], channels: usize) -> SparseTensor3 {
        let mut t = SparseTensor3::new(channels);
        for (i, &(x, y, z)) in coords.iter().enumerate() {
            let f: Vec<f32> = (0..channels).map(|c| (i + c + 1) as f32 * 0.1).collect();
            t.set(VoxelCoord::new(x, y, z), f);
        }
        t
    }

    #[test]
    fn submanifold_preserves_active_set() {
        let input = tensor_with(&[(0, 0, 0), (5, 5, 5), (1, 0, 0)], 3);
        let layer = SparseConv3::seeded(3, 6, 1);
        let out = layer.forward(&input);
        assert_eq!(out.active_sites(), input.active_sites());
        for (coord, _) in input.iter() {
            assert!(out.get(*coord).is_some(), "lost site {coord}");
        }
    }

    #[test]
    fn isolated_site_sees_only_center_tap() {
        let input = tensor_with(&[(10, 10, 10)], 2);
        let layer = SparseConv3::seeded(2, 2, 5);
        let out = layer.forward(&input);
        // Equivalent dense computation agrees.
        let dense = dense_reference_conv(&layer, &input);
        assert_eq!(out, dense);
    }

    #[test]
    fn matches_dense_reference_on_cluster() {
        let coords: Vec<(i32, i32, i32)> = (0..3)
            .flat_map(|x| (0..3).flat_map(move |y| (0..2).map(move |z| (x, y, z))))
            .collect();
        let input = tensor_with(&coords, 4);
        let layer = SparseConv3::seeded(4, 5, 9);
        let sparse_out = layer.forward(&input);
        let dense_out = dense_reference_conv(&layer, &input);
        assert_eq!(sparse_out.active_sites(), dense_out.active_sites());
        for (coord, f) in sparse_out.iter() {
            let g = dense_out.get(*coord).unwrap();
            for (a, b) in f.iter().zip(g) {
                assert!((a - b).abs() < 1e-5, "mismatch at {coord}");
            }
        }
    }

    #[test]
    fn neighbors_influence_output() {
        let lone = tensor_with(&[(0, 0, 0)], 2);
        let paired = tensor_with(&[(0, 0, 0), (1, 0, 0)], 2);
        let layer = SparseConv3::seeded(2, 3, 2);
        let a = layer.forward(&lone);
        let b = layer.forward(&paired);
        let fa = a.get(VoxelCoord::new(0, 0, 0)).unwrap();
        let fb = b.get(VoxelCoord::new(0, 0, 0)).unwrap();
        assert_ne!(fa, fb, "neighbour had no effect");
    }

    #[test]
    fn outputs_are_non_negative_after_relu() {
        let input = tensor_with(&[(0, 0, 0), (0, 1, 0), (1, 1, 1)], 3);
        let layer = SparseConv3::seeded(3, 8, 4);
        let out = layer.forward(&input);
        for (_, f) in out.iter() {
            assert!(f.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let input = tensor_with(&[(0, 0, 0), (2, 1, 0)], 2);
        let a = SparseConv3::seeded(2, 4, 77).forward(&input);
        let b = SparseConv3::seeded(2, 4, 77).forward(&input);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let input = tensor_with(&[(0, 0, 0)], 2);
        let layer = SparseConv3::seeded(3, 4, 0);
        let _ = layer.forward(&input);
    }

    #[test]
    fn empty_input_empty_output() {
        let layer = SparseConv3::seeded(2, 2, 0);
        let out = layer.forward(&SparseTensor3::new(2));
        assert!(out.is_empty());
    }

    #[test]
    fn rulebook_forward_matches_sequential_at_any_thread_count() {
        let coords: Vec<(i32, i32, i32)> = (0..4)
            .flat_map(|x| (0..4).flat_map(move |y| (0..3).map(move |z| (x, y, z))))
            .collect();
        let input = tensor_with(&coords, 3);
        let layer = SparseConv3::seeded(3, 5, 21);
        let sequential = layer.forward(&input);
        for threads in [1, 2, 4] {
            let executor = Executor::new(Some(threads));
            let rulebook = ConvRulebook::build(input.coord_slice(), &executor);
            let parallel = layer.forward_with(&input, &rulebook, &executor);
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn rulebook_is_reusable_across_layers() {
        let input = tensor_with(&[(0, 0, 0), (1, 0, 0), (0, 1, 0)], 2);
        let executor = Executor::sequential();
        let mut rulebook = ConvRulebook::new();
        assert_eq!(rulebook.site_count(), 0);
        rulebook.rebuild(input.coord_slice(), &executor);
        let a = SparseConv3::seeded(2, 4, 1);
        let b = SparseConv3::seeded(4, 4, 2);
        // Same active set through the stack: one rulebook serves both.
        let mid = a.forward_with(&input, &rulebook, &executor);
        let out = b.forward_with(&mid, &rulebook, &executor);
        assert_eq!(out, b.forward(&a.forward(&input)));
    }

    #[test]
    #[should_panic(expected = "rulebook site count mismatch")]
    fn stale_rulebook_rejected() {
        let input = tensor_with(&[(0, 0, 0), (1, 0, 0)], 2);
        let layer = SparseConv3::seeded(2, 2, 3);
        let rulebook = ConvRulebook::new();
        let _ = layer.forward_with(&input, &rulebook, &Executor::sequential());
    }
}
