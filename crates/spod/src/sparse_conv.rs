//! Submanifold sparse 3-D convolution — SPOD's middle layers.
//!
//! "Then a sparse convolutional middle layer is applied. Sparse CNN
//! offers computational benefits in LiDAR-based detection because the
//! grouping step for point clouds will generate a large number of sparse
//! voxels. In this approach, output points are not computed if there is
//! no related input points" (§III-C).
//!
//! The implementation follows the rulebook formulation used by
//! SECOND/SparseConvNet: for every *active* output site (submanifold
//! convolution keeps the active set identical to the input's) gather the
//! active neighbours within the kernel window and accumulate
//! `W[offset] · features`. Empty neighbourhood positions contribute
//! nothing, so cost scales with the number of active sites — not the
//! grid volume.

use cooper_pointcloud::VoxelCoord;
use serde::{Deserialize, Serialize};

use crate::nn::relu_in_place;
use crate::tensor::SparseTensor3;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 3×3×3 submanifold sparse convolution layer with ReLU.
///
/// # Examples
///
/// ```
/// use cooper_pointcloud::VoxelCoord;
/// use cooper_spod::sparse_conv::SparseConv3;
/// use cooper_spod::SparseTensor3;
///
/// let layer = SparseConv3::seeded(2, 4, 11);
/// let mut input = SparseTensor3::new(2);
/// input.set(VoxelCoord::new(0, 0, 0), vec![1.0, 0.5]);
/// let out = layer.forward(&input);
/// assert_eq!(out.active_sites(), 1); // submanifold: same active set
/// assert_eq!(out.channels(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseConv3 {
    in_channels: usize,
    out_channels: usize,
    /// Kernel weights indexed `[offset][out][in]` where `offset` encodes
    /// the 27 positions of the 3×3×3 window.
    kernel: Vec<Vec<f32>>,
    bias: Vec<f32>,
}

/// The 27 kernel offsets in a fixed order.
fn kernel_offsets() -> impl Iterator<Item = (i32, i32, i32)> {
    (-1..=1).flat_map(|dz| (-1..=1).flat_map(move |dy| (-1..=1).map(move |dx| (dx, dy, dz))))
}

impl SparseConv3 {
    /// Creates a layer with deterministic seeded weights scaled for a
    /// 27-tap kernel.
    ///
    /// # Panics
    ///
    /// Panics if either channel count is zero.
    pub fn seeded(in_channels: usize, out_channels: usize, seed: u64) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * 27) as f64;
        let bound = (3.0 / fan_in).sqrt() as f32;
        let kernel = (0..27)
            .map(|_| {
                (0..in_channels * out_channels)
                    .map(|_| rng.gen_range(-bound..bound))
                    .collect()
            })
            .collect();
        SparseConv3 {
            in_channels,
            out_channels,
            kernel,
            bias: vec![0.0; out_channels],
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The 27 kernel taps, each `out_channels × in_channels` row-major.
    pub fn kernel_taps(&self) -> &[Vec<f32>] {
        &self.kernel
    }

    /// The bias vector.
    pub fn bias_values(&self) -> &[f32] {
        &self.bias
    }

    /// Reconstructs a layer from raw parameters (weight-file loading).
    ///
    /// # Panics
    ///
    /// Panics when the parameter shapes do not match the dimensions.
    pub fn from_parameters(
        in_channels: usize,
        out_channels: usize,
        kernel: Vec<Vec<f32>>,
        bias: Vec<f32>,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be positive"
        );
        assert_eq!(kernel.len(), 27, "kernel must have 27 taps");
        assert!(
            kernel.iter().all(|t| t.len() == in_channels * out_channels),
            "kernel tap size mismatch"
        );
        assert_eq!(bias.len(), out_channels, "bias length mismatch");
        SparseConv3 {
            in_channels,
            out_channels,
            kernel,
            bias,
        }
    }

    /// Applies the convolution followed by ReLU.
    ///
    /// Submanifold semantics: the output active set equals the input
    /// active set, which prevents the "dilation" of the sparse pattern
    /// that ordinary convolutions cause (the key trick from SECOND's
    /// middle layers).
    ///
    /// # Panics
    ///
    /// Panics when `input.channels() != self.in_channels()`.
    pub fn forward(&self, input: &SparseTensor3) -> SparseTensor3 {
        assert_eq!(input.channels(), self.in_channels, "channel mismatch");
        let mut out = SparseTensor3::new(self.out_channels);
        for (coord, _) in input.iter() {
            let mut acc = self.bias.clone();
            for (k, (dx, dy, dz)) in kernel_offsets().enumerate() {
                let neighbor = VoxelCoord::new(coord.x + dx, coord.y + dy, coord.z + dz);
                let Some(features) = input.get(neighbor) else {
                    continue;
                };
                let w = &self.kernel[k];
                for (o, a) in acc.iter_mut().enumerate() {
                    let row = &w[o * self.in_channels..(o + 1) * self.in_channels];
                    *a += row
                        .iter()
                        .zip(features)
                        .map(|(wi, xi)| wi * xi)
                        .sum::<f32>();
                }
            }
            relu_in_place(&mut acc);
            out.set(*coord, acc);
        }
        out
    }
}

/// A dense reference implementation used to validate the sparse engine:
/// materializes the full grid over the active bounding box and convolves
/// naively. Only for tests/benches — cost scales with volume.
pub fn dense_reference_conv(layer: &SparseConv3, input: &SparseTensor3) -> SparseTensor3 {
    let mut out = SparseTensor3::new(layer.out_channels());
    for (coord, _) in input.iter() {
        let mut acc = layer.bias.clone();
        for (k, (dx, dy, dz)) in kernel_offsets().enumerate() {
            let neighbor = VoxelCoord::new(coord.x + dx, coord.y + dy, coord.z + dz);
            let zeros = vec![0.0; layer.in_channels()];
            let features = input.get(neighbor).unwrap_or(&zeros);
            let w = &layer.kernel[k];
            for (o, a) in acc.iter_mut().enumerate() {
                let row = &w[o * layer.in_channels..(o + 1) * layer.in_channels];
                *a += row
                    .iter()
                    .zip(features)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f32>();
            }
        }
        relu_in_place(&mut acc);
        out.set(*coord, acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_with(coords: &[(i32, i32, i32)], channels: usize) -> SparseTensor3 {
        let mut t = SparseTensor3::new(channels);
        for (i, &(x, y, z)) in coords.iter().enumerate() {
            let f: Vec<f32> = (0..channels).map(|c| (i + c + 1) as f32 * 0.1).collect();
            t.set(VoxelCoord::new(x, y, z), f);
        }
        t
    }

    #[test]
    fn submanifold_preserves_active_set() {
        let input = tensor_with(&[(0, 0, 0), (5, 5, 5), (1, 0, 0)], 3);
        let layer = SparseConv3::seeded(3, 6, 1);
        let out = layer.forward(&input);
        assert_eq!(out.active_sites(), input.active_sites());
        for (coord, _) in input.iter() {
            assert!(out.get(*coord).is_some(), "lost site {coord}");
        }
    }

    #[test]
    fn isolated_site_sees_only_center_tap() {
        let input = tensor_with(&[(10, 10, 10)], 2);
        let layer = SparseConv3::seeded(2, 2, 5);
        let out = layer.forward(&input);
        // Equivalent dense computation agrees.
        let dense = dense_reference_conv(&layer, &input);
        assert_eq!(out, dense);
    }

    #[test]
    fn matches_dense_reference_on_cluster() {
        let coords: Vec<(i32, i32, i32)> = (0..3)
            .flat_map(|x| (0..3).flat_map(move |y| (0..2).map(move |z| (x, y, z))))
            .collect();
        let input = tensor_with(&coords, 4);
        let layer = SparseConv3::seeded(4, 5, 9);
        let sparse_out = layer.forward(&input);
        let dense_out = dense_reference_conv(&layer, &input);
        assert_eq!(sparse_out.active_sites(), dense_out.active_sites());
        for (coord, f) in sparse_out.iter() {
            let g = dense_out.get(*coord).unwrap();
            for (a, b) in f.iter().zip(g) {
                assert!((a - b).abs() < 1e-5, "mismatch at {coord}");
            }
        }
    }

    #[test]
    fn neighbors_influence_output() {
        let lone = tensor_with(&[(0, 0, 0)], 2);
        let paired = tensor_with(&[(0, 0, 0), (1, 0, 0)], 2);
        let layer = SparseConv3::seeded(2, 3, 2);
        let a = layer.forward(&lone);
        let b = layer.forward(&paired);
        let fa = a.get(VoxelCoord::new(0, 0, 0)).unwrap();
        let fb = b.get(VoxelCoord::new(0, 0, 0)).unwrap();
        assert_ne!(fa, fb, "neighbour had no effect");
    }

    #[test]
    fn outputs_are_non_negative_after_relu() {
        let input = tensor_with(&[(0, 0, 0), (0, 1, 0), (1, 1, 1)], 3);
        let layer = SparseConv3::seeded(3, 8, 4);
        let out = layer.forward(&input);
        for (_, f) in out.iter() {
            assert!(f.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let input = tensor_with(&[(0, 0, 0), (2, 1, 0)], 2);
        let a = SparseConv3::seeded(2, 4, 77).forward(&input);
        let b = SparseConv3::seeded(2, 4, 77).forward(&input);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let input = tensor_with(&[(0, 0, 0)], 2);
        let layer = SparseConv3::seeded(3, 4, 0);
        let _ = layer.forward(&input);
    }

    #[test]
    fn empty_input_empty_output() {
        let layer = SparseConv3::seeded(2, 2, 0);
        let out = layer.forward(&SparseTensor3::new(2));
        assert!(out.is_empty());
    }
}
