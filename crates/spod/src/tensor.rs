//! Sparse 3-D feature tensors.

use std::fmt;

use cooper_pointcloud::VoxelCoord;

/// A sparse rank-3 feature tensor: a feature vector per active voxel
/// coordinate.
///
/// This is the representation flowing through SPOD's middle layers. Only
/// active (occupied) sites are stored; LiDAR grids are typically < 1 %
/// occupied, which is exactly the sparsity the sparse convolution engine
/// exploits.
///
/// Storage is structure-of-arrays: a sorted coordinate array plus one
/// flat `f32` buffer with `channels` values per site. The sorted order
/// keeps every downstream float accumulation deterministic, and the flat
/// layout lets the convolution and BEV stages stream features without
/// per-site pointer chasing.
///
/// # Examples
///
/// ```
/// use cooper_pointcloud::VoxelCoord;
/// use cooper_spod::SparseTensor3;
///
/// let mut t = SparseTensor3::new(4);
/// t.set(VoxelCoord::new(1, 2, 3), vec![1.0, 0.0, 0.0, 0.5]);
/// assert_eq!(t.active_sites(), 1);
/// assert_eq!(t.get(VoxelCoord::new(1, 2, 3)).unwrap()[3], 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor3 {
    channels: usize,
    /// Active coordinates in ascending order.
    coords: Vec<VoxelCoord>,
    /// Flat feature storage, `channels` values per coordinate.
    features: Vec<f32>,
}

impl SparseTensor3 {
    /// Creates an empty tensor with `channels` features per site.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be positive");
        SparseTensor3 {
            channels,
            coords: Vec::new(),
            features: Vec::new(),
        }
    }

    /// Builds a tensor directly from its SoA parts: `coords` must be
    /// strictly ascending and `features` must hold `channels` values per
    /// coordinate. This is the bulk constructor the parallel VFE and
    /// convolution stages use — no per-site insertion cost.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero, the buffer length does not match,
    /// or the coordinates are not strictly ascending.
    pub fn from_sorted_parts(channels: usize, coords: Vec<VoxelCoord>, features: Vec<f32>) -> Self {
        assert!(channels > 0, "channel count must be positive");
        assert_eq!(
            features.len(),
            coords.len() * channels,
            "feature buffer length mismatch"
        );
        assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "coordinates must be strictly ascending"
        );
        SparseTensor3 {
            channels,
            coords,
            features,
        }
    }

    /// Features per site.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of active sites.
    pub fn active_sites(&self) -> usize {
        self.coords.len()
    }

    /// `true` when no site is active.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Sets the feature vector at a site, inserting it in sorted
    /// position or overwriting an existing one. This is the convenience
    /// path for tests and small constructions; bulk builders should use
    /// [`SparseTensor3::from_sorted_parts`].
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != self.channels()`.
    pub fn set(&mut self, coord: VoxelCoord, features: Vec<f32>) {
        assert_eq!(
            features.len(),
            self.channels,
            "feature length mismatch at {coord}"
        );
        match self.coords.binary_search(&coord) {
            Ok(i) => {
                self.features[i * self.channels..(i + 1) * self.channels]
                    .copy_from_slice(&features);
            }
            Err(i) => {
                self.coords.insert(i, coord);
                // Splice the new site's features into the flat buffer.
                let at = i * self.channels;
                self.features.splice(at..at, features);
            }
        }
    }

    /// The feature vector at a site, or `None` when inactive.
    pub fn get(&self, coord: VoxelCoord) -> Option<&[f32]> {
        self.coords
            .binary_search(&coord)
            .ok()
            .map(|i| &self.features[i * self.channels..(i + 1) * self.channels])
    }

    /// The feature slice of the site at `index` (sites are in ascending
    /// coordinate order).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.active_sites()`.
    pub fn feature_at(&self, index: usize) -> &[f32] {
        &self.features[index * self.channels..(index + 1) * self.channels]
    }

    /// Iterates over `(coordinate, features)` in ascending coordinate
    /// order. The fixed order keeps every downstream float accumulation
    /// deterministic run to run.
    pub fn iter(&self) -> impl Iterator<Item = (&VoxelCoord, &[f32])> {
        self.coords
            .iter()
            .zip(self.features.chunks_exact(self.channels))
    }

    /// The active coordinates, in ascending order.
    pub fn coords(&self) -> impl Iterator<Item = &VoxelCoord> {
        self.coords.iter()
    }

    /// The active coordinates as a slice (ascending order) — the SoA
    /// access path for stages that index sites in parallel.
    pub fn coord_slice(&self) -> &[VoxelCoord] {
        &self.coords
    }

    /// The flat feature buffer (`channels` values per coordinate, in
    /// coordinate order).
    pub fn feature_slice(&self) -> &[f32] {
        &self.features
    }

    /// Applies ReLU in place.
    pub fn relu(&mut self) {
        for v in self.features.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// The maximum absolute feature value (0 when empty) — useful for
    /// numeric sanity checks.
    pub fn max_abs(&self) -> f32 {
        self.features.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }
}

impl fmt::Display for SparseTensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse tensor ({} sites × {} channels)",
            self.coords.len(),
            self.channels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_iter() {
        let mut t = SparseTensor3::new(2);
        assert!(t.is_empty());
        t.set(VoxelCoord::new(5, 5, 5), vec![3.0, 4.0]);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0, -2.0]);
        assert_eq!(t.active_sites(), 2);
        assert_eq!(t.get(VoxelCoord::new(0, 0, 0)), Some(&[1.0, -2.0][..]));
        assert_eq!(t.get(VoxelCoord::new(9, 9, 9)), None);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.coords().count(), 2);
        // Out-of-order insertion still yields ascending iteration.
        let order: Vec<_> = t.coords().copied().collect();
        assert_eq!(
            order,
            vec![VoxelCoord::new(0, 0, 0), VoxelCoord::new(5, 5, 5)]
        );
        assert_eq!(t.feature_at(0), &[1.0, -2.0][..]);
        assert_eq!(t.feature_slice(), &[1.0, -2.0, 3.0, 4.0][..]);
    }

    #[test]
    fn set_overwrites() {
        let mut t = SparseTensor3::new(1);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
        t.set(VoxelCoord::new(0, 0, 0), vec![2.0]);
        assert_eq!(t.active_sites(), 1);
        assert_eq!(t.get(VoxelCoord::new(0, 0, 0)), Some(&[2.0][..]));
    }

    #[test]
    fn from_sorted_parts_round_trip() {
        let coords = vec![VoxelCoord::new(0, 0, 0), VoxelCoord::new(0, 0, 2)];
        let t = SparseTensor3::from_sorted_parts(2, coords, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.active_sites(), 2);
        assert_eq!(t.get(VoxelCoord::new(0, 0, 2)), Some(&[3.0, 4.0][..]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_unsorted_parts_panics() {
        let coords = vec![VoxelCoord::new(1, 0, 0), VoxelCoord::new(0, 0, 0)];
        let _ = SparseTensor3::from_sorted_parts(1, coords, vec![1.0, 2.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = SparseTensor3::new(3);
        t.set(VoxelCoord::new(1, 1, 1), vec![-1.0, 0.5, -0.25]);
        t.relu();
        assert_eq!(t.get(VoxelCoord::new(1, 1, 1)), Some(&[0.0, 0.5, 0.0][..]));
    }

    #[test]
    fn max_abs_over_sites() {
        let mut t = SparseTensor3::new(2);
        assert_eq!(t.max_abs(), 0.0);
        t.set(VoxelCoord::new(0, 0, 0), vec![-5.0, 1.0]);
        t.set(VoxelCoord::new(1, 0, 0), vec![2.0, 3.0]);
        assert_eq!(t.max_abs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn wrong_feature_length_panics() {
        let mut t = SparseTensor3::new(3);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_channels_panics() {
        let _ = SparseTensor3::new(0);
    }

    #[test]
    fn display_counts() {
        let t = SparseTensor3::new(4);
        assert!(format!("{t}").contains("0 sites"));
    }
}
