//! Sparse 3-D feature tensors.

use std::collections::BTreeMap;
use std::fmt;

use cooper_pointcloud::VoxelCoord;

/// A sparse rank-3 feature tensor: a feature vector per active voxel
/// coordinate.
///
/// This is the representation flowing through SPOD's middle layers. Only
/// active (occupied) sites are stored; LiDAR grids are typically < 1 %
/// occupied, which is exactly the sparsity the sparse convolution engine
/// exploits.
///
/// # Examples
///
/// ```
/// use cooper_pointcloud::VoxelCoord;
/// use cooper_spod::SparseTensor3;
///
/// let mut t = SparseTensor3::new(4);
/// t.set(VoxelCoord::new(1, 2, 3), vec![1.0, 0.0, 0.0, 0.5]);
/// assert_eq!(t.active_sites(), 1);
/// assert_eq!(t.get(VoxelCoord::new(1, 2, 3)).unwrap()[3], 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor3 {
    channels: usize,
    sites: BTreeMap<VoxelCoord, Vec<f32>>,
}

impl SparseTensor3 {
    /// Creates an empty tensor with `channels` features per site.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be positive");
        SparseTensor3 {
            channels,
            sites: BTreeMap::new(),
        }
    }

    /// Features per site.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of active sites.
    pub fn active_sites(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site is active.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sets the feature vector at a site.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != self.channels()`.
    pub fn set(&mut self, coord: VoxelCoord, features: Vec<f32>) {
        assert_eq!(
            features.len(),
            self.channels,
            "feature length mismatch at {coord}"
        );
        self.sites.insert(coord, features);
    }

    /// The feature vector at a site, or `None` when inactive.
    pub fn get(&self, coord: VoxelCoord) -> Option<&[f32]> {
        self.sites.get(&coord).map(Vec::as_slice)
    }

    /// Iterates over `(coordinate, features)` in ascending coordinate
    /// order. The fixed order keeps every downstream float accumulation
    /// deterministic run to run.
    pub fn iter(&self) -> impl Iterator<Item = (&VoxelCoord, &Vec<f32>)> {
        self.sites.iter()
    }

    /// The active coordinates, in ascending order.
    pub fn coords(&self) -> impl Iterator<Item = &VoxelCoord> {
        self.sites.keys()
    }

    /// Applies ReLU in place.
    pub fn relu(&mut self) {
        for f in self.sites.values_mut() {
            for v in f.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// The maximum absolute feature value (0 when empty) — useful for
    /// numeric sanity checks.
    pub fn max_abs(&self) -> f32 {
        self.sites
            .values()
            .flat_map(|f| f.iter())
            .fold(0.0f32, |acc, v| acc.max(v.abs()))
    }
}

impl fmt::Display for SparseTensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse tensor ({} sites × {} channels)",
            self.sites.len(),
            self.channels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_iter() {
        let mut t = SparseTensor3::new(2);
        assert!(t.is_empty());
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0, -2.0]);
        t.set(VoxelCoord::new(5, 5, 5), vec![3.0, 4.0]);
        assert_eq!(t.active_sites(), 2);
        assert_eq!(t.get(VoxelCoord::new(0, 0, 0)), Some(&[1.0, -2.0][..]));
        assert_eq!(t.get(VoxelCoord::new(9, 9, 9)), None);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.coords().count(), 2);
    }

    #[test]
    fn set_overwrites() {
        let mut t = SparseTensor3::new(1);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
        t.set(VoxelCoord::new(0, 0, 0), vec![2.0]);
        assert_eq!(t.active_sites(), 1);
        assert_eq!(t.get(VoxelCoord::new(0, 0, 0)), Some(&[2.0][..]));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = SparseTensor3::new(3);
        t.set(VoxelCoord::new(1, 1, 1), vec![-1.0, 0.5, -0.25]);
        t.relu();
        assert_eq!(t.get(VoxelCoord::new(1, 1, 1)), Some(&[0.0, 0.5, 0.0][..]));
    }

    #[test]
    fn max_abs_over_sites() {
        let mut t = SparseTensor3::new(2);
        assert_eq!(t.max_abs(), 0.0);
        t.set(VoxelCoord::new(0, 0, 0), vec![-5.0, 1.0]);
        t.set(VoxelCoord::new(1, 0, 0), vec![2.0, 3.0]);
        assert_eq!(t.max_abs(), 5.0);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn wrong_feature_length_panics() {
        let mut t = SparseTensor3::new(3);
        t.set(VoxelCoord::new(0, 0, 0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_channels_panics() {
        let _ = SparseTensor3::new(0);
    }

    #[test]
    fn display_counts() {
        let t = SparseTensor3::new(4);
        assert!(format!("{t}").contains("0 sites"));
    }
}
