//! Spherical-projection densification — SPOD's preprocessing stage.
//!
//! "Specifically in the preprocessing, to obtain a more compact
//! representation, point clouds are projected onto a sphere … to
//! generate a dense representation" (§III-C, following SqueezeSeg). For
//! sparse (16-beam) input the projection plus gap interpolation adds
//! synthetic returns between real ones on the same surface, raising the
//! voxel occupancy the detector sees.

use std::collections::HashSet;

use cooper_pointcloud::{PointCloud, RangeImage, RangeImageConfig};
use serde::{Deserialize, Serialize};

/// Preprocessing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// The spherical grid used for projection.
    pub range_image: RangeImageConfig,
    /// Number of densification passes (0 disables preprocessing).
    pub densify_passes: usize,
}

impl PreprocessConfig {
    /// Disabled preprocessing (dense 64-beam input does not need it).
    pub fn disabled() -> Self {
        PreprocessConfig {
            range_image: RangeImageConfig::vlp16(),
            densify_passes: 0,
        }
    }

    /// The default for sparse 16-beam input: a VLP-16-shaped grid with
    /// two interpolation passes.
    ///
    /// The densification ablation (`cargo run -p cooper-bench --bin
    /// ablations`) shows the interpolated returns barely move detection
    /// at 0.5 m voxel resolution — the voxel aggregates already absorb
    /// small gaps — so the default keeps the paper's architecture
    /// without relying on it. A taller grid (2× rows) enables vertical
    /// between-beam interpolation for experiments that want it.
    pub fn sparse_default() -> Self {
        PreprocessConfig {
            range_image: RangeImageConfig::vlp16(),
            densify_passes: 2,
        }
    }
}

/// Applies spherical densification: the original points are kept verbatim
/// and the interpolated returns are appended.
///
/// With `densify_passes == 0` this is a plain clone.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud};
/// use cooper_spod::preprocess::{densify, PreprocessConfig};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(10.0, 0.0, 0.0), 0.5));
/// let out = densify(&cloud, &PreprocessConfig::sparse_default());
/// assert!(out.len() >= cloud.len());
/// ```
pub fn densify(cloud: &PointCloud, config: &PreprocessConfig) -> PointCloud {
    if config.densify_passes == 0 {
        return cloud.clone();
    }
    let mut image = RangeImage::project(cloud, config.range_image);
    let rows = config.range_image.rows;
    let cols = config.range_image.cols;
    let mut originally_occupied = HashSet::new();
    for row in 0..rows {
        for col in 0..cols {
            if image.range_at(row, col).is_some() {
                originally_occupied.insert((row, col));
            }
        }
    }
    for _ in 0..config.densify_passes {
        let filled = image.densify_pass() + image.densify_vertical_pass();
        if filled == 0 {
            break;
        }
    }
    let mut out = cloud.clone();
    for row in 0..rows {
        for col in 0..cols {
            if originally_occupied.contains(&(row, col)) {
                continue;
            }
            if let Some(point) = image.point_at(row, col) {
                out.push(point);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Vec3;
    use cooper_pointcloud::Point;

    #[test]
    fn disabled_preprocessing_is_identity() {
        let cloud: PointCloud = (0..10)
            .map(|i| Point::new(Vec3::new(5.0 + i as f64, 0.0, 0.0), 0.5))
            .collect();
        let out = densify(&cloud, &PreprocessConfig::disabled());
        assert_eq!(out, cloud);
    }

    #[test]
    fn densify_keeps_originals_and_adds_fills() {
        // Points along a wall with azimuth gaps: densification bridges them.
        let cfg = PreprocessConfig::sparse_default();
        let mut cloud = PointCloud::new();
        for i in 0..40 {
            // Every second azimuth column around the front.
            let az =
                (i as f64 - 20.0) * 2.0 * (std::f64::consts::TAU / cfg.range_image.cols as f64);
            cloud.push(Point::new(
                Vec3::new(10.0 * az.cos(), 10.0 * az.sin(), 0.0),
                0.5,
            ));
        }
        let out = densify(&cloud, &cfg);
        assert!(out.len() > cloud.len(), "nothing filled: {}", out.len());
        // Originals are preserved verbatim at the front of the cloud.
        for (a, b) in cloud.iter().zip(out.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_cloud_stays_empty() {
        let out = densify(&PointCloud::new(), &PreprocessConfig::sparse_default());
        assert!(out.is_empty());
    }
}
