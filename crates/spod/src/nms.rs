//! Non-maximum suppression over scored oriented boxes.

use crate::detector::Detection;

/// Greedy score-sorted non-maximum suppression using BEV IoU.
///
/// Detections are processed best-first; any detection whose BEV IoU with
/// an already-kept detection of the *same class* exceeds `iou_threshold`
/// is suppressed.
///
/// # Panics
///
/// Panics when `iou_threshold` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Obb3, Vec3};
/// use cooper_lidar_sim::ObjectClass;
/// use cooper_spod::{non_max_suppression, Detection};
///
/// let make = |x: f64, score: f32| Detection {
///     class: ObjectClass::Car,
///     obb: Obb3::new(Vec3::new(x, 0.0, 0.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
///     score,
/// };
/// let kept = non_max_suppression(vec![make(0.0, 0.9), make(0.2, 0.7), make(20.0, 0.8)], 0.3);
/// assert_eq!(kept.len(), 2); // the 0.7 overlaps the 0.9 and is dropped
/// ```
pub fn non_max_suppression(detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
    non_max_suppression_with_distance(detections, iou_threshold, 0.0)
}

/// Like [`non_max_suppression`], additionally suppressing same-class
/// detections whose BEV centers are within `min_center_distance ×
/// min(box lengths)` of a kept detection.
///
/// Regression scatter can place two boxes on the same object with low
/// mutual IoU; pure IoU suppression keeps both. Distance suppression
/// (scaled by object length so pedestrians are not over-merged) removes
/// such duplicates. `min_center_distance = 0` disables the extra rule.
///
/// # Panics
///
/// Panics when `iou_threshold` is not in `[0, 1]` or
/// `min_center_distance` is negative.
pub fn non_max_suppression_with_distance(
    mut detections: Vec<Detection>,
    iou_threshold: f64,
    min_center_distance: f64,
) -> Vec<Detection> {
    assert!(
        (0.0..=1.0).contains(&iou_threshold),
        "IoU threshold must be in [0, 1]"
    );
    assert!(
        min_center_distance >= 0.0,
        "distance factor must be non-negative"
    );
    detections.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut kept: Vec<Detection> = Vec::new();
    'candidates: for det in detections {
        for survivor in &kept {
            if survivor.class != det.class {
                continue;
            }
            if survivor.obb.iou_bev(&det.obb) > iou_threshold {
                continue 'candidates;
            }
            let scale = survivor.obb.size.x.min(det.obb.size.x);
            if min_center_distance > 0.0
                && survivor.obb.center_distance_bev(&det.obb) < min_center_distance * scale
            {
                continue 'candidates;
            }
        }
        kept.push(det);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Obb3, Vec3};
    use cooper_lidar_sim::ObjectClass;

    fn det(class: ObjectClass, x: f64, y: f64, score: f32) -> Detection {
        Detection {
            class,
            obb: Obb3::new(Vec3::new(x, y, 0.0), Vec3::new(4.5, 1.8, 1.5), 0.0),
            score,
        }
    }

    #[test]
    fn keeps_best_of_overlapping_cluster() {
        let kept = non_max_suppression(
            vec![
                det(ObjectClass::Car, 0.0, 0.0, 0.6),
                det(ObjectClass::Car, 0.3, 0.0, 0.9),
                det(ObjectClass::Car, -0.2, 0.1, 0.7),
            ],
            0.3,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn distant_detections_survive() {
        let kept = non_max_suppression(
            vec![
                det(ObjectClass::Car, 0.0, 0.0, 0.9),
                det(ObjectClass::Car, 10.0, 0.0, 0.8),
                det(ObjectClass::Car, 0.0, 10.0, 0.7),
            ],
            0.3,
        );
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn different_classes_do_not_suppress() {
        let kept = non_max_suppression(
            vec![
                det(ObjectClass::Car, 0.0, 0.0, 0.9),
                det(ObjectClass::Cyclist, 0.0, 0.0, 0.5),
            ],
            0.3,
        );
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn output_sorted_by_score() {
        let kept = non_max_suppression(
            vec![
                det(ObjectClass::Car, 0.0, 0.0, 0.5),
                det(ObjectClass::Car, 10.0, 0.0, 0.9),
                det(ObjectClass::Car, 20.0, 0.0, 0.7),
            ],
            0.3,
        );
        let scores: Vec<f32> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(non_max_suppression(vec![], 0.5).is_empty());
    }

    #[test]
    fn kept_set_is_conflict_free() {
        let mut dets = Vec::new();
        for i in 0..20 {
            dets.push(det(
                ObjectClass::Car,
                (i % 5) as f64 * 1.0,
                0.0,
                0.5 + (i as f32) * 0.01,
            ));
        }
        let kept = non_max_suppression(dets, 0.25);
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                assert!(kept[i].obb.iou_bev(&kept[j].obb) <= 0.25);
            }
        }
    }

    #[test]
    #[should_panic(expected = "IoU threshold")]
    fn bad_threshold_panics() {
        let _ = non_max_suppression(vec![], 1.5);
    }
}
