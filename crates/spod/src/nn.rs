//! Minimal neural-network building blocks: linear layers, activations,
//! losses and SGD.
//!
//! Everything SPOD learns is expressed with these primitives; there is no
//! external deep-learning dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense linear (fully connected) layer `y = W·x + b`.
///
/// # Examples
///
/// ```
/// use cooper_spod::nn::Linear;
///
/// let layer = Linear::seeded(3, 2, 42);
/// let y = layer.forward(&[1.0, 0.5, -0.5]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    /// Row-major weights: `w[out * in_dim + in]`.
    w: Vec<f32>,
    b: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights drawn from a seeded
    /// RNG, so the same seed always yields the same network.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn seeded(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt() as f32;
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    /// Creates a zero-initialized layer (for trainable heads that start
    /// neutral).
    pub fn zeros(in_dim: usize, out_dim: usize) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        Linear {
            in_dim,
            out_dim,
            w: vec![0.0; in_dim * out_dim],
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The row-major weight matrix (`out_dim × in_dim` entries).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    /// The bias vector.
    pub fn biases(&self) -> &[f32] {
        &self.b
    }

    /// Reconstructs a layer from raw parameters (weight-file loading).
    ///
    /// # Panics
    ///
    /// Panics when the parameter lengths do not match the dimensions.
    pub fn from_parameters(in_dim: usize, out_dim: usize, w: Vec<f32>, b: Vec<f32>) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        assert_eq!(w.len(), in_dim * out_dim, "weight length mismatch");
        assert_eq!(b.len(), out_dim, "bias length mismatch");
        Linear {
            in_dim,
            out_dim,
            w,
            b,
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>();
        }
        y
    }

    /// Forward pass into a caller-provided buffer, so hot loops reuse
    /// one allocation across calls. The buffer is cleared and refilled;
    /// the arithmetic (and therefore the result bits) matches
    /// [`Linear::forward`] exactly.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != in_dim`.
    pub fn forward_into(&self, x: &[f32], y: &mut Vec<f32>) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        y.clear();
        y.extend_from_slice(&self.b);
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>();
        }
    }

    /// Forward pass of a single-output layer without allocating: the
    /// scalar `w·x + b`. Bitwise equal to `forward(x)[0]`.
    ///
    /// # Panics
    ///
    /// Panics when `out_dim != 1` or `x.len() != in_dim`.
    pub fn forward_scalar(&self, x: &[f32]) -> f32 {
        assert_eq!(self.out_dim, 1, "forward_scalar needs a 1-output layer");
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        self.b[0] + self.w.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>()
    }

    /// One SGD step on a single output unit `out` given input `x` and the
    /// gradient `dl_dy` of the loss w.r.t. that unit's pre-activation.
    ///
    /// # Panics
    ///
    /// Panics when `out >= out_dim` or `x.len() != in_dim`.
    pub fn sgd_step(&mut self, out: usize, x: &[f32], dl_dy: f32, learning_rate: f32) {
        assert!(out < self.out_dim, "output index out of range");
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let row = &mut self.w[out * self.in_dim..(out + 1) * self.in_dim];
        for (w, xi) in row.iter_mut().zip(x) {
            *w -= learning_rate * dl_dy * xi;
        }
        self.b[out] -= learning_rate * dl_dy;
    }

    /// L2 norm of all parameters — a cheap training-health telemetry.
    pub fn parameter_norm(&self) -> f32 {
        self.w
            .iter()
            .chain(self.b.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }
}

/// ReLU applied to a slice, in place.
pub fn relu_in_place(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy loss for a sigmoid output given the logit.
///
/// `target` must be 0.0 or 1.0.
pub fn bce_with_logit(logit: f32, target: f32) -> f32 {
    // log(1 + exp(-|x|)) + max(x, 0) - x·t, the stable form.
    let max_part = logit.max(0.0);
    max_part - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_with_logit`] w.r.t. the logit: `σ(x) − t`.
pub fn bce_with_logit_grad(logit: f32, target: f32) -> f32 {
    sigmoid(logit) - target
}

/// Smooth-L1 (Huber, δ = 1) loss used for box regression.
pub fn smooth_l1(error: f32) -> f32 {
    let a = error.abs();
    if a < 1.0 {
        0.5 * error * error
    } else {
        a - 0.5
    }
}

/// Gradient of [`smooth_l1`] w.r.t. the error.
pub fn smooth_l1_grad(error: f32) -> f32 {
    error.clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_layers_are_reproducible() {
        let a = Linear::seeded(4, 3, 7);
        let b = Linear::seeded(4, 3, 7);
        assert_eq!(a, b);
        let c = Linear::seeded(4, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn forward_dimensions() {
        let l = Linear::seeded(5, 2, 0);
        assert_eq!(l.in_dim(), 5);
        assert_eq!(l.out_dim(), 2);
        assert_eq!(l.forward(&[0.0; 5]).len(), 2);
        // Zero input yields the bias (zero at init).
        assert_eq!(l.forward(&[0.0; 5]), vec![0.0, 0.0]);
    }

    #[test]
    fn forward_into_and_scalar_match_forward() {
        let l = Linear::seeded(6, 3, 13);
        let x = [0.3, -0.7, 1.2, 0.0, -2.0, 0.5];
        let direct = l.forward(&x);
        let mut buf = vec![99.0; 1];
        l.forward_into(&x, &mut buf);
        assert_eq!(buf, direct);
        let scalar_layer = Linear::seeded(6, 1, 14);
        assert_eq!(scalar_layer.forward_scalar(&x), scalar_layer.forward(&x)[0]);
    }

    #[test]
    fn zeros_layer_outputs_zero() {
        let l = Linear::zeros(3, 1);
        assert_eq!(l.forward(&[1.0, 2.0, 3.0]), vec![0.0]);
        assert_eq!(l.parameter_norm(), 0.0);
    }

    #[test]
    fn sgd_learns_a_linear_function() {
        // Fit y = 2·x0 − x1 + 0.5 with plain SGD.
        let mut layer = Linear::zeros(2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4000 {
            let x = [rng.gen_range(-1.0..1.0f32), rng.gen_range(-1.0..1.0f32)];
            let target = 2.0 * x[0] - x[1] + 0.5;
            let y = layer.forward(&x)[0];
            layer.sgd_step(0, &x, y - target, 0.05);
        }
        let test = layer.forward(&[0.3, -0.2])[0];
        let expect = 2.0 * 0.3 + 0.2 + 0.5;
        assert!((test - expect).abs() < 0.02, "{test} vs {expect}");
    }

    #[test]
    fn logistic_regression_separates() {
        // Learn x > 0 with BCE.
        let mut layer = Linear::zeros(1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4000 {
            let x = [rng.gen_range(-1.0..1.0f32)];
            let target = if x[0] > 0.0 { 1.0 } else { 0.0 };
            let logit = layer.forward(&x)[0];
            layer.sgd_step(0, &x, bce_with_logit_grad(logit, target), 0.1);
        }
        assert!(sigmoid(layer.forward(&[0.8])[0]) > 0.9);
        assert!(sigmoid(layer.forward(&[-0.8])[0]) < 0.1);
    }

    #[test]
    fn sigmoid_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        // Extreme values stay finite.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn bce_matches_definition() {
        for (logit, target) in [(0.7f32, 1.0f32), (-1.3, 0.0), (2.0, 0.0), (-2.0, 1.0)] {
            let p = sigmoid(logit);
            let direct = -(target * p.ln() + (1.0 - target) * (1.0 - p).ln());
            assert!((bce_with_logit(logit, target) - direct).abs() < 1e-5);
        }
        // Gradient is σ − t.
        assert!((bce_with_logit_grad(0.0, 1.0) + 0.5).abs() < 1e-7);
    }

    #[test]
    fn smooth_l1_shape() {
        assert_eq!(smooth_l1(0.0), 0.0);
        assert!((smooth_l1(0.5) - 0.125).abs() < 1e-7);
        assert!((smooth_l1(2.0) - 1.5).abs() < 1e-7);
        assert_eq!(smooth_l1_grad(0.5), 0.5);
        assert_eq!(smooth_l1_grad(3.0), 1.0);
        assert_eq!(smooth_l1_grad(-3.0), -1.0);
    }

    #[test]
    fn relu_in_place_works() {
        let mut x = [1.0, -1.0, 0.0, -0.5];
        relu_in_place(&mut x);
        assert_eq!(x, [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_checks_dims() {
        let l = Linear::seeded(3, 1, 0);
        let _ = l.forward(&[1.0]);
    }
}
