//! Per-stage micro-benchmarks of the Cooper pipeline: wire codec,
//! alignment transform, voxelization, VFE, sparse convolution, BEV
//! collapse. Useful for tracking where detection time goes (context for
//! Figure 9).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cooper_core::alignment_transform;
use cooper_core::report::EvaluationConfig;
use cooper_lidar_sim::scenario::tj_scenario_1;
use cooper_lidar_sim::{LidarScanner, PoseEstimate};
use cooper_pointcloud::{decode_cloud, encode_cloud, VoxelGrid};
use cooper_spod::bev::BevMap;
use cooper_spod::sparse_conv::SparseConv3;
use cooper_spod::vfe::VoxelFeatureEncoder;
use cooper_spod::SpodConfig;

fn bench_stages(c: &mut Criterion) {
    let scenario = tj_scenario_1();
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let scan = scanner.scan(&scenario.world, &scenario.observers[0], 1);
    let config = SpodConfig::default();
    let eval_config = EvaluationConfig::default();

    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(20);

    group.bench_function("codec_encode_scan", |b| {
        b.iter(|| black_box(encode_cloud(&scan).expect("encodes")))
    });
    let encoded = encode_cloud(&scan).expect("encodes");
    group.bench_function("codec_decode_scan", |b| {
        b.iter(|| black_box(decode_cloud(&encoded).expect("decodes")))
    });

    let est_a = PoseEstimate::from_pose(&scenario.observers[0], &eval_config.origin);
    let est_b = PoseEstimate::from_pose(&scenario.observers[1], &eval_config.origin);
    group.bench_function("alignment_transform", |b| {
        b.iter(|| black_box(alignment_transform(&est_b, &est_a, &eval_config.origin)))
    });
    let transform = alignment_transform(&est_b, &est_a, &eval_config.origin);
    group.bench_function("cloud_transform", |b| {
        b.iter(|| black_box(scan.transformed(&transform)))
    });

    group.bench_function("voxelize_scan", |b| {
        b.iter(|| black_box(VoxelGrid::from_cloud(&scan, config.voxel_grid)))
    });
    let grid = VoxelGrid::from_cloud(&scan, config.voxel_grid);
    let vfe = VoxelFeatureEncoder::seeded(config.channels, config.seed);
    group.bench_function("voxel_feature_encode", |b| {
        b.iter(|| black_box(vfe.encode(&grid)))
    });
    let embedded = vfe.encode(&grid);
    let conv = SparseConv3::seeded(config.channels, config.channels, 1);
    group.bench_function("sparse_conv_3x3x3", |b| {
        b.iter(|| black_box(conv.forward(&embedded)))
    });
    let deep = conv.forward(&embedded);
    group.bench_function("bev_collapse", |b| {
        b.iter(|| black_box(BevMap::collapse(&deep)))
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
