//! Sparse vs dense convolution on real scan tensors — the SECOND
//! motivation the paper adopts for SPOD's middle layers ("output points
//! are not computed if there is no related input points").
//!
//! The "dense" baseline evaluates the same 27-tap kernel but probes all
//! 27 neighbour positions per site including the empty ones, i.e. it
//! pays the full kernel cost everywhere; the sparse engine skips empty
//! neighbourhoods. On <1 %-occupied LiDAR grids sparse wins clearly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cooper_lidar_sim::scenario::{t_junction, tj_scenario_1};
use cooper_lidar_sim::LidarScanner;
use cooper_pointcloud::VoxelGrid;
use cooper_spod::sparse_conv::{dense_reference_conv, SparseConv3};
use cooper_spod::vfe::VoxelFeatureEncoder;
use cooper_spod::SpodConfig;

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let config = SpodConfig::default();
    let vfe = VoxelFeatureEncoder::seeded(config.channels, config.seed);
    let conv = SparseConv3::seeded(config.channels, config.channels, 1);

    let mut group = c.benchmark_group("sparse_vs_dense_conv");
    group.sample_size(10);
    for (label, scenario) in [("kitti", t_junction()), ("tj", tj_scenario_1())] {
        let scanner = LidarScanner::new(scenario.kind.beam_model());
        let scan = scanner.scan(&scenario.world, &scenario.observers[0], 1);
        let grid = VoxelGrid::from_cloud(&scan, config.voxel_grid);
        let tensor = vfe.encode(&grid);
        group.bench_function(format!("{label}_sparse"), |b| {
            b.iter(|| black_box(conv.forward(&tensor)))
        });
        group.bench_function(format!("{label}_dense_reference"), |b| {
            b.iter(|| black_box(dense_reference_conv(&conv, &tensor)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense);
criterion_main!(benches);
