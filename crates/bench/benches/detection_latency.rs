//! Criterion version of Figure 9: SPOD detection latency on single-shot
//! vs cooperative (fused) clouds, for KITTI-style (64-beam) and
//! T&J-style (16-beam) input.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cooper_core::report::EvaluationConfig;
use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_lidar_sim::scenario::{t_junction, tj_scenario_1, Scenario};
use cooper_lidar_sim::{LidarScanner, PoseEstimate};
use cooper_pointcloud::PointCloud;
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

struct Prepared {
    label: &'static str,
    scan_a: PointCloud,
    fused: PointCloud,
}

fn prepare(scenario: &Scenario, label: &'static str, pipeline: &CooperPipeline) -> Prepared {
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let (ia, ib) = scenario.pairs[0];
    let config = EvaluationConfig::default();
    let scan_a = scanner.scan(&scenario.world, &scenario.observers[ia], 1);
    let scan_b = scanner.scan(&scenario.world, &scenario.observers[ib], 2);
    let est_a = PoseEstimate::from_pose(&scenario.observers[ia], &config.origin);
    let est_b = PoseEstimate::from_pose(&scenario.observers[ib], &config.origin);
    let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
    let fused = pipeline
        .fuse(&scan_a, &est_a, &[packet], &config.origin)
        .expect("decodes");
    Prepared {
        label,
        scan_a,
        fused,
    }
}

fn bench_detection(c: &mut Criterion) {
    let pipeline = CooperPipeline::new(SpodDetector::train_default(&TrainingConfig::standard()));
    let cases = [
        prepare(&t_junction(), "kitti", &pipeline),
        prepare(&tj_scenario_1(), "tj", &pipeline),
    ];
    let mut group = c.benchmark_group("fig9_detection_latency");
    group.sample_size(10);
    for case in &cases {
        group.bench_function(format!("{}_single_shot", case.label), |b| {
            b.iter_batched(
                || case.scan_a.clone(),
                |scan| black_box(pipeline.perceive_single(&scan)),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("{}_cooper", case.label), |b| {
            b.iter_batched(
                || case.fused.clone(),
                |fused| black_box(pipeline.perceive_single(&fused)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
