//! The bench regression ledger: a JSON-lines history of normalized
//! `--check` results under `results/BENCH_history.jsonl`, and the
//! comparison logic `bench_check` runs in CI.
//!
//! Every bench binary's `--check` mode appends one [`BenchRecord`] per
//! run — the bench name plus a flat map of scalar metrics. The ledger
//! reuses the [`TelemetryEvent`] JSON-lines codec (kind = bench name,
//! fields = metrics), so the file is greppable, `jq`-able and parseable
//! with the same tooling as telemetry sinks. `bench_check` then
//! compares the *latest* record of each bench against its *baseline*
//! (the oldest record on file) with per-metric tolerance: quality
//! metrics regress the build, timing/throughput metrics are recorded
//! but informational, because CI machines are not a benchmarking lab.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use cooper_telemetry::event::{FieldValue, TelemetryEvent};

/// File name of the ledger inside the results directory.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Default ledger path relative to the repo root.
pub fn default_history_path() -> PathBuf {
    PathBuf::from("results").join(HISTORY_FILE)
}

/// One normalized `--check` result: a bench name and scalar metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// The bench binary that produced the record (e.g. `fault_sweep`).
    pub bench: String,
    /// Metric name → value, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Creates a record for `bench` with the given metrics.
    pub fn new(bench: impl Into<String>, metrics: &[(&str, f64)]) -> Self {
        BenchRecord {
            bench: bench.into(),
            metrics: metrics
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
        }
    }

    /// Looks up a metric value.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Encodes as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut event = TelemetryEvent::new(self.bench.clone());
        for (key, value) in &self.metrics {
            event = event.with(key.clone(), *value);
        }
        event.to_json_line()
    }

    /// Decodes a ledger line. Integer-encoded metrics are widened to
    /// `f64`; non-numeric fields are rejected.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let event = TelemetryEvent::from_json_line(line).map_err(|e| e.to_string())?;
        let mut metrics = Vec::new();
        for (key, value) in event.fields() {
            let v = match value {
                FieldValue::F64(v) => *v,
                FieldValue::U64(v) => *v as f64,
                FieldValue::I64(v) => *v as f64,
                other => {
                    return Err(format!("metric {key:?} is not numeric: {other:?}"));
                }
            };
            metrics.push((key.to_string(), v));
        }
        Ok(BenchRecord {
            bench: event.kind().to_string(),
            metrics,
        })
    }
}

/// Appends `record` to the ledger at `path`, creating parent
/// directories and the file as needed.
pub fn append(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{}", record.to_json_line())
}

/// Reads every record from the ledger at `path`, oldest first. Blank
/// lines are skipped; a malformed line is an error (a corrupt ledger
/// must not silently pass CI).
pub fn read_history(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = BenchRecord::from_json_line(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// A drop below baseline − tolerance is a regression.
    HigherIsBetter,
    /// A rise above baseline + tolerance is a regression.
    LowerIsBetter,
}

/// Allowed movement of a checked metric relative to its baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Which direction counts as worse.
    pub direction: Direction,
    /// Relative slack as a fraction of `|baseline|`.
    pub rel: f64,
    /// Absolute slack in metric units.
    pub abs: f64,
}

impl Tolerance {
    fn slack(&self, baseline: f64) -> f64 {
        (self.rel * baseline.abs()).max(self.abs)
    }

    /// `true` when `latest` has regressed past the slack window.
    pub fn regressed(&self, baseline: f64, latest: f64) -> bool {
        match self.direction {
            Direction::HigherIsBetter => latest < baseline - self.slack(baseline),
            Direction::LowerIsBetter => latest > baseline + self.slack(baseline),
        }
    }
}

/// The per-metric policy: which metrics gate CI and with how much
/// slack. `None` means informational — recorded in the ledger and the
/// report, never failing the build. Timing, byte and speedup metrics
/// are informational by design: CI hosts are shared and noisy, and a
/// wall-clock delta there is not evidence of a code regression.
pub fn tolerance_for(bench: &str, metric: &str) -> Option<Tolerance> {
    // Measured-time / throughput metrics never gate.
    if metric.ends_with("_us") || metric.ends_with("_ms") || metric.ends_with("_bytes") {
        return None;
    }
    let t = |direction, rel, abs| {
        Some(Tolerance {
            direction,
            rel,
            abs,
        })
    };
    match (bench, metric) {
        // Wire-byte reduction of the headline governed configuration
        // vs the v1 full-frame exchange; detection drift it costs.
        ("bandwidth_sweep", "reduction") => t(Direction::HigherIsBetter, 0.15, 0.0),
        ("bandwidth_sweep", "detection_drift") => t(Direction::LowerIsBetter, 0.0, 0.02),
        // Recall arms of the pose-fault study. The guard-off arm is the
        // intentionally broken one — informational.
        ("fault_sweep", "ego_recall") => t(Direction::HigherIsBetter, 0.0, 0.02),
        ("fault_sweep", "clean_recall") => t(Direction::HigherIsBetter, 0.0, 0.02),
        ("fault_sweep", "guard_on_recall") => t(Direction::HigherIsBetter, 0.0, 0.02),
        // The determinism contract is binary: 1.0 or the build is wrong.
        ("parallel_fleet", "deterministic") => t(Direction::HigherIsBetter, 0.0, 0.0),
        // The composed chaos campaign: determinism is binary, the
        // defense-quality metrics get a little count-noise slack on
        // top of their absolute floors below.
        ("chaos_sweep", "deterministic") => t(Direction::HigherIsBetter, 0.0, 0.0),
        ("chaos_sweep", "ghost_rejection_rate") => t(Direction::HigherIsBetter, 0.0, 0.05),
        ("chaos_sweep", "recall_delta") => t(Direction::HigherIsBetter, 0.0, 0.25),
        ("chaos_sweep", "quarantine_latency_steps") => t(Direction::LowerIsBetter, 0.0, 1.0),
        // Incremental perception is an optimisation, never a semantic
        // change: its detections must stay bit-identical to the
        // from-scratch path, with zero slack.
        ("temporal_sweep", "bit_identical") => t(Direction::HigherIsBetter, 0.0, 0.0),
        _ => None,
    }
}

/// An absolute floor the *latest* record of a bench must clear.
///
/// Unlike [`Tolerance`], which compares against the oldest record on
/// file, a floor encodes an external requirement the current build has
/// to meet regardless of history — useful when the baseline predates
/// the feature being gated (a pre-parallelization speedup of ~1.0 would
/// make any relative tolerance meaningless). The optional gate metric
/// lets hardware-dependent floors apply only on hosts that can express
/// them: a single-core runner cannot measure a parallel speedup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Floor {
    /// Minimum acceptable value of the metric.
    pub min: f64,
    /// `Some((name, threshold))`: the floor applies only when the same
    /// record carries metric `name` at or above `threshold`; a record
    /// without the gate metric is exempt.
    pub gate: Option<(&'static str, f64)>,
}

impl Floor {
    /// `true` when this floor applies to `record` — its gate metric,
    /// if any, is present and at or above the threshold.
    pub fn applies(&self, record: &BenchRecord) -> bool {
        match self.gate {
            None => true,
            Some((name, threshold)) => record.metric(name).is_some_and(|v| v >= threshold),
        }
    }

    /// `true` when `latest` falls below the floor.
    pub fn violated(&self, latest: f64) -> bool {
        latest < self.min
    }
}

/// Absolute floors, applied to the newest record of each bench only
/// (see [`Floor`]). The parallel-fleet speedup floor backs the PR 7
/// chunk-parallel SPOD hot path: on a host with at least 4 hardware
/// threads, the 8-vehicle fleet must run at least 2.5x faster at 4
/// worker threads than at 1.
pub fn floor_for(bench: &str, metric: &str) -> Option<Floor> {
    match (bench, metric) {
        ("parallel_fleet", "speedup_4_threads") => Some(Floor {
            min: 2.5,
            gate: Some(("hardware_threads", 4.0)),
        }),
        // The incremental-perception cache must make an unchanged scene
        // at least 2x cheaper per step than re-perceiving from scratch.
        // Pure algorithmic reuse on a fixed workload — no hardware
        // gate: any host can express it.
        ("temporal_sweep", "low_change_speedup") => Some(Floor {
            min: 2.0,
            gate: None,
        }),
        // The chaos campaign's defense floors (ISSUE 10): under
        // composed burst loss + drift + corruption + ghost injection,
        // the trust-guarded fleet must reject at least 80% of the
        // ghost sender's delivered broadcasts, never fall below
        // ego-only detections, quarantine the attacker within the
        // bench's bound, and stay bit-identical across thread counts.
        // Absolute requirements of the build, not relative baselines.
        ("chaos_sweep", "ghost_rejection_rate") => Some(Floor {
            min: 0.8,
            gate: None,
        }),
        ("chaos_sweep", "recall_delta") => Some(Floor {
            min: 0.0,
            gate: None,
        }),
        ("chaos_sweep", "quarantine_within_bound") => Some(Floor {
            min: 1.0,
            gate: None,
        }),
        ("chaos_sweep", "deterministic") => Some(Floor {
            min: 1.0,
            gate: None,
        }),
        _ => None,
    }
}

/// The comparison of one metric: latest vs baseline under its policy.
#[derive(Clone, Debug)]
pub struct MetricVerdict {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Metric name.
    pub metric: String,
    /// Value in the oldest record on file.
    pub baseline: f64,
    /// Value in the newest record on file.
    pub latest: f64,
    /// `None` when the metric is informational.
    pub tolerance: Option<Tolerance>,
    /// The absolute floor in force for this metric, if any —
    /// `None` also when a gated floor does not apply to this record.
    pub floor: Option<Floor>,
    /// `true` when the metric moved past its slack window or fell
    /// below its floor.
    pub regressed: bool,
}

/// The full `bench_check` comparison across every bench in the ledger.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// One verdict per (bench, metric) present in the latest records.
    pub verdicts: Vec<MetricVerdict>,
}

impl CheckReport {
    /// `true` when any gated metric regressed.
    pub fn failed(&self) -> bool {
        self.verdicts.iter().any(|v| v.regressed)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:<18} {:>12} {:>12}  verdict",
            "bench", "metric", "baseline", "latest"
        )?;
        for v in &self.verdicts {
            let verdict = match (&v.tolerance, &v.floor, v.regressed) {
                (_, Some(f), true) if f.violated(v.latest) => "BELOW FLOOR",
                (None, None, _) => "info",
                (_, _, false) => "ok",
                (_, _, true) => "REGRESSED",
            };
            writeln!(
                f,
                "{:<16} {:<18} {:>12.4} {:>12.4}  {verdict}",
                v.bench, v.metric, v.baseline, v.latest
            )?;
        }
        Ok(())
    }
}

/// Compares the latest record of each bench against its baseline (the
/// oldest record of the same bench), applying [`tolerance_for`] per
/// metric. Benches with a single record compare against themselves and
/// trivially pass — the first run *defines* the baseline.
pub fn check_history(records: &[BenchRecord]) -> CheckReport {
    let mut benches: Vec<&str> = Vec::new();
    for r in records {
        if !benches.contains(&r.bench.as_str()) {
            benches.push(&r.bench);
        }
    }
    let mut report = CheckReport::default();
    for bench in benches {
        let baseline = records
            .iter()
            .find(|r| r.bench == bench)
            .expect("bench came from records");
        let latest = records
            .iter()
            .rev()
            .find(|r| r.bench == bench)
            .expect("bench came from records");
        for (metric, latest_value) in &latest.metrics {
            // A metric absent from the baseline has no reference point
            // yet; treat the latest value as its baseline.
            let baseline_value = baseline.metric(metric).unwrap_or(*latest_value);
            let tolerance = tolerance_for(bench, metric);
            let floor = floor_for(bench, metric).filter(|f| f.applies(latest));
            let regressed = tolerance
                .map(|t| t.regressed(baseline_value, *latest_value))
                .unwrap_or(false)
                || floor.is_some_and(|f| f.violated(*latest_value));
            report.verdicts.push(MetricVerdict {
                bench: bench.to_string(),
                metric: metric.clone(),
                baseline: baseline_value,
                latest: *latest_value,
                regressed,
                tolerance,
                floor,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = BenchRecord::new(
            "bandwidth_sweep",
            &[("reduction", 3.41), ("detection_drift", 0.0)],
        );
        let line = record.to_json_line();
        let back = BenchRecord::from_json_line(&line).expect("parses");
        assert_eq!(back.bench, "bandwidth_sweep");
        assert_eq!(back.metric("reduction"), Some(3.41));
        assert_eq!(back.metric("detection_drift"), Some(0.0));
    }

    #[test]
    fn append_and_read_preserve_order() {
        let dir = std::env::temp_dir().join("cooper-ledger-test-order");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(HISTORY_FILE);
        append(&path, &BenchRecord::new("a", &[("m", 1.0)])).expect("append");
        append(&path, &BenchRecord::new("b", &[("m", 2.0)])).expect("append");
        append(&path, &BenchRecord::new("a", &[("m", 3.0)])).expect("append");
        let records = read_history(&path).expect("reads");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].bench, "a");
        assert_eq!(records[2].metric("m"), Some(3.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_record_is_its_own_baseline_and_passes() {
        let report = check_history(&[BenchRecord::new("fault_sweep", &[("guard_on_recall", 0.8)])]);
        assert!(!report.failed());
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.verdicts[0].baseline, report.verdicts[0].latest);
    }

    #[test]
    fn injected_regression_fails_the_check() {
        let history = [
            BenchRecord::new("fault_sweep", &[("guard_on_recall", 0.80)]),
            BenchRecord::new("fault_sweep", &[("guard_on_recall", 0.70)]),
        ];
        let report = check_history(&history);
        assert!(report.failed(), "a 0.10 recall drop must gate");
        let v = &report.verdicts[0];
        assert!(v.regressed);
        assert_eq!(v.baseline, 0.80);
        assert_eq!(v.latest, 0.70);
    }

    #[test]
    fn movement_within_tolerance_passes() {
        let history = [
            BenchRecord::new("bandwidth_sweep", &[("reduction", 3.4)]),
            BenchRecord::new("bandwidth_sweep", &[("reduction", 3.1)]),
        ];
        assert!(!check_history(&history).failed(), "within 15% slack");
        let history = [
            BenchRecord::new("bandwidth_sweep", &[("reduction", 3.4)]),
            BenchRecord::new("bandwidth_sweep", &[("reduction", 2.0)]),
        ];
        assert!(check_history(&history).failed(), "past 15% slack");
    }

    #[test]
    fn lower_is_better_gates_upward_movement() {
        let history = [
            BenchRecord::new("bandwidth_sweep", &[("detection_drift", 0.00)]),
            BenchRecord::new("bandwidth_sweep", &[("detection_drift", 0.04)]),
        ];
        assert!(check_history(&history).failed());
    }

    #[test]
    fn timing_metrics_are_informational() {
        let history = [
            BenchRecord::new("parallel_fleet", &[("perceive_us", 1000.0)]),
            BenchRecord::new("parallel_fleet", &[("perceive_us", 9000.0)]),
        ];
        let report = check_history(&history);
        assert!(!report.failed(), "a 9x wall-clock delta must not gate");
        assert!(report.verdicts[0].tolerance.is_none());
    }

    #[test]
    fn speedup_floor_gates_on_capable_hosts() {
        // Baseline predates the parallel hot path (speedup ~0.9); the
        // floor judges the latest record absolutely, not relatively.
        let history = [
            BenchRecord::new("parallel_fleet", &[("speedup_4_threads", 0.9)]),
            BenchRecord::new(
                "parallel_fleet",
                &[("speedup_4_threads", 1.2), ("hardware_threads", 8.0)],
            ),
        ];
        let report = check_history(&history);
        assert!(report.failed(), "1.2x on an 8-thread host is below floor");
        assert!(format!("{report}").contains("BELOW FLOOR"));
        let history = [
            BenchRecord::new("parallel_fleet", &[("speedup_4_threads", 0.9)]),
            BenchRecord::new(
                "parallel_fleet",
                &[("speedup_4_threads", 3.1), ("hardware_threads", 8.0)],
            ),
        ];
        assert!(!check_history(&history).failed(), "3.1x clears the floor");
    }

    #[test]
    fn speedup_floor_is_exempt_on_narrow_hosts() {
        // A single-core runner cannot express a parallel speedup; the
        // gate metric turns the floor off rather than failing noise.
        let history = [BenchRecord::new(
            "parallel_fleet",
            &[("speedup_4_threads", 1.0), ("hardware_threads", 1.0)],
        )];
        let report = check_history(&history);
        assert!(!report.failed());
        assert!(report.verdicts.iter().all(|v| v.floor.is_none()));
        // Records that never measured the gate metric are exempt too.
        let legacy = [BenchRecord::new(
            "parallel_fleet",
            &[("speedup_4_threads", 0.9)],
        )];
        assert!(!check_history(&legacy).failed());
    }

    #[test]
    fn temporal_sweep_floor_and_bit_identity_gate() {
        // The 2x low-change floor is absolute and ungated: a first
        // record below it already fails.
        let slow = [BenchRecord::new(
            "temporal_sweep",
            &[("bit_identical", 1.0), ("low_change_speedup", 1.4)],
        )];
        assert!(check_history(&slow).failed(), "1.4x is below the 2x floor");
        let ok = [BenchRecord::new(
            "temporal_sweep",
            &[("bit_identical", 1.0), ("low_change_speedup", 2.4)],
        )];
        assert!(!check_history(&ok).failed());
        // Bit identity gates with zero slack.
        let diverged = [
            BenchRecord::new(
                "temporal_sweep",
                &[("bit_identical", 1.0), ("low_change_speedup", 3.0)],
            ),
            BenchRecord::new(
                "temporal_sweep",
                &[("bit_identical", 0.0), ("low_change_speedup", 3.0)],
            ),
        ];
        assert!(check_history(&diverged).failed());
    }

    #[test]
    fn chaos_floors_are_absolute() {
        // A first record already fails when a defense floor is broken —
        // there is no baseline grace period for the trust layer.
        let weak = [BenchRecord::new(
            "chaos_sweep",
            &[
                ("deterministic", 1.0),
                ("ghost_rejection_rate", 0.6),
                ("recall_delta", 0.4),
                ("quarantine_within_bound", 1.0),
            ],
        )];
        assert!(
            check_history(&weak).failed(),
            "60% ghost rejection is below the 80% floor"
        );
        let isolated = [BenchRecord::new(
            "chaos_sweep",
            &[
                ("deterministic", 1.0),
                ("ghost_rejection_rate", 0.95),
                ("recall_delta", -0.2),
                ("quarantine_within_bound", 1.0),
            ],
        )];
        assert!(
            check_history(&isolated).failed(),
            "fused below ego means the guard quarantined the honest fleet"
        );
        let late = [BenchRecord::new(
            "chaos_sweep",
            &[
                ("deterministic", 1.0),
                ("ghost_rejection_rate", 0.95),
                ("recall_delta", 0.4),
                ("quarantine_within_bound", 0.0),
            ],
        )];
        assert!(
            check_history(&late).failed(),
            "unbounded quarantine latency"
        );
        let healthy = [BenchRecord::new(
            "chaos_sweep",
            &[
                ("deterministic", 1.0),
                ("ghost_rejection_rate", 0.95),
                ("recall_delta", 0.4),
                ("quarantine_within_bound", 1.0),
                ("quarantine_latency_steps", 3.0),
            ],
        )];
        assert!(!check_history(&healthy).failed());
    }

    #[test]
    fn chaos_quarantine_latency_gates_upward_movement() {
        let history = [
            BenchRecord::new("chaos_sweep", &[("quarantine_latency_steps", 2.0)]),
            BenchRecord::new("chaos_sweep", &[("quarantine_latency_steps", 6.0)]),
        ];
        assert!(
            check_history(&history).failed(),
            "a 4-step latency regression must gate"
        );
        let within = [
            BenchRecord::new("chaos_sweep", &[("quarantine_latency_steps", 2.0)]),
            BenchRecord::new("chaos_sweep", &[("quarantine_latency_steps", 3.0)]),
        ];
        assert!(!check_history(&within).failed(), "one step of slack");
    }

    #[test]
    fn determinism_has_zero_slack() {
        let history = [
            BenchRecord::new("parallel_fleet", &[("deterministic", 1.0)]),
            BenchRecord::new("parallel_fleet", &[("deterministic", 0.0)]),
        ];
        assert!(check_history(&history).failed());
    }
}
