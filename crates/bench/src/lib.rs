//! Shared harness code for the Cooper experiment binaries.
//!
//! Each `src/bin/fig*.rs` binary regenerates one figure or table of the
//! paper; this library holds the pieces they share: a standard trained
//! pipeline, parallel scenario evaluation and plain-text table
//! rendering. Results are printed to stdout and, when `--out <dir>` is
//! passed, also written as CSV files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;

use std::fs;
use std::path::{Path, PathBuf};

use cooper_core::report::{evaluate_scenario, EvaluationConfig, PairEvaluation};
use cooper_core::CooperPipeline;
use cooper_lidar_sim::scenario::Scenario;
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

/// Trains the standard detector used by all experiment binaries and
/// wraps it into a pipeline.
///
/// Training is deterministic (seeded), so every binary evaluates the
/// identical model; trained weights are cached under `target/` (keyed
/// by the configuration) so only the first binary pays the training
/// cost.
pub fn standard_pipeline() -> CooperPipeline {
    let training = TrainingConfig::standard();
    let cache_key =
        fnv64(format!("{:?}|{:?}", cooper_spod::SpodConfig::default(), training).as_bytes());
    let cache_path = std::env::temp_dir().join(format!("cooper-spod-weights-{cache_key:016x}.bin"));
    if let Ok(bytes) = fs::read(&cache_path) {
        if let Ok(detector) = SpodDetector::from_bytes(&bytes) {
            eprintln!("loaded cached weights from {}", cache_path.display());
            return CooperPipeline::new(detector);
        }
        eprintln!("stale weight cache at {}, retraining", cache_path.display());
    }
    let detector = SpodDetector::train_default(&training);
    if let Err(e) = fs::write(&cache_path, detector.to_bytes()) {
        eprintln!("warning: cannot cache weights: {e}");
    }
    CooperPipeline::new(detector)
}

/// FNV-1a over `data` — stable cache keying without extra dependencies.
fn fnv64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Evaluates a list of scenarios in parallel (one thread per scenario,
/// via `crossbeam::scope`), preserving input order.
pub fn evaluate_scenarios_parallel(
    pipeline: &CooperPipeline,
    scenarios: &[Scenario],
    config: &EvaluationConfig,
) -> Vec<Vec<PairEvaluation>> {
    let mut results: Vec<Option<Vec<PairEvaluation>>> = Vec::new();
    results.resize_with(scenarios.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for scenario in scenarios {
            handles.push(scope.spawn(move |_| evaluate_scenario(pipeline, scenario, config)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("scenario evaluation panicked"));
        }
    })
    .expect("evaluation scope panicked");
    results
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Parses an optional `--out <dir>` argument from the process args.
pub fn output_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes `content` to `<dir>/<name>` when an output dir is configured,
/// creating the directory as needed. Errors are reported, not fatal —
/// the stdout copy is the primary output.
pub fn write_artifact(dir: Option<&Path>, name: &str, content: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Renders a simple aligned text table. `rows` must all have
/// `headers.len()` columns.
///
/// # Panics
///
/// Panics when a row has the wrong number of columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting — cells are numeric or simple
/// labels).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("longer"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_renders_rows() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_checks_width() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn write_artifact_none_is_noop() {
        write_artifact(None, "x.csv", "data");
    }
}
