//! Extension experiment: temporal self-fusion.
//!
//! The paper produces Figure 2 by merging two frames of the *same*
//! vehicle taken two seconds apart — "we emulate the cooperative sensing
//! process between two vehicles" (§IV-B). Run forward, the same
//! machinery is a free upgrade for a single vehicle: aggregate the last
//! k ego-motion-compensated frames and detect on the union. This binary
//! drives [`cooper_core::CooperPipeline::perceive_temporal`] — the
//! pipeline's own
//! temporal entry point — over a drive through each scenario, sweeping
//! the window size, and appends the recall curve to the bench
//! regression ledger.

use cooper_bench::{ledger, output_dir, render_table, standard_pipeline};
use cooper_core::report::match_by_center_distance;
use cooper_core::temporal::TemporalAggregator;
use cooper_geometry::{Obb3, RigidTransform, Vec3};
use cooper_lidar_sim::scenario::all_scenarios;
use cooper_lidar_sim::LidarScanner;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();

    println!("=== Extension: temporal self-fusion (Figure 2 run forward) ===\n");
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for window in [1usize, 2, 3, 4] {
        let mut detected = 0usize;
        let mut total = 0usize;
        for scene in all_scenarios() {
            let scanner = LidarScanner::new(scene.kind.beam_model());
            // Drive forward from observer 0 at 5 m/s, one frame per
            // second, perceiving each frame against the aggregator's
            // ego-motion-compensated history. The last frame's
            // detections (a window of `window` fused frames) are
            // scored against ground truth.
            let base = scene.observers[0];
            let heading = Vec3::new(base.attitude.yaw.cos(), base.attitude.yaw.sin(), 0.0);
            let mut aggregator = TemporalAggregator::new(window.max(1));
            let mut final_pose = base;
            let mut dets = Vec::new();
            for step in 0..window {
                let mut pose = base;
                pose.position += heading * (5.0 * step as f64);
                let scan = scanner.scan(&scene.world, &pose, 900 + step as u64);
                dets = pipeline.perceive_temporal(&mut aggregator, &pose, &scan);
                final_pose = pose;
            }
            let world_to_local = RigidTransform::from_pose(&final_pose).inverse();
            let gt: Vec<Obb3> = scene
                .ground_truth_cars()
                .iter()
                .map(|g| g.transformed(&world_to_local))
                .collect();
            detected += match_by_center_distance(&dets, &gt, 2.5)
                .iter()
                .filter(|s| s.is_some())
                .count();
            total += gt.len();
        }
        let recall = detected as f64 / total as f64;
        metrics.push((format!("recall_{window}_frames"), recall));
        rows.push(vec![
            window.to_string(),
            detected.to_string(),
            total.to_string(),
            format!("{:.0}", recall * 100.0),
        ]);
    }
    let headers = ["frames_fused", "detected", "gt_cars", "recall_%"];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: each added ego-motion-compensated frame raises recall —");
    println!("the same mechanism as V2V fusion, with the vehicle's own history as");
    println!("the cooperator (viewpoint diversity comes from motion).");

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let record = ledger::BenchRecord::new("temporal_fusion", &metric_refs);
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
}
