//! Extension experiment: temporal self-fusion.
//!
//! The paper produces Figure 2 by merging two frames of the *same*
//! vehicle taken two seconds apart — "we emulate the cooperative sensing
//! process between two vehicles" (§IV-B). Run forward, the same
//! machinery is a free upgrade for a single vehicle: aggregate the last
//! k ego-motion-compensated frames and detect on the union. This binary
//! sweeps the window size over a drive through each scenario.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::match_by_center_distance;
use cooper_core::temporal::TemporalAggregator;
use cooper_geometry::{Obb3, RigidTransform, Vec3};
use cooper_lidar_sim::scenario::all_scenarios;
use cooper_lidar_sim::LidarScanner;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();

    println!("=== Extension: temporal self-fusion (Figure 2 run forward) ===\n");
    let mut rows = Vec::new();
    for window in [1usize, 2, 3, 4] {
        let mut detected = 0usize;
        let mut total = 0usize;
        for scene in all_scenarios() {
            let scanner = LidarScanner::new(scene.kind.beam_model());
            // Drive forward from observer 0 at 5 m/s, one frame per second.
            let base = scene.observers[0];
            let heading = Vec3::new(base.attitude.yaw.cos(), base.attitude.yaw.sin(), 0.0);
            let mut aggregator = TemporalAggregator::new(window.max(1));
            let mut final_pose = base;
            let mut final_scan = None;
            for step in 0..window {
                let mut pose = base;
                pose.position += heading * (5.0 * step as f64);
                let scan = scanner.scan(&scene.world, &pose, 900 + step as u64);
                if step + 1 == window {
                    final_pose = pose;
                    final_scan = Some(scan);
                } else {
                    aggregator.push(pose, scan);
                }
            }
            let current = final_scan.expect("at least one frame");
            let fused = aggregator.fused_in(&final_pose, &current);
            let dets = pipeline.perceive_single(&fused);
            let world_to_local = RigidTransform::from_pose(&final_pose).inverse();
            let gt: Vec<Obb3> = scene
                .ground_truth_cars()
                .iter()
                .map(|g| g.transformed(&world_to_local))
                .collect();
            detected += match_by_center_distance(&dets, &gt, 2.5)
                .iter()
                .filter(|s| s.is_some())
                .count();
            total += gt.len();
        }
        rows.push(vec![
            window.to_string(),
            detected.to_string(),
            total.to_string(),
            format!("{:.0}", detected as f64 / total as f64 * 100.0),
        ]);
    }
    let headers = ["frames_fused", "detected", "gt_cars", "recall_%"];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: each added ego-motion-compensated frame raises recall —");
    println!("the same mechanism as V2V fusion, with the vehicle's own history as");
    println!("the cooperator (viewpoint diversity comes from motion).");
    write_artifact(
        output_dir().as_deref(),
        "temporal_fusion.csv",
        &render_csv(&headers, &rows),
    );
}
