//! Figure 10 — cooperative perception under GPS reading drift.
//!
//! Reproduces the paper's skew protocol: the transmitter's GPS fix is
//! skewed (both axes to max drift / one axis / double drift) before
//! alignment, and the per-car detection scores on the fused cloud are
//! compared against the unskewed baseline. Each skew mode runs twice —
//! straight through fusion (guard off, the paper's setting) and through
//! the receiver-side alignment guard (guard on), which ICP-refines
//! recoverable skews and rejects unverifiable ones to ego-only
//! fallback.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::{AlignmentGuardConfig, ExchangePacket};
use cooper_geometry::{Obb3, RigidTransform};
use cooper_lidar_sim::scenario::tj_scenarios;
use cooper_lidar_sim::{GpsImuModel, LidarScanner, SkewMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let guarded = pipeline
        .clone()
        .with_alignment_guard(AlignmentGuardConfig::default());
    let config = EvaluationConfig::default();
    let model = GpsImuModel::realistic();

    // Pool per-car scores over the T&J scenarios (the paper's Figure 10
    // plots ~18 detected car IDs). Each skew mode contributes a
    // guard-off and a guard-on score column.
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut car_id = 0usize;
    let mut failures_off = 0usize;
    let mut failures_on = 0usize;
    let mut improved = 0usize;
    let mut total = 0usize;
    let mut refined = 0usize;
    let mut rejected = 0usize;

    for scenario in tj_scenarios() {
        let scanner = LidarScanner::new(scenario.kind.beam_model());
        let (ia, ib) = scenario.pairs[0];
        let pose_a = scenario.observers[ia];
        let pose_b = scenario.observers[ib];
        let scan_a = scanner.scan(&scenario.world, &pose_a, 11);
        let scan_b = scanner.scan(&scenario.world, &pose_b, 12);
        let mut rng = StdRng::seed_from_u64(99);
        let est_a = model.measure(&pose_a, &config.origin, &mut rng);

        let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
        let gt_in_a: Vec<Obb3> = scenario
            .ground_truth_cars()
            .iter()
            .map(|g| g.transformed(&world_to_a))
            .collect();

        // Baseline: realistic (unskewed) measurement, guard off.
        let est_b = model.measure(&pose_b, &config.origin, &mut rng);
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
        let base = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);
        let base_scores =
            match_by_center_distance(&base.detections, &gt_in_a, config.match_distance);

        // The three skew modes, each guard off and guard on.
        let mut off_scores = Vec::new();
        let mut on_scores = Vec::new();
        for mode in SkewMode::ALL {
            let est_skew = model.measure_skewed(&pose_b, &config.origin, mode, &mut rng);
            let packet = ExchangePacket::build(1, 0, &scan_b, est_skew).expect("encodes");
            let off = pipeline.perceive(
                &scan_a,
                &est_a,
                std::slice::from_ref(&packet),
                &config.origin,
            );
            off_scores.push(match_by_center_distance(
                &off.detections,
                &gt_in_a,
                config.match_distance,
            ));
            let on = guarded.perceive(&scan_a, &est_a, &[packet], &config.origin);
            on_scores.push(match_by_center_distance(
                &on.detections,
                &gt_in_a,
                config.match_distance,
            ));
            for record in &on.alignment {
                if record.decision == cooper_core::GuardDecision::AcceptedRefined {
                    refined += 1;
                } else if !record.decision.is_accepted() {
                    rejected += 1;
                }
            }
        }

        for (gt_idx, base_score) in base_scores.iter().enumerate() {
            let any_score = base_score.is_some()
                || off_scores.iter().any(|s| s[gt_idx].is_some())
                || on_scores.iter().any(|s| s[gt_idx].is_some());
            if !any_score {
                continue; // never detected — not a Figure-10 car ID
            }
            car_id += 1;
            let fmt = |s: Option<f32>| s.map_or("X".to_string(), |v| format!("{v:.2}"));
            let mut row = vec![car_id.to_string(), fmt(*base_score)];
            let mut csv_row = vec![
                car_id.to_string(),
                base_score.map_or(f32::NAN, |v| v).to_string(),
            ];
            for mode_idx in 0..SkewMode::ALL.len() {
                row.push(fmt(off_scores[mode_idx][gt_idx]));
                row.push(fmt(on_scores[mode_idx][gt_idx]));
                csv_row.push(
                    off_scores[mode_idx][gt_idx]
                        .map_or(f32::NAN, |v| v)
                        .to_string(),
                );
                csv_row.push(
                    on_scores[mode_idx][gt_idx]
                        .map_or(f32::NAN, |v| v)
                        .to_string(),
                );
            }
            rows.push(row);
            csv_rows.push(csv_row);
            for (off, on) in off_scores.iter().zip(&on_scores) {
                total += 1;
                match (base_score, off[gt_idx]) {
                    (Some(b), Some(v)) if v > *b => improved += 1,
                    (Some(_), None) => failures_off += 1,
                    _ => {}
                }
                if base_score.is_some() && on[gt_idx].is_none() {
                    failures_on += 1;
                }
            }
        }
    }

    let headers = [
        "car_id",
        "baseline",
        "both_axes_off",
        "both_axes_on",
        "one_axis_off",
        "one_axis_on",
        "double_off",
        "double_on",
    ];
    println!("=== Figure 10: detection scores under GPS drift, guard off/on ===\n");
    println!("{}", render_table(&headers, &rows));
    println!(
        "{improved}/{total} skewed readings improved the unguarded score; \
         {failures_off} detections failed unguarded vs {failures_on} with the guard."
    );
    println!("alignment guard: {refined} skewed clouds ICP-refined, {rejected} rejected.");
    println!("Shape check (paper): skewed scores cluster near the baseline, a few");
    println!("improve (masking inherent drift), and a small number fail. The paper's");
    println!("drift envelope (~10-30 cm skews) sits under the guard's clean-residual");
    println!("threshold, so the guard passes these through untouched — guard-on");
    println!("columns match guard-off. Larger drifts, where the guard refines and");
    println!("rejects, are swept by the fault_sweep benchmark.");
    write_artifact(
        output_dir().as_deref(),
        "fig10_gps_drift.csv",
        &render_csv(&headers, &csv_rows),
    );
}
