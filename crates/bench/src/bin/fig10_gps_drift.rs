//! Figure 10 — cooperative perception under GPS reading drift.
//!
//! Reproduces the paper's skew protocol: the transmitter's GPS fix is
//! skewed (both axes to max drift / one axis / double drift) before
//! alignment, and the per-car detection scores on the fused cloud are
//! compared against the unskewed baseline.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::ExchangePacket;
use cooper_geometry::{Obb3, RigidTransform};
use cooper_lidar_sim::scenario::tj_scenarios;
use cooper_lidar_sim::{GpsImuModel, LidarScanner, SkewMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let config = EvaluationConfig::default();
    let model = GpsImuModel::realistic();

    // Pool per-car scores over the T&J scenarios (the paper's Figure 10
    // plots ~18 detected car IDs).
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut car_id = 0usize;
    let mut failures = 0usize;
    let mut improved = 0usize;
    let mut total = 0usize;

    for scenario in tj_scenarios() {
        let scanner = LidarScanner::new(scenario.kind.beam_model());
        let (ia, ib) = scenario.pairs[0];
        let pose_a = scenario.observers[ia];
        let pose_b = scenario.observers[ib];
        let scan_a = scanner.scan(&scenario.world, &pose_a, 11);
        let scan_b = scanner.scan(&scenario.world, &pose_b, 12);
        let mut rng = StdRng::seed_from_u64(99);
        let est_a = model.measure(&pose_a, &config.origin, &mut rng);

        let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
        let gt_in_a: Vec<Obb3> = scenario
            .ground_truth_cars()
            .iter()
            .map(|g| g.transformed(&world_to_a))
            .collect();

        // Baseline: realistic (unskewed) measurement.
        let est_b = model.measure(&pose_b, &config.origin, &mut rng);
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
        let base = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);
        let base_scores =
            match_by_center_distance(&base.detections, &gt_in_a, config.match_distance);

        // The three skew modes.
        let mut skewed_scores = Vec::new();
        for mode in SkewMode::ALL {
            let est_skew = model.measure_skewed(&pose_b, &config.origin, mode, &mut rng);
            let packet = ExchangePacket::build(1, 0, &scan_b, est_skew).expect("encodes");
            let result = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);
            skewed_scores.push(match_by_center_distance(
                &result.detections,
                &gt_in_a,
                config.match_distance,
            ));
        }

        for (gt_idx, base_score) in base_scores.iter().enumerate() {
            let any_score =
                base_score.is_some() || skewed_scores.iter().any(|s| s[gt_idx].is_some());
            if !any_score {
                continue; // never detected — not a Figure-10 car ID
            }
            car_id += 1;
            let fmt = |s: Option<f32>| s.map_or("X".to_string(), |v| format!("{v:.2}"));
            rows.push(vec![
                car_id.to_string(),
                fmt(*base_score),
                fmt(skewed_scores[0][gt_idx]),
                fmt(skewed_scores[1][gt_idx]),
                fmt(skewed_scores[2][gt_idx]),
            ]);
            csv_rows.push(vec![
                car_id.to_string(),
                base_score.map_or(f32::NAN, |v| v).to_string(),
                skewed_scores[0][gt_idx].map_or(f32::NAN, |v| v).to_string(),
                skewed_scores[1][gt_idx].map_or(f32::NAN, |v| v).to_string(),
                skewed_scores[2][gt_idx].map_or(f32::NAN, |v| v).to_string(),
            ]);
            for s in &skewed_scores {
                total += 1;
                match (base_score, s[gt_idx]) {
                    (Some(b), Some(v)) if v > *b => improved += 1,
                    (Some(_), None) => failures += 1,
                    _ => {}
                }
            }
        }
    }

    let headers = [
        "car_id",
        "baseline",
        "both_axes_max",
        "one_axis_max",
        "double_drift",
    ];
    println!("=== Figure 10: detection scores under GPS drift ===\n");
    println!("{}", render_table(&headers, &rows));
    println!(
        "{improved}/{total} skewed readings improved the score; {failures} caused a detection to fail."
    );
    println!("Shape check (paper): skewed scores cluster near the baseline, a few");
    println!("improve (masking inherent drift), and a small number fail.");
    write_artifact(
        output_dir().as_deref(),
        "fig10_gps_drift.csv",
        &render_csv(&headers, &csv_rows),
    );
}
