//! Figures 11 + 12 — ROI categories and the LiDAR data volume
//! exchanged between two cars, plus the DSRC feasibility check (§IV-G).
//!
//! Simulates an 8-second trace of two VLP-16 vehicles exchanging
//! ROI-filtered frames at 1 Hz and reports the per-second data volume
//! for each of the three ROI categories of Figure 11, then checks each
//! against the DSRC channel capacity.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_lidar_sim::scenario::tj_scenario_2;
use cooper_lidar_sim::LidarScanner;
use cooper_pointcloud::roi::RoiCategory;
use cooper_pointcloud::PointCloud;
use cooper_v2x::{DataRate, DsrcChannel, DsrcConfig, ExchangeScheduler, SharedMedium};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The pipeline itself is not needed for the bandwidth accounting,
    // but training it keeps the harness uniform and verifies the full
    // stack builds.
    let _ = standard_pipeline;

    let scenario = tj_scenario_2();
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let (ia, ib) = scenario.pairs[0];

    // Eight seconds of scans: re-scan each second with a fresh noise
    // seed (the vehicles are parked; the paper's cars crawl a lot).
    let per_second: Vec<(PointCloud, PointCloud)> = (0..8)
        .map(|s| {
            // The vehicles crawl ~1.5 m/s through the lot, so each
            // second's frame covers slightly different geometry (the
            // paper's Figure 12 lines wobble for the same reason).
            let crawl = cooper_geometry::Vec3::new(1.5 * s as f64, 0.0, 0.0);
            let mut pose_a = scenario.observers[ia];
            let mut pose_b = scenario.observers[ib];
            pose_a.position += crawl;
            pose_b.position += crawl;
            (
                scanner.scan(&scenario.world, &pose_a, 100 + s),
                scanner.scan(&scenario.world, &pose_b, 200 + s),
            )
        })
        .collect();

    println!("=== Figure 12: LiDAR data volume between two cars (Mbit/s) ===\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut traces = Vec::new();
    for category in RoiCategory::ALL {
        let medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default()));
        let scheduler = ExchangeScheduler::paper_default(category);
        let trace = scheduler.simulate(&per_second, &medium, &mut rng);
        let mut cells = vec![category.to_string()];
        for (second, mbit) in trace.per_second_mbit.iter().enumerate() {
            cells.push(format!("{mbit:.2}"));
            csv_rows.push(vec![
                category.to_string(),
                (second + 1).to_string(),
                format!("{mbit:.4}"),
            ]);
        }
        cells.push(format!("{:.2}", trace.peak_mbit()));
        rows.push(cells);
        traces.push(trace);
    }
    let mut headers: Vec<String> = vec!["category".into()];
    headers.extend((1..=8).map(|s| format!("s{s}")));
    headers.push("peak".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    println!("Shape check (paper): ROI 1 (full frame) ≈ 1.8 Mbit/frame/car is the");
    println!("costliest; ROI 2 (120° FoV, bidirectional) is cheaper; ROI 3 (one-way");
    println!("forward) is cheapest.\n");

    println!("=== DSRC feasibility (§IV-G) ===\n");
    let mut feas_rows = Vec::new();
    for trace in &traces {
        for rate in DataRate::ALL {
            let channel = DsrcChannel::new(DsrcConfig {
                data_rate: rate,
                ..DsrcConfig::default()
            });
            let peak_bytes = trace.peak_mbit() * 1e6 / 8.0;
            let airtime = channel.utilization(peak_bytes);
            feas_rows.push(vec![
                trace.category.to_string(),
                rate.to_string(),
                format!("{:.0}", airtime * 100.0),
                if airtime <= 1.0 {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    let feas_headers = ["category", "rate", "channel_use_%", "feasible"];
    println!("{}", render_table(&feas_headers, &feas_rows));

    write_artifact(
        output_dir().as_deref(),
        "fig12_roi_volume.csv",
        &render_csv(&["category", "second", "mbit"], &csv_rows),
    );
    write_artifact(
        output_dir().as_deref(),
        "fig12_dsrc_feasibility.csv",
        &render_csv(&feas_headers, &feas_rows),
    );
}
