//! Bandwidth sweep: governed wire bytes and fused detections vs the
//! ungoverned v1 full-frame exchange — the bandwidth-governor extension
//! of the paper's §IV-G feasibility study.
//!
//! The paper argues ROI-filtered clouds fit DSRC bandwidth; the
//! governor adds demand-driven ROI selection and background-delta
//! encoding on top. This benchmark drives the moving stop-sign fleet
//! through every (ROI cap, delta on/off) configuration over a perfect
//! channel, measures total wire bytes and fused (cooperative)
//! detections against the ungoverned baseline, then repeats the
//! headline configuration over a shared DSRC medium to show budget
//! skips engaging. Emits `BENCH_bandwidth.json`.
//!
//! The sweep also charts the third tier of the degradation ladder: the
//! F-Cooper feature-exchange configurations, where senders ship
//! quantized BEV feature maps (wire format v3) instead of points and
//! receivers fuse them ahead of the RPN head. Together the output is a
//! three-way bytes-vs-recall frontier — raw points vs ROI+delta points
//! vs feature maps.
//!
//! Two acceptance criteria are enforced by this binary's unit tests
//! and the `--check` CI smoke: delta + forward ROI cuts wire bytes at
//! least 3x while fused detections stay within 5% of the full-frame
//! exchange, and the feature tier moves fewer wire bytes than
//! front120+delta while fused detections stay within 3% of the raw
//! baseline.

use cooper_bench::{ledger, output_dir, render_table, standard_pipeline, write_artifact};
use cooper_core::channel::PerfectChannel;
use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetStats, FleetStepReport, FleetVehicle,
    TransportDropReason,
};
use cooper_core::{CooperPipeline, GovernorConfig};
use cooper_lidar_sim::scenario::stop_sign;
use cooper_lidar_sim::BeamModel;
use cooper_pointcloud::roi::RoiCategory;
use cooper_v2x::{BandwidthGovernor, DsrcChannel, DsrcConfig, SharedMedium};

/// Simulation steps — long enough for two keyframe periods.
const STEPS: usize = 6;
/// Keyframe cadence of the delta configurations.
const KEYFRAME_EVERY: u32 = 3;
/// Forward speed, metres per step: the fleet rolls toward the stop
/// sign, so the scene moves in sensor frame and the delta mode cannot
/// hide behind a static scan.
const SPEED_M_PER_STEP: f64 = 1.0;

fn fleet() -> FleetSimulation {
    let scene = stop_sign();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .enumerate()
        .map(|(i, start)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*start, SPEED_M_PER_STEP, STEPS),
            beams: BeamModel::vlp16().with_azimuth_steps(500),
        })
        .collect();
    FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 17,
            threads: Some(2),
            ..FleetConfig::default()
        },
    )
}

/// Outcome of one configuration.
struct SweepPoint {
    label: &'static str,
    roi_cap: Option<RoiCategory>,
    delta: bool,
    features: bool,
    wire_bytes: u64,
    bytes_saved: u64,
    fused_detections: usize,
    packets_received: usize,
    budget_skips: usize,
}

fn summarize(
    label: &'static str,
    roi_cap: Option<RoiCategory>,
    delta: bool,
    features: bool,
    reports: &[FleetStepReport],
    stats: &FleetStats,
) -> SweepPoint {
    SweepPoint {
        label,
        roi_cap,
        delta,
        features,
        wire_bytes: stats.total_bytes,
        bytes_saved: stats.bytes_saved.values().sum(),
        fused_detections: reports
            .iter()
            .flat_map(|r| &r.per_vehicle)
            .map(|v| v.cooperative_detections)
            .sum(),
        packets_received: reports
            .iter()
            .flat_map(|r| &r.per_vehicle)
            .map(|v| v.packets_received)
            .sum(),
        budget_skips: reports
            .iter()
            .flat_map(|r| &r.transport_drops)
            .filter(|d| d.reason == TransportDropReason::BudgetExceeded)
            .count(),
    }
}

fn run_baseline(pipeline: &CooperPipeline) -> SweepPoint {
    let mut channel = PerfectChannel;
    let (reports, stats) = fleet().run_with_channel(pipeline, STEPS, &mut channel);
    summarize("v1-full-frame", None, false, false, &reports, &stats)
}

fn run_governed(
    pipeline: &CooperPipeline,
    label: &'static str,
    cap: RoiCategory,
    delta: bool,
) -> SweepPoint {
    let mut channel = PerfectChannel;
    let mut policy = BandwidthGovernor::new(cap);
    let governor = GovernorConfig {
        delta_encode: delta,
        keyframe_every: KEYFRAME_EVERY,
        ..GovernorConfig::default()
    };
    let (reports, stats) =
        fleet().run_governed(pipeline, STEPS, &mut channel, &mut policy, &governor);
    summarize(label, Some(cap), delta, false, &reports, &stats)
}

/// The feature-exchange tier: senders offer quantized BEV feature
/// frames (wire format v3) alongside raw candidates, and a
/// feature-preferring policy picks them every step, capped at `cap`.
fn run_governed_features(
    pipeline: &CooperPipeline,
    label: &'static str,
    cap: RoiCategory,
) -> SweepPoint {
    let mut channel = PerfectChannel;
    let mut policy = BandwidthGovernor::new(cap).with_features();
    let governor = GovernorConfig {
        features: true,
        keyframe_every: KEYFRAME_EVERY,
        ..GovernorConfig::default()
    };
    let (reports, stats) =
        fleet().run_governed(pipeline, STEPS, &mut channel, &mut policy, &governor);
    summarize(label, Some(cap), false, true, &reports, &stats)
}

/// The headline configuration again, but over a shared DSRC medium so
/// air-time accounting is live and the skip rung of the ladder can
/// engage.
fn run_governed_dsrc(pipeline: &CooperPipeline) -> SweepPoint {
    let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default())).with_seed(17);
    let mut policy = BandwidthGovernor::new(RoiCategory::ForwardOneWay);
    let governor = GovernorConfig {
        delta_encode: true,
        keyframe_every: KEYFRAME_EVERY,
        ..GovernorConfig::default()
    };
    let (reports, stats) =
        fleet().run_governed(pipeline, STEPS, &mut medium, &mut policy, &governor);
    summarize(
        "forward+delta/dsrc",
        Some(RoiCategory::ForwardOneWay),
        true,
        false,
        &reports,
        &stats,
    )
}

fn roi_name(cap: Option<RoiCategory>) -> &'static str {
    match cap {
        None => "-",
        Some(RoiCategory::FullFrame) => "full",
        Some(RoiCategory::FrontFov120) => "front120",
        Some(RoiCategory::ForwardOneWay) => "forward",
    }
}

/// `--check`: run only the baseline and the two frontier headliners and
/// verify the acceptance criteria — the CI smoke mode. Exits non-zero
/// on violation; appends the normalized result to the bench regression
/// ledger instead of writing a figure artifact.
fn run_check() {
    let pipeline = standard_pipeline();
    let baseline = run_baseline(&pipeline);
    let headline = run_governed(&pipeline, "forward+delta", RoiCategory::ForwardOneWay, true);
    let front120 = run_governed(&pipeline, "front120+delta", RoiCategory::FrontFov120, true);
    let feature = run_governed_features(&pipeline, "features+full", RoiCategory::FullFrame);
    let reduction = baseline.wire_bytes as f64 / headline.wire_bytes.max(1) as f64;
    let drift = (headline.fused_detections as f64 - baseline.fused_detections as f64).abs()
        / baseline.fused_detections.max(1) as f64;
    let feature_reduction = baseline.wire_bytes as f64 / feature.wire_bytes.max(1) as f64;
    let feature_drift = (feature.fused_detections as f64 - baseline.fused_detections as f64).abs()
        / baseline.fused_detections.max(1) as f64;
    println!(
        "check: reduction {reduction:.2}x (need >= 3), detection drift {:.1}% (need <= 5%)",
        drift * 100.0
    );
    println!(
        "check: feature tier {} wire bytes vs front120+delta {} (need <), feature drift {:.1}% (need <= 3%)",
        feature.wire_bytes,
        front120.wire_bytes,
        feature_drift * 100.0
    );
    if reduction < 3.0 || drift > 0.05 {
        eprintln!("bandwidth_sweep check FAILED");
        std::process::exit(1);
    }
    if feature.wire_bytes >= front120.wire_bytes || feature_drift > 0.03 {
        eprintln!("bandwidth_sweep feature-tier check FAILED");
        std::process::exit(1);
    }
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    let record = ledger::BenchRecord::new(
        "bandwidth_sweep",
        &[
            ("reduction", reduction),
            ("detection_drift", drift),
            ("headline_wire_bytes", headline.wire_bytes as f64),
            ("feature_reduction", feature_reduction),
            ("feature_drift", feature_drift),
            ("feature_wire_bytes", feature.wire_bytes as f64),
        ],
    );
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
    println!("bandwidth_sweep check passed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }
    println!("=== Bandwidth sweep: governed wire bytes vs v1 full frames ===\n");
    let pipeline = standard_pipeline();

    let baseline = run_baseline(&pipeline);
    let points = [
        run_governed(&pipeline, "full+keyframe", RoiCategory::FullFrame, false),
        run_governed(&pipeline, "full+delta", RoiCategory::FullFrame, true),
        run_governed(&pipeline, "front120+delta", RoiCategory::FrontFov120, true),
        run_governed(
            &pipeline,
            "forward+keyframe",
            RoiCategory::ForwardOneWay,
            false,
        ),
        run_governed(&pipeline, "forward+delta", RoiCategory::ForwardOneWay, true),
        run_governed_features(&pipeline, "features+full", RoiCategory::FullFrame),
        run_governed_features(&pipeline, "features+forward", RoiCategory::ForwardOneWay),
        run_governed_dsrc(&pipeline),
    ];

    let headers = [
        "config",
        "roi_cap",
        "delta",
        "features",
        "wire_kb",
        "saved_kb",
        "reduction",
        "fused_det",
        "packets",
        "skips",
    ];
    let row = |p: &SweepPoint| {
        vec![
            p.label.to_string(),
            roi_name(p.roi_cap).to_string(),
            p.delta.to_string(),
            p.features.to_string(),
            format!("{:.1}", p.wire_bytes as f64 / 1e3),
            format!("{:.1}", p.bytes_saved as f64 / 1e3),
            format!(
                "{:.2}x",
                baseline.wire_bytes as f64 / p.wire_bytes.max(1) as f64
            ),
            p.fused_detections.to_string(),
            p.packets_received.to_string(),
            p.budget_skips.to_string(),
        ]
    };
    let mut rows = vec![row(&baseline)];
    rows.extend(points.iter().map(row));
    println!("{}", render_table(&headers, &rows));

    let headline = points
        .iter()
        .find(|p| p.label == "forward+delta")
        .expect("sweep covers the headline configuration");
    let front120 = points
        .iter()
        .find(|p| p.label == "front120+delta")
        .expect("sweep covers the front120+delta configuration");
    let feature = points
        .iter()
        .find(|p| p.label == "features+full")
        .expect("sweep covers the feature-tier configuration");
    let reduction = baseline.wire_bytes as f64 / headline.wire_bytes.max(1) as f64;
    let det_drift = (headline.fused_detections as f64 - baseline.fused_detections as f64)
        / baseline.fused_detections.max(1) as f64;
    let feature_reduction = baseline.wire_bytes as f64 / feature.wire_bytes.max(1) as f64;
    let feature_drift = (feature.fused_detections as f64 - baseline.fused_detections as f64)
        / baseline.fused_detections.max(1) as f64;
    println!(
        "Delta + forward ROI moves {:.1} KB where v1 full frames move {:.1} KB ({reduction:.1}x less wire), fused detections {} vs {} ({:+.1}%).",
        headline.wire_bytes as f64 / 1e3,
        baseline.wire_bytes as f64 / 1e3,
        headline.fused_detections,
        baseline.fused_detections,
        det_drift * 100.0,
    );
    println!(
        "Three-way frontier: raw {:.1} KB, ROI+delta (front120) {:.1} KB, feature tier {:.1} KB ({feature_reduction:.1}x less wire than raw), feature-fused detections {} vs {} ({:+.1}%).",
        baseline.wire_bytes as f64 / 1e3,
        front120.wire_bytes as f64 / 1e3,
        feature.wire_bytes as f64 / 1e3,
        feature.fused_detections,
        baseline.fused_detections,
        feature_drift * 100.0,
    );

    let json_points: Vec<String> = std::iter::once(&baseline)
        .chain(points.iter())
        .map(|p| {
            format!(
                "    {{\"config\": \"{}\", \"roi_cap\": \"{}\", \"delta\": {}, \"features\": {}, \"wire_bytes\": {}, \"bytes_saved\": {}, \"reduction\": {:.3}, \"fused_detections\": {}, \"packets_received\": {}, \"budget_skips\": {}}}",
                p.label,
                roi_name(p.roi_cap),
                p.delta,
                p.features,
                p.wire_bytes,
                p.bytes_saved,
                baseline.wire_bytes as f64 / p.wire_bytes.max(1) as f64,
                p.fused_detections,
                p.packets_received,
                p.budget_skips
            )
        })
        .collect();
    let frontier = format!(
        "{{\"raw_wire_bytes\": {}, \"roi_delta_wire_bytes\": {}, \"feature_wire_bytes\": {}, \"feature_reduction\": {feature_reduction:.3}, \"feature_drift\": {feature_drift:.4}}}",
        baseline.wire_bytes, front120.wire_bytes, feature.wire_bytes,
    );
    let json = format!(
        "{{\n  \"steps\": {STEPS},\n  \"keyframe_every\": {KEYFRAME_EVERY},\n  \"speed_m_per_step\": {SPEED_M_PER_STEP},\n  \"sweep\": [\n{}\n  ],\n  \"headline\": {{\"reduction\": {reduction:.3}, \"detection_drift\": {det_drift:.4}}},\n  \"frontier\": {}\n}}\n",
        json_points.join(",\n"),
        frontier,
    );
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_bandwidth.json", &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion, enforced where CI sees it: the
    /// headline configuration (delta encoding + forward ROI) must cut
    /// wire bytes at least 3x versus the ungoverned v1 full-frame
    /// exchange while keeping the stop-sign fused detection count
    /// within 5% of it.
    #[test]
    fn forward_delta_cuts_bytes_3x_with_detections_within_5pct() {
        let pipeline = standard_pipeline();
        let baseline = run_baseline(&pipeline);
        let governed = run_governed(&pipeline, "forward+delta", RoiCategory::ForwardOneWay, true);
        assert!(baseline.wire_bytes > 0, "baseline must move bytes");
        assert!(
            governed.wire_bytes * 3 <= baseline.wire_bytes,
            "governed exchange moved {} bytes, more than a third of the {}-byte baseline",
            governed.wire_bytes,
            baseline.wire_bytes
        );
        let drift = (governed.fused_detections as f64 - baseline.fused_detections as f64).abs()
            / baseline.fused_detections.max(1) as f64;
        assert!(
            drift <= 0.05,
            "fused detections drifted {:.1}% (governed {} vs baseline {})",
            drift * 100.0,
            governed.fused_detections,
            baseline.fused_detections
        );
    }

    /// The feature-tier acceptance criterion: shipping quantized BEV
    /// feature maps must move fewer wire bytes than the tightest
    /// ROI+delta *point* configuration (front120+delta) while the
    /// fused detection count stays within 3% of the raw v1 baseline.
    #[test]
    fn feature_tier_undercuts_front120_delta_within_3pct_of_raw() {
        let pipeline = standard_pipeline();
        let baseline = run_baseline(&pipeline);
        let front120 = run_governed(&pipeline, "front120+delta", RoiCategory::FrontFov120, true);
        let feature = run_governed_features(&pipeline, "features+full", RoiCategory::FullFrame);
        assert!(
            feature.wire_bytes < front120.wire_bytes,
            "feature tier moved {} bytes, not under the {}-byte front120+delta point",
            feature.wire_bytes,
            front120.wire_bytes
        );
        let drift = (feature.fused_detections as f64 - baseline.fused_detections as f64).abs()
            / baseline.fused_detections.max(1) as f64;
        assert!(
            drift <= 0.03,
            "feature-fused detections drifted {:.1}% from raw (feature {} vs baseline {})",
            drift * 100.0,
            feature.fused_detections,
            baseline.fused_detections
        );
        assert!(
            feature.packets_received > 0,
            "feature tier delivered nothing"
        );
    }

    /// Governed exchanges never move more than the baseline, and the
    /// savings accounting covers what was not sent.
    #[test]
    fn every_configuration_saves_bytes() {
        let pipeline = standard_pipeline();
        let baseline = run_baseline(&pipeline);
        for (label, cap, delta) in [
            ("full+delta", RoiCategory::FullFrame, true),
            ("forward+keyframe", RoiCategory::ForwardOneWay, false),
        ] {
            let p = run_governed(&pipeline, label, cap, delta);
            assert!(
                p.wire_bytes <= baseline.wire_bytes,
                "{label} moved more bytes than the baseline"
            );
            assert!(p.bytes_saved > 0, "{label} reported no savings");
            assert!(p.packets_received > 0, "{label} delivered nothing");
        }
    }
}
