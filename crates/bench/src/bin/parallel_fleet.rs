//! Parallel fleet executor benchmark: step latency vs worker threads.
//!
//! Runs the same 2/4/8-vehicle fleet simulation at 1/2/4/8 worker
//! threads, reports per-phase and total step latency, verifies the
//! determinism contract (reports bit-identical across thread counts)
//! and emits the measurements as `BENCH_parallel.json`.
//!
//! The speedup numbers are honest wall-clock measurements on whatever
//! machine runs the benchmark — `hardware_threads` is recorded next to
//! them. On a single-core host every thread count necessarily costs
//! about the same; the determinism columns are the part of the contract
//! that holds everywhere.

use std::time::Instant;

use cooper_bench::{ledger, output_dir, render_table, write_artifact};
use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetStepReport, FleetVehicle,
};
use cooper_core::CooperPipeline;
use cooper_geometry::{Attitude, Pose, Vec3};
use cooper_lidar_sim::scenario::tj_scenario_1;
use cooper_lidar_sim::BeamModel;
use cooper_spod::{SpodConfig, SpodDetector};

const STEPS: usize = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fleet(vehicle_count: usize, threads: usize) -> FleetSimulation {
    let scene = tj_scenario_1();
    // A row of vehicles 18 m apart along the parking row, all within
    // comms range of their neighbours.
    let vehicles: Vec<FleetVehicle> = (0..vehicle_count)
        .map(|i| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(
                Pose::new(
                    Vec3::new(-30.0 + 18.0 * i as f64, -8.0, 1.9),
                    Attitude::level(),
                ),
                1.0,
                STEPS,
            ),
            beams: BeamModel::vlp16().with_azimuth_steps(500),
        })
        .collect();
    FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 7,
            threads: Some(threads),
            ..FleetConfig::default()
        },
    )
}

struct Run {
    threads: usize,
    total_us: u64,
    scan_us: u64,
    exchange_us: u64,
    perceive_us: u64,
}

fn deterministic_view(reports: &[FleetStepReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| format!("{:?}", r.deterministic_view()))
        .collect()
}

/// `--check`: run the 8-vehicle fleet at 1 and 4 worker threads,
/// verify the determinism contract (reports bit-identical across
/// thread counts) and append the normalized result to the bench
/// regression ledger — the CI smoke mode. Exits non-zero on violation.
///
/// The record carries `hardware_threads` next to the measured speedup:
/// [`ledger::floor_for`] holds `speedup_4_threads` to an absolute
/// ≥2.5x floor, but only on hosts with at least 4 hardware threads —
/// a narrower runner physically cannot express the speedup, so its
/// honest ~1.0x measurement is recorded without gating.
fn run_check() {
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut views = Vec::new();
    let mut timings = Vec::new();
    for threads in [1usize, 4] {
        let sim = fleet(8, threads);
        let started = Instant::now();
        let (reports, _) = sim.run(&pipeline, STEPS);
        timings.push((threads, started.elapsed().as_micros() as u64));
        views.push(deterministic_view(&reports));
    }
    let deterministic = views[0] == views[1];
    let speedup = timings[0].1.max(1) as f64 / timings[1].1.max(1) as f64;
    println!(
        "check: 8 vehicles x {STEPS} steps on {hardware_threads} hardware thread(s), \
         deterministic across 1/4 threads: {deterministic}, 4-thread speedup {speedup:.2}x"
    );
    if !deterministic {
        eprintln!("parallel_fleet check FAILED: reports differ across thread counts");
        std::process::exit(1);
    }
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    let record = ledger::BenchRecord::new(
        "parallel_fleet",
        &[
            ("deterministic", 1.0),
            ("speedup_4_threads", speedup),
            ("hardware_threads", hardware_threads as f64),
            ("total_1t_us", timings[0].1 as f64),
            ("total_4t_us", timings[1].1 as f64),
        ],
    );
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
    println!("parallel_fleet check passed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("=== Parallel fleet executor: step latency vs threads ===\n");
    let mut rows = Vec::new();
    let mut fleets_json = Vec::new();
    for vehicle_count in [2usize, 4, 8] {
        let mut runs: Vec<Run> = Vec::new();
        let mut baseline_view: Option<Vec<String>> = None;
        let mut deterministic = true;
        for threads in THREAD_COUNTS {
            let sim = fleet(vehicle_count, threads);
            let started = Instant::now();
            let (reports, _) = sim.run(&pipeline, STEPS);
            let total_us = started.elapsed().as_micros() as u64;
            let view = deterministic_view(&reports);
            match &baseline_view {
                None => baseline_view = Some(view),
                Some(base) => deterministic &= *base == view,
            }
            runs.push(Run {
                threads,
                total_us,
                scan_us: reports.iter().map(|r| r.timings.scan_us).sum(),
                exchange_us: reports.iter().map(|r| r.timings.exchange_us).sum(),
                perceive_us: reports.iter().map(|r| r.timings.perceive_us).sum(),
            });
        }
        let t1 = runs[0].total_us.max(1);
        for run in &runs {
            rows.push(vec![
                vehicle_count.to_string(),
                run.threads.to_string(),
                format!("{:.1}", run.total_us as f64 / 1e3),
                format!("{:.1}", run.scan_us as f64 / 1e3),
                format!("{:.1}", run.exchange_us as f64 / 1e3),
                format!("{:.1}", run.perceive_us as f64 / 1e3),
                format!("{:.2}", t1 as f64 / run.total_us.max(1) as f64),
                deterministic.to_string(),
            ]);
        }
        let runs_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"threads\": {}, \"total_us\": {}, \"scan_us\": {}, \"exchange_us\": {}, \"perceive_us\": {}}}",
                    r.threads, r.total_us, r.scan_us, r.exchange_us, r.perceive_us
                )
            })
            .collect();
        let speedup_4t = t1 as f64
            / runs
                .iter()
                .find(|r| r.threads == 4)
                .map(|r| r.total_us.max(1))
                .unwrap_or(t1) as f64;
        fleets_json.push(format!(
            "    {{\"vehicles\": {vehicle_count}, \"steps\": {STEPS}, \"deterministic\": {deterministic}, \"speedup_4_threads\": {speedup_4t:.3}, \"runs\": [{}]}}",
            runs_json.join(", ")
        ));
    }

    let headers = [
        "vehicles",
        "threads",
        "total_ms",
        "scan_ms",
        "exchange_ms",
        "perceive_ms",
        "speedup",
        "deterministic",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Determinism holds by construction (fixed chunk boundaries, ordered");
    println!("merges, per-(vehicle, step) RNG streams); speedup tracks the host's");
    println!("core count — this run saw {hardware_threads} hardware thread(s).");

    let json = format!(
        "{{\n  \"hardware_threads\": {hardware_threads},\n  \"fleets\": [\n{}\n  ]\n}}\n",
        fleets_json.join(",\n")
    );
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_parallel.json", &json);
}
