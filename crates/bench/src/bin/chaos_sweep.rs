//! Chaos sweep: the composed adversarial campaign of ROADMAP item 5 —
//! burst loss, GPS drift, channel corruption and a ghost-injecting
//! sender in *one* fleet run, proving the whole defense stack (CRC
//! trailer, alignment guard, consistency guard, trust ledger)
//! composes.
//!
//! The campaign runs a 4-vehicle fleet over a Gilbert–Elliott channel
//! at 10% long-run burst loss with a 1% per-frame corruption process,
//! while vehicle 2 appends ghost car clusters to every broadcast and
//! vehicle 3's GPS random-walks at twice the realistic sensor model's
//! rated drift ceiling. With the trust layer on, the run must hold
//! three floors, recorded in the bench regression ledger and enforced
//! by `--check` in CI:
//!
//! * fused detections never fall below the ego-only baseline — the
//!   defenses must not quarantine the honest fleet into isolation;
//! * the ghost sender is quarantined within a bounded number of steps;
//! * at least 80% of its delivered ghost broadcasts are rejected
//!   before fusion (consistency rejects before quarantine, blocked
//!   transfers after).
//!
//! Everything is measured at 1 and 4 worker threads and must be
//! bit-identical — the adversarial streams ride the same
//! per-(vehicle, step) RNG contract as the benign ones. Emits
//! `BENCH_chaos.json`.

use cooper_bench::{ledger, output_dir, render_table, standard_pipeline, write_artifact};
use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetStats, FleetStepReport, FleetVehicle,
    TransportDropReason, TrustGuardConfig,
};
use cooper_core::{AlignmentGuardConfig, CooperPipeline, TrustConfig};
use cooper_geometry::{Pose, Vec3};
use cooper_lidar_sim::scenario::tj_scenario_1;
use cooper_lidar_sim::{BeamModel, FaultPlan, GpsImuModel};
use cooper_v2x::{DsrcChannel, DsrcConfig, GilbertElliott, LossModel, SharedMedium};

const SEED: u64 = 41;
const VEHICLES: usize = 4;
const STEPS: usize = 14;
/// Vehicle appending ghost clusters to every broadcast.
const GHOST_SENDER: u32 = 2;
/// Step the ghost fault switches on (active to the end of the run).
const GHOST_ONSET: usize = 1;
/// Ghost car clusters per broadcast.
const GHOST_CLUSTERS: usize = 5;
/// Vehicle whose GPS random-walks away from truth.
const DRIFT_VEHICLE: u32 = 3;
/// Long-run Gilbert–Elliott burst-loss rate.
const BURST_LOSS_RATE: f64 = 0.10;
/// Per-delivered-frame channel corruption probability.
const CORRUPTION_RATE: f64 = 0.01;
/// Floor on the fraction of delivered ghost broadcasts rejected.
const GHOST_REJECTION_FLOOR: f64 = 0.8;
/// The ghost sender must be quarantined within this many steps of the
/// fault onset.
const QUARANTINE_LATENCY_BOUND_STEPS: usize = 6;

/// Per-step drift sigma: twice the realistic model's rated ceiling.
fn drift_sigma_m() -> f64 {
    2.0 * GpsImuModel::realistic().max_drift_m()
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::parse(&format!(
        "{GHOST_SENDER}:ghost:{GHOST_CLUSTERS}@{GHOST_ONSET},{DRIFT_VEHICLE}:drift:{:.3}",
        drift_sigma_m()
    ))
    .expect("chaos fault plan parses")
}

fn chaos_channel() -> SharedMedium {
    SharedMedium::new(DsrcChannel::new(DsrcConfig {
        loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(BURST_LOSS_RATE)),
        corruption_probability: CORRUPTION_RATE,
        ..DsrcConfig::default()
    }))
    .with_seed(SEED)
}

fn fleet(threads: usize, trust_on: bool) -> FleetSimulation {
    let scene = tj_scenario_1();
    // Vehicles anchor on the scenario's observer poses (shifted ring by
    // ring once the observer set is exhausted, like the CLI profiler):
    // those poses are placed to share scene structure, which the
    // alignment guard needs — scans without verifiable overlap are
    // rejected no matter how honest the sender is.
    let vehicles: Vec<FleetVehicle> = (0..VEHICLES)
        .map(|i| {
            let base = scene.observers[i % scene.observers.len()];
            let ring = (i / scene.observers.len()) as f64;
            let start = Pose::new(
                base.position + Vec3::new(3.0 * ring, 3.0 * ring, 0.0),
                base.attitude,
            );
            FleetVehicle {
                id: i as u32 + 1,
                trajectory: straight_trajectory(start, 0.5, STEPS),
                beams: BeamModel::vlp16().with_azimuth_steps(400),
            }
        })
        .collect();
    FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: SEED,
            threads: Some(threads),
            fault_plan: Some(chaos_plan()),
            trust: trust_on.then(|| {
                let mut guard = TrustGuardConfig::default();
                // Calibrated for a realistic-noise, moving fleet: one
                // injected ghost cluster carries 60 points, while
                // sparse-scan discretization puts up to ~40 points of
                // an honest cloud into bins the ego undersampled as
                // free. 50 rejects every ghost broadcast without
                // quarantining honest senders over sampling noise.
                guard.consistency.min_ghost_points = 50;
                // Wartime trust posture: two strikes and a hold that
                // outlasts the attack. A receiver can only flag the
                // ghost broadcasts whose clusters land in space it
                // observed as free — the state machine has to carry
                // the defense across the steps where the clusters
                // land in territory that vantage cannot verify.
                guard.trust = TrustConfig {
                    suspect_after: 1,
                    quarantine_after: 2,
                    quarantine_steps: 12,
                    probation_clean_steps: 3,
                };
                guard
            }),
            ..FleetConfig::default()
        },
    )
}

/// Everything one campaign arm is judged on.
struct ArmOutcome {
    /// Mean ego-only detections per vehicle-step.
    ego_mean: f64,
    /// Mean fused detections per vehicle-step.
    fused_mean: f64,
    /// Ghost broadcasts rejected / ghost broadcasts delivered.
    ghost_rejection_rate: f64,
    /// Steps from ghost onset until some receiver holds the sender in
    /// quarantine; `STEPS` when it never happens.
    quarantine_latency_steps: usize,
    /// Total quarantine transitions recorded over the run.
    quarantines: u64,
    /// The deterministic slice of the reports, for cross-thread diffs.
    view: Vec<String>,
}

/// Guard-level rejections charged to the ghost sender: the packet was
/// delivered (or deterministically blocked) and the defense stack
/// excluded it from fusion.
fn is_guard_rejection(reason: &TransportDropReason) -> bool {
    matches!(
        reason,
        TransportDropReason::IntegrityFailed
            | TransportDropReason::Quarantined
            | TransportDropReason::AlignmentRejected { .. }
            | TransportDropReason::ConsistencyRejected { .. }
    )
}

/// Channel-level losses: the payload never reached the guard stack, so
/// the transfer counts as undelivered rather than unrejected.
fn is_channel_loss(reason: &TransportDropReason) -> bool {
    matches!(
        reason,
        TransportDropReason::DeadlineExceeded
            | TransportDropReason::SalvageFailed { .. }
            | TransportDropReason::Corrupted
            | TransportDropReason::BudgetExceeded
    )
}

fn summarize(reports: &[FleetStepReport], stats: &FleetStats) -> ArmOutcome {
    let mut ego_sum = 0usize;
    let mut fused_sum = 0usize;
    let mut samples = 0usize;
    let mut rejected = 0usize;
    let mut channel_lost = 0usize;
    let mut quarantine_step: Option<usize> = None;
    for report in reports {
        for v in &report.per_vehicle {
            ego_sum += v.single_detections;
            fused_sum += v.cooperative_detections;
            samples += 1;
            if v.quarantined_peers > 0 && quarantine_step.is_none() {
                quarantine_step = Some(report.step);
            }
        }
        if report.step < GHOST_ONSET {
            continue;
        }
        for drop in &report.transport_drops {
            if drop.from != GHOST_SENDER {
                continue;
            }
            if is_guard_rejection(&drop.reason) {
                rejected += 1;
            } else if is_channel_loss(&drop.reason) {
                channel_lost += 1;
            }
        }
    }
    // Every in-range receiver sees one directed transfer per active
    // step; the fleet stays inside comms range by construction.
    let attempts = (STEPS - GHOST_ONSET) * (VEHICLES - 1);
    let delivered = attempts.saturating_sub(channel_lost).max(1);
    ArmOutcome {
        ego_mean: ego_sum as f64 / samples.max(1) as f64,
        fused_mean: fused_sum as f64 / samples.max(1) as f64,
        ghost_rejection_rate: rejected as f64 / delivered as f64,
        quarantine_latency_steps: quarantine_step
            .map(|s| s.saturating_sub(GHOST_ONSET))
            .unwrap_or(STEPS),
        quarantines: stats.trust.values().map(|t| t.quarantines).sum(),
        view: reports
            .iter()
            .map(|r| format!("{:?}", r.deterministic_view()))
            .collect(),
    }
}

fn run_arm(pipeline: &CooperPipeline, threads: usize, trust_on: bool) -> ArmOutcome {
    let sim = fleet(threads, trust_on);
    let mut channel = chaos_channel();
    let (reports, stats) = sim.run_with_channel(pipeline, STEPS, &mut channel);
    summarize(&reports, &stats)
}

fn guarded_pipeline() -> CooperPipeline {
    standard_pipeline().with_alignment_guard(AlignmentGuardConfig::default())
}

struct CheckPoint {
    trusted: ArmOutcome,
    deterministic: bool,
}

fn measure() -> CheckPoint {
    let pipeline = guarded_pipeline();
    let trusted = run_arm(&pipeline, 1, true);
    let trusted_4t = run_arm(&pipeline, 4, true);
    let deterministic = trusted.view == trusted_4t.view;
    CheckPoint {
        trusted,
        deterministic,
    }
}

fn floors_pass(point: &CheckPoint) -> bool {
    point.deterministic
        && point.trusted.fused_mean + 1e-9 >= point.trusted.ego_mean
        && point.trusted.ghost_rejection_rate + 1e-9 >= GHOST_REJECTION_FLOOR
        && point.trusted.quarantine_latency_steps <= QUARANTINE_LATENCY_BOUND_STEPS
}

fn ledger_record(point: &CheckPoint) -> ledger::BenchRecord {
    let t = &point.trusted;
    ledger::BenchRecord::new(
        "chaos_sweep",
        &[
            ("deterministic", f64::from(point.deterministic)),
            ("ghost_rejection_rate", t.ghost_rejection_rate),
            ("recall_delta", t.fused_mean - t.ego_mean),
            (
                "quarantine_latency_steps",
                t.quarantine_latency_steps as f64,
            ),
            (
                "quarantine_within_bound",
                f64::from(t.quarantine_latency_steps <= QUARANTINE_LATENCY_BOUND_STEPS),
            ),
            ("fused_mean", t.fused_mean),
            ("ego_mean", t.ego_mean),
        ],
    )
}

/// `--check`: run the trust-guarded composed campaign at 1 and 4
/// threads, verify every floor, and append the normalized result to
/// the bench regression ledger — the CI smoke mode. Exits non-zero on
/// violation.
fn run_check() {
    let point = measure();
    let t = &point.trusted;
    println!(
        "check: {VEHICLES} vehicles x {STEPS} steps under {:.0}% burst loss, {:.0}% corruption, \
         {:.2} m/step drift, {GHOST_CLUSTERS} ghost clusters/step",
        BURST_LOSS_RATE * 100.0,
        CORRUPTION_RATE * 100.0,
        drift_sigma_m(),
    );
    println!(
        "  fused {:.2} vs ego {:.2} det/vehicle-step, ghost rejection {:.1}%, \
         quarantine latency {} step(s), deterministic 1t/4t: {}",
        t.fused_mean,
        t.ego_mean,
        t.ghost_rejection_rate * 100.0,
        t.quarantine_latency_steps,
        point.deterministic,
    );
    if !floors_pass(&point) {
        eprintln!(
            "chaos_sweep check FAILED: requires fused >= ego, ghost rejection >= \
             {GHOST_REJECTION_FLOOR}, quarantine within {QUARANTINE_LATENCY_BOUND_STEPS} steps, \
             and bit-identical reports at 1 vs 4 threads"
        );
        std::process::exit(1);
    }
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &ledger_record(&point)) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
    println!("chaos_sweep check passed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }
    println!("=== Chaos sweep: composed faults, trust layer off vs on ===\n");
    eprintln!("training SPOD detector…");
    let pipeline = guarded_pipeline();
    let unguarded = run_arm(&pipeline, 1, false);
    let point = measure();
    let t = &point.trusted;

    let headers = [
        "arm",
        "ego_mean",
        "fused_mean",
        "ghost_rejected",
        "quarantine_step",
        "quarantines",
    ];
    let row = |name: &str, arm: &ArmOutcome| {
        vec![
            name.to_string(),
            format!("{:.2}", arm.ego_mean),
            format!("{:.2}", arm.fused_mean),
            format!("{:.1}%", arm.ghost_rejection_rate * 100.0),
            if arm.quarantine_latency_steps >= STEPS {
                "never".to_string()
            } else {
                format!("onset+{}", arm.quarantine_latency_steps)
            },
            arm.quarantines.to_string(),
        ]
    };
    let rows = vec![row("trust off", &unguarded), row("trust on", t)];
    println!("{}", render_table(&headers, &rows));
    println!(
        "Floors: fused >= ego ({:.2} vs {:.2}), ghost rejection >= {:.0}% ({:.1}%),",
        t.fused_mean,
        t.ego_mean,
        GHOST_REJECTION_FLOOR * 100.0,
        t.ghost_rejection_rate * 100.0,
    );
    println!(
        "quarantine within {QUARANTINE_LATENCY_BOUND_STEPS} steps (took {}), deterministic at 1/4 threads ({}): {}.",
        t.quarantine_latency_steps,
        point.deterministic,
        if floors_pass(&point) { "met" } else { "NOT met" },
    );

    let arm_json = |arm: &ArmOutcome| {
        format!(
            "{{\"ego_mean\": {:.4}, \"fused_mean\": {:.4}, \"ghost_rejection_rate\": {:.4}, \"quarantine_latency_steps\": {}, \"quarantines\": {}}}",
            arm.ego_mean,
            arm.fused_mean,
            arm.ghost_rejection_rate,
            arm.quarantine_latency_steps,
            arm.quarantines
        )
    };
    let json = format!(
        "{{\n  \"campaign\": {{\"vehicles\": {VEHICLES}, \"steps\": {STEPS}, \"burst_loss\": {BURST_LOSS_RATE}, \"corruption\": {CORRUPTION_RATE}, \"drift_sigma_m\": {:.3}, \"ghost_clusters\": {GHOST_CLUSTERS}}},\n  \"trust_off\": {},\n  \"trust_on\": {},\n  \"deterministic\": {},\n  \"passes\": {}\n}}\n",
        drift_sigma_m(),
        arm_json(&unguarded),
        arm_json(t),
        point.deterministic,
        floors_pass(&point),
    );
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_chaos.json", &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drop taxonomy: every reason is either a guard rejection, a
    /// channel loss, or a salvage that still fused — never two of
    /// those at once.
    #[test]
    fn drop_reasons_classify_exclusively() {
        let reasons = [
            TransportDropReason::DeadlineExceeded,
            TransportDropReason::PartialDelivery {
                delivered_bytes: 10,
                total_bytes: 20,
            },
            TransportDropReason::SalvageFailed {
                kind: "decode".to_string(),
            },
            TransportDropReason::BudgetExceeded,
            TransportDropReason::AlignmentRejected { residual_mm: 900 },
            TransportDropReason::Corrupted,
            TransportDropReason::IntegrityFailed,
            TransportDropReason::Quarantined,
            TransportDropReason::ConsistencyRejected { ghost_points: 40 },
        ];
        for reason in &reasons {
            assert!(
                !(is_guard_rejection(reason) && is_channel_loss(reason)),
                "{reason:?} classified as both"
            );
        }
        assert!(is_guard_rejection(&TransportDropReason::Quarantined));
        assert!(is_channel_loss(&TransportDropReason::Corrupted));
        // A salvaged partial delivery reaches fusion: neither bucket.
        let partial = TransportDropReason::PartialDelivery {
            delivered_bytes: 10,
            total_bytes: 20,
        };
        assert!(!is_guard_rejection(&partial) && !is_channel_loss(&partial));
    }

    /// The composed fault plan must parse and target the right
    /// vehicles — a typo here would silently run a benign campaign.
    #[test]
    fn chaos_plan_targets_ghost_and_drift_vehicles() {
        let plan = chaos_plan();
        assert!(plan.faults().iter().any(|f| f.vehicle_id == GHOST_SENDER));
        assert!(plan.faults().iter().any(|f| f.vehicle_id == DRIFT_VEHICLE));
    }
}
