//! Extension experiment: exchange staleness vs moving objects.
//!
//! The paper settles on a 1 Hz exchange rate for bandwidth reasons
//! (§IV-G) but never asks what a second-old remote frame costs: a car
//! doing 10 m/s moves 10 m between capture and fusion, so its stale
//! points paint a ghost where it used to be. This binary scans a scene
//! with moving traffic, ages the *remote* frame by Δt before fusing, and
//! measures detection of moving vs parked cars as staleness grows.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::ExchangePacket;
use cooper_geometry::{Attitude, Obb3, Pose, RigidTransform, Vec3};
use cooper_lidar_sim::{BeamModel, Entity, EntityId, LidarScanner, PoseEstimate, World};

/// Builds a street with parked cars plus moving traffic, where the
/// moving cars are visible to the remote vehicle but occluded from the
/// receiver.
fn build_world() -> World {
    let mut world = World::new();
    let mut id = 0u32;
    let mut next = || {
        id += 1;
        EntityId(id)
    };
    // A wall east of the receiver hides the moving traffic lane.
    world.add(Entity::wall(
        next(),
        Vec3::new(12.0, -20.0, 0.0),
        Vec3::new(12.0, 12.0, 0.0),
        3.0,
        0.5,
    ));
    // Parked cars visible to the receiver.
    for (x, y) in [(6.0, -6.0), (-8.0, 4.0), (-15.0, -8.0)] {
        world.add(Entity::car(next(), Vec3::new(x, y, 0.0), 0.3));
    }
    // Moving traffic behind the wall at 10 m/s southbound.
    for y in [20.0, 5.0, -10.0] {
        world.add(
            Entity::car(
                next(),
                Vec3::new(22.0, y, 0.0),
                -std::f64::consts::FRAC_PI_2,
            )
            .with_velocity(Vec3::new(0.0, -10.0, 0.0)),
        );
    }
    world
}

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let config = EvaluationConfig::default();
    let scanner = LidarScanner::new(BeamModel::vlp16());

    let receiver = Pose::new(Vec3::new(0.0, 0.0, 1.9), Attitude::level());
    // The remote vehicle sits past the wall with a clear view of the lane.
    let remote = Pose::new(Vec3::new(30.0, -15.0, 1.9), Attitude::from_yaw(2.0));
    let est_rx = PoseEstimate::from_pose(&receiver, &config.origin);
    let est_tx = PoseEstimate::from_pose(&remote, &config.origin);

    println!("=== Extension: exchange staleness vs moving objects ===\n");
    let mut rows = Vec::new();
    for staleness_s in [0.0f64, 0.25, 0.5, 1.0, 2.0] {
        // The remote frame was captured `staleness_s` ago: the world has
        // since advanced. "now" is the detection instant.
        let world_at_capture = build_world();
        let world_now = world_at_capture.advanced(staleness_s);

        let remote_scan = scanner.scan(&world_at_capture, &remote, 3);
        let local_scan = scanner.scan(&world_now, &receiver, 4);
        let packet = ExchangePacket::build(1, 0, &remote_scan, est_tx).expect("encodes");
        let result = pipeline.perceive(&local_scan, &est_rx, &[packet], &config.origin);

        // Ground truth at detection time, receiver frame.
        let world_to_rx = RigidTransform::from_pose(&receiver).inverse();
        let split = |moving: bool| -> Vec<Obb3> {
            world_now
                .entities()
                .iter()
                .filter(|e| e.class.is_target() && (e.velocity.norm() > 0.0) == moving)
                .map(|e| e.shape.transformed(&world_to_rx))
                .collect()
        };
        let count = |gts: &Vec<Obb3>| {
            match_by_center_distance(&result.detections, gts, config.match_distance)
                .iter()
                .filter(|s| s.is_some())
                .count()
        };
        let parked = split(false);
        let moving = split(true);
        rows.push(vec![
            format!("{staleness_s:.2}"),
            format!("{}/{}", count(&parked), parked.len()),
            format!("{}/{}", count(&moving), moving.len()),
        ]);
    }
    let headers = ["staleness_s", "parked_detected", "moving_detected"];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: parked cars are immune to staleness; moving cars fade");
    println!("as the remote frame ages (a 10 m/s car is ~2.5 m displaced already");
    println!("at 0.25 s) — the hidden cost of the paper's 1 Hz exchange rate, and");
    println!("the reason follow-on systems timestamp and motion-compensate frames.");
    write_artifact(
        output_dir().as_deref(),
        "staleness_study.csv",
        &render_csv(&headers, &rows),
    );
}
