//! Table 1 — SPOD detector average precision per class and difficulty.
//!
//! §III-A of the paper motivates SPOD with VoxelNet's KITTI numbers
//! (car 89.6 % easy / 78.6 % hard; pedestrian 66.0/57.0; cyclist
//! 74.4/50.5). This harness evaluates the reproduction's detector the
//! same way on held-out synthetic scenes: AP per class, split by
//! difficulty (range bands standing in for KITTI's visibility levels).
//! The shape to check: car AP is highest, small objects are harder, and
//! every class degrades from easy to hard.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_lidar_sim::dataset::{generate_scene, SceneConfig};
use cooper_lidar_sim::{BeamModel, ObjectClass};
use cooper_spod::eval::{average_precision, precision_recall_curve_by_center, RangeDifficulty};
use cooper_spod::{DetectOptions, DetectScratch, Detection};

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let detector = pipeline.detector();

    let scene_config = SceneConfig {
        pedestrians: (1, 4),
        cyclists: (1, 3),
        ..SceneConfig::default()
    };
    let beams = [
        BeamModel::vlp16(),
        BeamModel::hdl64().with_azimuth_steps(900),
    ];
    eprintln!("evaluating on 30 held-out scenes…");
    let scenes: Vec<_> = (0..30)
        .map(|i| generate_scene(50_000 + i, &scene_config, &beams[i as usize % 2]))
        .collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    // One scratch for the whole sweep: the rulebook arena warms up on
    // the first scene and is reused by every later detect call.
    let mut scratch = DetectScratch::new();
    for class in ObjectClass::TARGETS {
        let mut cells = vec![class.to_string()];
        for difficulty in RangeDifficulty::ALL {
            // Frames: per scene, detections (low threshold for the PR
            // sweep) and same-class ground truth in the difficulty band
            // with at least a handful of points (KITTI also only counts
            // annotatable objects).
            let options = DetectOptions::default()
                .with_class(class)
                .with_threshold(0.05);
            let frames: Vec<(Vec<Detection>, Vec<cooper_geometry::Obb3>)> = scenes
                .iter()
                .map(|scene| {
                    let dets: Vec<Detection> = detector
                        .detect_with(&scene.cloud, &options, &mut scratch)
                        .into_iter()
                        .filter(|d| RangeDifficulty::of(&d.obb) == difficulty)
                        .collect();
                    let gts: Vec<cooper_geometry::Obb3> = scene
                        .labels
                        .iter()
                        .filter(|l| {
                            l.class == class
                                && RangeDifficulty::of(&l.obb) == difficulty
                                && scene.cloud.count_in_box(&l.obb) >= 5
                        })
                        .map(|l| l.obb)
                        .collect();
                    (dets, gts)
                })
                .collect();
            // Size-relative matching (centers within half the object
            // length) keeps the criterion equally strict across classes.
            let ap = average_precision(&precision_recall_curve_by_center(&frames, 0.5)) * 100.0;
            cells.push(format!("{ap:.1}"));
            csv_rows.push(vec![
                class.to_string(),
                difficulty.to_string(),
                format!("{ap:.2}"),
            ]);
        }
        rows.push(cells);
    }

    let headers = ["class", "AP_easy_%", "AP_moderate_%", "AP_hard_%"];
    println!("=== Table 1: SPOD average precision by class and difficulty ===\n");
    println!("{}", render_table(&headers, &rows));
    println!("Shape check (paper §III-A, VoxelNet): cars easiest, pedestrians and");
    println!("cyclists markedly harder, and AP drops from easy to hard for every class.");
    write_artifact(
        output_dir().as_deref(),
        "table1_detector_ap.csv",
        &render_csv(&["class", "difficulty", "ap_percent"], &csv_rows),
    );
}
