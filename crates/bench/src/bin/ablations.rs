//! Ablation studies for the design choices called out in `DESIGN.md`.
//!
//! 1. **Fusion level** — Cooper's raw-data fusion vs an object-level
//!    fusion baseline (the paper's §I-B argument: object-level fusion
//!    can never discover objects neither vehicle detected).
//! 2. **ROI category vs recall** — how much detection the bandwidth
//!    savings of each ROI category give up.
//! 3. **Spherical densification on/off** — SPOD's preprocessing stage
//!    on sparse 16-beam input.
//! 4. **Exchange rate sweep** — channel utilization from 0.5 to 8 Hz
//!    (the paper settles on 1 Hz).

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_geometry::{Obb3, RigidTransform};
use cooper_lidar_sim::scenario::{tj_scenarios, Scenario};
use cooper_lidar_sim::{LidarScanner, PoseEstimate};
use cooper_pointcloud::roi::{extract_roi, RoiCategory};
use cooper_pointcloud::PointCloud;
use cooper_spod::{non_max_suppression, Detection};
use cooper_v2x::{DsrcChannel, DsrcConfig, ExchangeScheduler, SharedMedium};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Case {
    scenario: Scenario,
    scan_a: PointCloud,
    scan_b: PointCloud,
    est_a: PoseEstimate,
    est_b: PoseEstimate,
    gt_in_a: Vec<Obb3>,
    gt_in_b: Vec<Obb3>,
    b_to_a: RigidTransform,
}

fn build_cases(config: &EvaluationConfig) -> Vec<Case> {
    tj_scenarios()
        .into_iter()
        .map(|scenario| {
            let scanner = LidarScanner::new(scenario.kind.beam_model());
            let (ia, ib) = scenario.pairs[0];
            let pose_a = scenario.observers[ia];
            let pose_b = scenario.observers[ib];
            let scan_a = scanner.scan(&scenario.world, &pose_a, 21);
            let scan_b = scanner.scan(&scenario.world, &pose_b, 22);
            let est_a = PoseEstimate::from_pose(&pose_a, &config.origin);
            let est_b = PoseEstimate::from_pose(&pose_b, &config.origin);
            let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
            let world_to_b = RigidTransform::from_pose(&pose_b).inverse();
            let gt_in_a = scenario
                .ground_truth_cars()
                .iter()
                .map(|g| g.transformed(&world_to_a))
                .collect();
            let gt_in_b = scenario
                .ground_truth_cars()
                .iter()
                .map(|g| g.transformed(&world_to_b))
                .collect();
            let b_to_a = RigidTransform::between(&pose_b, &pose_a);
            Case {
                scenario,
                scan_a,
                scan_b,
                est_a,
                est_b,
                gt_in_a,
                gt_in_b,
                b_to_a,
            }
        })
        .collect()
}

fn detected(scores: &[Option<f32>]) -> usize {
    scores.iter().filter(|s| s.is_some()).count()
}

/// Ablation 1: raw-data fusion vs object-level fusion.
fn fusion_level(
    pipeline: &CooperPipeline,
    cases: &[Case],
    config: &EvaluationConfig,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for case in cases {
        let dets_a = pipeline.perceive_single(&case.scan_a);
        let dets_b = pipeline.perceive_single(&case.scan_b);

        // Object-level fusion: union the two detection *result* sets
        // (B's boxes aligned into A's frame), deduplicated by NMS.
        let mut object_level: Vec<Detection> = dets_a.clone();
        object_level.extend(dets_b.iter().map(|d| Detection {
            obb: d.obb.transformed(&case.b_to_a),
            ..*d
        }));
        let object_level = non_max_suppression(object_level, 0.2);

        // Raw-data fusion: Cooper.
        let packet = ExchangePacket::build(1, 0, &case.scan_b, case.est_b).expect("encodes");
        let coop = pipeline.perceive(&case.scan_a, &case.est_a, &[packet], &config.origin);

        let m = config.match_distance;
        rows.push(vec![
            case.scenario.name.clone(),
            detected(&match_by_center_distance(&dets_a, &case.gt_in_a, m)).to_string(),
            detected(&match_by_center_distance(&dets_b, &case.gt_in_b, m)).to_string(),
            detected(&match_by_center_distance(&object_level, &case.gt_in_a, m)).to_string(),
            detected(&match_by_center_distance(
                &coop.detections,
                &case.gt_in_a,
                m,
            ))
            .to_string(),
            case.gt_in_a.len().to_string(),
        ]);
    }
    rows
}

/// Ablation 2: ROI category vs cooperative recall and payload size.
fn roi_vs_recall(
    pipeline: &CooperPipeline,
    cases: &[Case],
    config: &EvaluationConfig,
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for category in RoiCategory::ALL {
        let mut total_detected = 0usize;
        let mut total_gt = 0usize;
        let mut total_bytes = 0usize;
        for case in cases {
            let roi_scan = extract_roi(&case.scan_b, category);
            let packet = ExchangePacket::build(1, 0, &roi_scan, case.est_b).expect("encodes");
            total_bytes += packet.wire_size();
            let coop = pipeline.perceive(&case.scan_a, &case.est_a, &[packet], &config.origin);
            let scores =
                match_by_center_distance(&coop.detections, &case.gt_in_a, config.match_distance);
            total_detected += detected(&scores);
            total_gt += case.gt_in_a.len();
        }
        rows.push(vec![
            category.to_string(),
            format!("{:.0}", total_bytes as f64 / cases.len() as f64 / 1024.0),
            total_detected.to_string(),
            total_gt.to_string(),
        ]);
    }
    rows
}

/// Ablation 3: spherical densification on/off, at full and reduced
/// azimuth resolution. Interpolation can only help when the raw scan
/// actually has gaps, so the reduced-resolution rows are where the
/// design choice shows.
fn densify_ablation(config: &EvaluationConfig) -> Vec<Vec<String>> {
    use cooper_lidar_sim::scenario::tj_scenarios;
    use cooper_lidar_sim::{BeamModel, LidarScanner};
    use cooper_spod::preprocess::PreprocessConfig;
    use cooper_spod::train::{train, TrainingConfig};
    use cooper_spod::SpodConfig;

    let mut rows = Vec::new();
    for azimuth_steps in [1800usize, 600] {
        for (label, preprocess) in [
            ("densify on (2 passes)", PreprocessConfig::sparse_default()),
            ("densify off", PreprocessConfig::disabled()),
        ] {
            let spod_config = SpodConfig {
                preprocess,
                ..SpodConfig::default()
            };
            let training = TrainingConfig {
                beam_models: vec![BeamModel::vlp16().with_azimuth_steps(azimuth_steps)],
                ..TrainingConfig::standard()
            };
            let pipeline = CooperPipeline::new(train(spod_config, &training));
            let mut total_detected = 0usize;
            let mut total_gt = 0usize;
            for scenario in tj_scenarios() {
                let scanner =
                    LidarScanner::new(scenario.kind.beam_model().with_azimuth_steps(azimuth_steps));
                let (ia, _) = scenario.pairs[0];
                let pose_a = scenario.observers[ia];
                let scan_a = scanner.scan(&scenario.world, &pose_a, 21);
                let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
                let gt_in_a: Vec<Obb3> = scenario
                    .ground_truth_cars()
                    .iter()
                    .map(|g| g.transformed(&world_to_a))
                    .collect();
                let dets = pipeline.perceive_single(&scan_a);
                let scores = match_by_center_distance(&dets, &gt_in_a, config.match_distance);
                total_detected += detected(&scores);
                total_gt += gt_in_a.len();
            }
            rows.push(vec![
                format!("{azimuth_steps} steps, {label}"),
                total_detected.to_string(),
                total_gt.to_string(),
            ]);
        }
    }
    rows
}

/// Ablation 4: exchange-rate sweep vs channel utilization.
fn rate_sweep(cases: &[Case]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let per_second: Vec<(PointCloud, PointCloud)> = cases
        .iter()
        .map(|c| (c.scan_a.clone(), c.scan_b.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(77);
    for rate in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default()));
        let trace = ExchangeScheduler::new(rate, RoiCategory::FullFrame).simulate(
            &per_second,
            &medium,
            &mut rng,
        );
        rows.push(vec![
            format!("{rate}"),
            format!("{:.2}", trace.peak_mbit()),
            format!("{:.0}", trace.peak_utilization * 100.0),
            trace.transfers_dropped.to_string(),
        ]);
    }
    rows
}

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let config = EvaluationConfig::default();
    eprintln!("scanning T&J scenarios…");
    let cases = build_cases(&config);
    let out = output_dir();

    println!("=== Ablation 1: fusion level (paper §I-B) ===\n");
    let headers1 = [
        "scenario",
        "single_A",
        "single_B",
        "object_level",
        "raw_cooper",
        "gt_cars",
    ];
    let rows1 = fusion_level(&pipeline, &cases, &config);
    println!("{}", render_table(&headers1, &rows1));
    println!("Object-level fusion can only union what the singles found;");
    println!("raw fusion also detects cars neither vehicle saw alone.\n");
    write_artifact(
        out.as_deref(),
        "ablation_fusion_level.csv",
        &render_csv(&headers1, &rows1),
    );

    println!("=== Ablation 2: ROI category vs cooperative recall ===\n");
    let headers2 = ["category", "avg_payload_KiB", "detected", "gt_cars"];
    let rows2 = roi_vs_recall(&pipeline, &cases, &config);
    println!("{}", render_table(&headers2, &rows2));
    write_artifact(
        out.as_deref(),
        "ablation_roi_recall.csv",
        &render_csv(&headers2, &rows2),
    );

    println!("=== Ablation 3: spherical densification (SPOD preprocessing) ===\n");
    let headers3 = ["preprocessing", "detected", "gt_cars"];
    let rows3 = densify_ablation(&config);
    println!("{}", render_table(&headers3, &rows3));
    write_artifact(
        out.as_deref(),
        "ablation_densify.csv",
        &render_csv(&headers3, &rows3),
    );

    println!("=== Ablation 4: exchange rate sweep (paper picks 1 Hz) ===\n");
    let headers4 = ["rate_hz", "peak_mbit_s", "channel_use_%", "dropped"];
    let rows4 = rate_sweep(&cases);
    println!("{}", render_table(&headers4, &rows4));
    write_artifact(
        out.as_deref(),
        "ablation_rate_sweep.csv",
        &render_csv(&headers4, &rows4),
    );
}
