//! Extension experiment: tracking moving traffic, single vs
//! cooperative.
//!
//! §II-A says CAVs "monitor the motion \[of\] surrounding vehicles"; the
//! paper itself stops at per-frame detection. This binary closes the
//! loop: a two-vehicle convoy on the highway scenario runs a
//! nearest-neighbour tracker over its detections, once on single-shot
//! frames and once on fused frames, and compares confirmed-track yield
//! and velocity-estimate quality against the known 25 m/s ground truth.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::EvaluationConfig;
use cooper_core::tracking::{Tracker, TrackerConfig};
use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_lidar_sim::scenario::highway;
use cooper_lidar_sim::{LidarScanner, PoseEstimate};

struct RunStats {
    confirmed: usize,
    moving: usize,
    velocity_errors: Vec<f64>,
}

fn run_tracking(pipeline: &CooperPipeline, cooperative: bool) -> RunStats {
    let scene = highway();
    let config = EvaluationConfig::default();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let dt = 0.5f64;
    // The tracker gate must admit a 25 m/s car moving 12.5 m per frame:
    // prediction covers the motion once velocity converges, but the
    // first re-association needs a generous gate.
    let mut tracker = Tracker::new(TrackerConfig {
        gate_distance: 14.0,
        // Fast gains: at 25 m/s and 0.5 s frames the velocity estimate
        // must converge within ~2 associations or the gate loses the
        // track.
        alpha: 0.8,
        beta: 0.7,
        ..TrackerConfig::default()
    });

    let mut world = scene.world.clone();
    for step in 0..8u64 {
        let scan_rx = scanner.scan(&world, &scene.observers[rx], 100 + step);
        let detections = if cooperative {
            let scan_tx = scanner.scan(&world, &scene.observers[tx], 200 + step);
            let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &config.origin);
            let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &config.origin);
            let packet = ExchangePacket::build(1, step as u32, &scan_tx, est_tx).expect("encodes");
            pipeline
                .perceive(&scan_rx, &est_rx, &[packet], &config.origin)
                .detections
        } else {
            pipeline.perceive_single(&scan_rx)
        };
        tracker.update(&detections, dt);
        world = world.advanced(dt);
    }

    // Ground-truth speeds are 25 m/s east or 22 m/s west. Static
    // confirmed tracks are false positives (walls, barriers); the
    // velocity metric is scored on the moving tracks only.
    let moving: Vec<f64> = tracker
        .confirmed_tracks()
        .iter()
        .map(|t| t.velocity.norm())
        .filter(|speed| *speed > 10.0)
        .collect();
    let velocity_errors = moving
        .iter()
        .map(|speed| (speed - 25.0).abs().min((speed - 22.0).abs()))
        .collect::<Vec<f64>>();
    RunStats {
        confirmed: tracker.confirmed_tracks().len(),
        moving: moving.len(),
        velocity_errors,
    }
}

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();

    println!("=== Extension: tracking moving traffic (highway, 8 frames) ===\n");
    let mut rows = Vec::new();
    for (label, cooperative) in [("single shot", false), ("cooperative", true)] {
        let stats = run_tracking(&pipeline, cooperative);
        let mean_err = if stats.velocity_errors.is_empty() {
            f64::NAN
        } else {
            stats.velocity_errors.iter().sum::<f64>() / stats.velocity_errors.len() as f64
        };
        rows.push(vec![
            label.to_string(),
            stats.confirmed.to_string(),
            stats.moving.to_string(),
            format!("{mean_err:.1}"),
        ]);
    }
    let headers = [
        "input",
        "confirmed_tracks",
        "moving_tracks",
        "speed_error_m_s",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: fused frames confirm more tracks (the cooperator sees");
    println!("traffic the ego vehicle's own returns are too thin to hold), closing");
    println!("the paper's §II-A motion-monitoring loop on top of raw fusion.");
    write_artifact(
        output_dir().as_deref(),
        "tracking_study.csv",
        &render_csv(&headers, &rows),
    );
}
