//! Extension experiment: tracking moving traffic, single vs
//! cooperative.
//!
//! §II-A says CAVs "monitor the motion \[of\] surrounding vehicles"; the
//! paper itself stops at per-frame detection. This binary closes the
//! loop: a two-vehicle convoy on the highway scenario runs the
//! pipeline's track-level temporal fusion
//! ([`CooperPipeline::with_tracker`]) over its detections, once on
//! single-shot frames and once on fused frames, and compares
//! confirmed-track yield and velocity-estimate quality against the
//! known 25 m/s ground truth. Results are appended to the bench
//! regression ledger.

use cooper_bench::{ledger, output_dir, render_table, standard_pipeline};
use cooper_core::report::EvaluationConfig;
use cooper_core::tracking::TrackerConfig;
use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_lidar_sim::scenario::highway;
use cooper_lidar_sim::{LidarScanner, PoseEstimate};

struct RunStats {
    confirmed: usize,
    moving: usize,
    velocity_errors: Vec<f64>,
}

fn run_tracking(pipeline: &CooperPipeline, cooperative: bool) -> RunStats {
    let scene = highway();
    let config = EvaluationConfig::default();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let dt = 0.5f64;
    let mut tracker = pipeline
        .make_tracker()
        .expect("the pipeline is built with a tracker");

    let mut world = scene.world.clone();
    for step in 0..8u64 {
        let scan_rx = scanner.scan(&world, &scene.observers[rx], 100 + step);
        let detections = if cooperative {
            let scan_tx = scanner.scan(&world, &scene.observers[tx], 200 + step);
            let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &config.origin);
            let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &config.origin);
            let packet = ExchangePacket::build(1, step as u32, &scan_tx, est_tx).expect("encodes");
            pipeline
                .perceive(&scan_rx, &est_rx, &[packet], &config.origin)
                .detections
        } else {
            pipeline.perceive_single(&scan_rx)
        };
        tracker.update(&detections, dt);
        world = world.advanced(dt);
    }

    // Ground-truth speeds are 25 m/s east or 22 m/s west. Static
    // confirmed tracks are false positives (walls, barriers); the
    // velocity metric is scored on the moving tracks only.
    let moving: Vec<f64> = tracker
        .confirmed_tracks()
        .iter()
        .map(|t| t.velocity.norm())
        .filter(|speed| *speed > 10.0)
        .collect();
    let velocity_errors = moving
        .iter()
        .map(|speed| (speed - 25.0).abs().min((speed - 22.0).abs()))
        .collect::<Vec<f64>>();
    RunStats {
        confirmed: tracker.confirmed_tracks().len(),
        moving: moving.len(),
        velocity_errors,
    }
}

fn main() {
    eprintln!("training SPOD detector…");
    // The tracker gate must admit a 25 m/s car moving 12.5 m per frame:
    // prediction covers the motion once velocity converges, but the
    // first re-association needs a generous gate — and fast gains, so
    // the velocity estimate converges within ~2 associations.
    let pipeline = standard_pipeline().with_tracker(TrackerConfig {
        gate_distance: 14.0,
        alpha: 0.8,
        beta: 0.7,
        ..TrackerConfig::default()
    });

    println!("=== Extension: tracking moving traffic (highway, 8 frames) ===\n");
    let mut rows = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (label, key, cooperative) in [
        ("single shot", "single", false),
        ("cooperative", "coop", true),
    ] {
        let stats = run_tracking(&pipeline, cooperative);
        let mean_err = if stats.velocity_errors.is_empty() {
            f64::NAN
        } else {
            stats.velocity_errors.iter().sum::<f64>() / stats.velocity_errors.len() as f64
        };
        metrics.push((format!("{key}_confirmed"), stats.confirmed as f64));
        metrics.push((format!("{key}_moving"), stats.moving as f64));
        if mean_err.is_finite() {
            metrics.push((format!("{key}_speed_error_m_s"), mean_err));
        }
        rows.push(vec![
            label.to_string(),
            stats.confirmed.to_string(),
            stats.moving.to_string(),
            format!("{mean_err:.1}"),
        ]);
    }
    let headers = [
        "input",
        "confirmed_tracks",
        "moving_tracks",
        "speed_error_m_s",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: fused frames confirm more tracks (the cooperator sees");
    println!("traffic the ego vehicle's own returns are too thin to hold), closing");
    println!("the paper's §II-A motion-monitoring loop on top of raw fusion.");

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let record = ledger::BenchRecord::new("tracking_study", &metric_refs);
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
}
