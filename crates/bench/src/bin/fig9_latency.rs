//! Figure 9 — time needed to detect objects on single-shot vs
//! cooperative data, for KITTI-style (64-beam) and T&J-style (16-beam)
//! input.
//!
//! The paper reports ~35–50 ms on a GTX 1080 Ti with fusion costing
//! ~5 ms extra; the reproduction runs the same pipeline on CPU, so the
//! absolute numbers differ — the *shape* to check is that cooperative
//! detection costs only a small constant over single-shot detection
//! (the network is identical; only the input grows).
//!
//! `cargo bench -p cooper-bench --bench detection_latency` produces the
//! Criterion-grade version of this figure.

use std::time::Instant;

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::EvaluationConfig;
use cooper_core::ExchangePacket;
use cooper_lidar_sim::scenario::{t_junction, tj_scenario_1, Scenario};
use cooper_lidar_sim::{GpsImuModel, LidarScanner};

fn time_case(
    pipeline: &cooper_core::CooperPipeline,
    scenario: &Scenario,
    reps: usize,
) -> (f64, f64) {
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let (ia, ib) = scenario.pairs[0];
    let scan_a = scanner.scan(&scenario.world, &scenario.observers[ia], 1);
    let scan_b = scanner.scan(&scenario.world, &scenario.observers[ib], 2);
    let config = EvaluationConfig::default();
    let mut rng = rand::thread_rng();
    let est_a = GpsImuModel::ideal().measure(&scenario.observers[ia], &config.origin, &mut rng);
    let est_b = GpsImuModel::ideal().measure(&scenario.observers[ib], &config.origin, &mut rng);

    // Warm up.
    let _ = pipeline.perceive_single(&scan_a);

    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = pipeline.perceive_single(&scan_a);
    }
    let single_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
        let _ = pipeline
            .perceive_cooperative(&scan_a, &est_a, &[packet], &config.origin)
            .expect("decodes");
    }
    let coop_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;
    (single_ms, coop_ms)
}

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let reps = 5;

    println!("=== Figure 9: detection time, single shot vs Cooper ===\n");
    let mut rows = Vec::new();
    for (label, scenario) in [("KITTI", t_junction()), ("T&J", tj_scenario_1())] {
        let (single_ms, coop_ms) = time_case(&pipeline, &scenario, reps);
        let overhead = coop_ms - single_ms;
        rows.push(vec![
            label.to_string(),
            format!("{single_ms:.1}"),
            format!("{coop_ms:.1}"),
            format!("{overhead:.1}"),
            format!("{:.0}", overhead / single_ms * 100.0),
        ]);
    }
    let headers = [
        "dataset",
        "single_ms",
        "cooper_ms",
        "overhead_ms",
        "overhead_%",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check (paper): Cooper adds a small constant (~5 ms on GPU)");
    println!("over the single-shot baseline on both datasets.");
    write_artifact(
        output_dir().as_deref(),
        "fig9_latency.csv",
        &render_csv(&headers, &rows),
    );
}
