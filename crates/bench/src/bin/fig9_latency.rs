//! Figure 9 — time needed to detect objects on single-shot vs
//! cooperative data, for KITTI-style (64-beam) and T&J-style (16-beam)
//! input.
//!
//! The paper reports ~35–50 ms on a GTX 1080 Ti with fusion costing
//! ~5 ms extra; the reproduction runs the same pipeline on CPU, so the
//! absolute numbers differ — the *shape* to check is that cooperative
//! detection costs only a small constant over single-shot detection
//! (the network is identical; only the input grows).
//!
//! The timing comes from the `cooper-telemetry` span registry: the
//! pipeline is instrumented end-to-end, so this binary just enables
//! telemetry, replays each case `reps` times and reads the per-stage
//! span distributions (p50/p95/p99/max) out of the snapshot — no
//! hand-rolled `Instant::now()` pairs.
//!
//! `cargo bench -p cooper-bench --bench detection_latency` produces the
//! Criterion-grade version of this figure.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::EvaluationConfig;
use cooper_core::ExchangePacket;
use cooper_lidar_sim::scenario::{t_junction, tj_scenario_1, Scenario};
use cooper_lidar_sim::{GpsImuModel, LidarScanner};
use cooper_telemetry::TelemetrySnapshot;

/// Replays `reps` single-shot and cooperative perception rounds with
/// telemetry enabled and returns the resulting span snapshot.
fn run_case(
    pipeline: &cooper_core::CooperPipeline,
    scenario: &Scenario,
    reps: usize,
) -> TelemetrySnapshot {
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let (ia, ib) = scenario.pairs[0];
    let scan_a = scanner.scan(&scenario.world, &scenario.observers[ia], 1);
    let scan_b = scanner.scan(&scenario.world, &scenario.observers[ib], 2);
    let config = EvaluationConfig::default();
    let mut rng = rand::thread_rng();
    let est_a = GpsImuModel::ideal().measure(&scenario.observers[ia], &config.origin, &mut rng);
    let est_b = GpsImuModel::ideal().measure(&scenario.observers[ib], &config.origin, &mut rng);

    // Warm up outside the measured window.
    let _ = pipeline.perceive_single(&scan_a);

    cooper_telemetry::reset();
    cooper_telemetry::enable();
    for _ in 0..reps {
        let _ = pipeline.perceive_single(&scan_a);
    }
    for _ in 0..reps {
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
        let _ = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);
    }
    cooper_telemetry::disable();
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::reset();
    snapshot
}

fn mean_ms(snapshot: &TelemetrySnapshot, path: &str) -> f64 {
    snapshot.span(path).map_or(f64::NAN, |s| s.mean_us / 1e3)
}

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let reps = 5;

    println!("=== Figure 9: detection time, single shot vs Cooper ===\n");
    let mut summary_rows = Vec::new();
    let mut stage_rows = Vec::new();
    for (label, scenario) in [("KITTI", t_junction()), ("T&J", tj_scenario_1())] {
        let snapshot = run_case(&pipeline, &scenario, reps);
        let single_ms = mean_ms(&snapshot, "pipeline.perceive_single");
        let coop_ms = mean_ms(&snapshot, "pipeline.perceive");
        let overhead = coop_ms - single_ms;
        summary_rows.push(vec![
            label.to_string(),
            format!("{single_ms:.1}"),
            format!("{coop_ms:.1}"),
            format!("{overhead:.1}"),
            format!("{:.0}", overhead / single_ms * 100.0),
        ]);
        for span in &snapshot.spans {
            stage_rows.push(vec![
                label.to_string(),
                span.path.clone(),
                span.count.to_string(),
                span.p50_us.to_string(),
                span.p95_us.to_string(),
                span.p99_us.to_string(),
                span.max_us.to_string(),
            ]);
        }
    }
    let summary_headers = [
        "dataset",
        "single_ms",
        "cooper_ms",
        "overhead_ms",
        "overhead_%",
    ];
    println!("{}", render_table(&summary_headers, &summary_rows));
    println!("Shape check (paper): Cooper adds a small constant (~5 ms on GPU)");
    println!("over the single-shot baseline on both datasets.\n");

    let stage_headers = [
        "dataset", "stage", "count", "p50_us", "p95_us", "p99_us", "max_us",
    ];
    println!("=== Per-stage span distributions ===\n");
    println!("{}", render_table(&stage_headers, &stage_rows));

    write_artifact(
        output_dir().as_deref(),
        "fig9_latency.csv",
        &render_csv(&summary_headers, &summary_rows),
    );
    write_artifact(
        output_dir().as_deref(),
        "fig9_stages.csv",
        &render_csv(&stage_headers, &stage_rows),
    );
}
