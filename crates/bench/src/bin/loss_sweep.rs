//! Loss sweep: scan recall and bandwidth vs burst-loss rate, with and
//! without fragment-level ARQ — the lossy-transport extension of the
//! paper's Fig. 9 / Table IV bandwidth study.
//!
//! The paper's feasibility argument assumes DSRC delivers the ~210 KB
//! compressed scan; this benchmark measures what survives when the
//! channel fails in bursts (Gilbert–Elliott model). For each long-run
//! loss rate it transmits a batch of scan-sized payloads under a 1 Hz
//! delivery deadline, once with plain transmission and once with ARQ
//! retransmission, and reports how many scans arrive whole, how many
//! are salvaged as a contiguous prefix, and what the recovery costs in
//! air time. Emits `BENCH_loss.json`.

use cooper_bench::{output_dir, render_table, write_artifact};
use cooper_v2x::{
    transmit_with_arq, ArqConfig, DsrcChannel, DsrcConfig, GilbertElliott, LossModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's compressed scan size (§II-C: "200 KB per scan").
const PAYLOAD_BYTES: usize = 210_000;
/// Transfers per configuration — enough for stable rates.
const TRANSFERS: usize = 200;
/// 1 Hz exchange: everything must land within a second.
const DEADLINE_S: f64 = 1.0;
/// Long-run burst-loss rates swept.
const LOSS_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

/// Outcome of one (loss rate, arq on/off) configuration.
struct SweepPoint {
    loss_rate: f64,
    arq: bool,
    scans_complete: usize,
    scans_salvaged: usize,
    scans_lost: usize,
    scan_recall: f64,
    payload_recall: f64,
    mbit_on_air: f64,
    retransmits: usize,
    deadline_misses: usize,
}

fn channel_for(loss_rate: f64) -> DsrcChannel {
    let loss_model = if loss_rate == 0.0 {
        LossModel::Independent
    } else {
        LossModel::GilbertElliott(GilbertElliott::from_loss_rate(loss_rate))
    };
    DsrcChannel::new(DsrcConfig {
        loss_model,
        ..DsrcConfig::default()
    })
}

fn run_point(loss_rate: f64, arq_on: bool, seed_base: u64) -> SweepPoint {
    let channel = channel_for(loss_rate);
    let config = if arq_on {
        ArqConfig::default()
    } else {
        ArqConfig {
            max_retries: 0,
            ..ArqConfig::default()
        }
    };
    let mut complete = 0usize;
    let mut salvaged = 0usize;
    let mut payload_fraction_sum = 0.0f64;
    let mut bytes_on_air = 0usize;
    let mut retransmits = 0usize;
    let mut deadline_misses = 0usize;
    for i in 0..TRANSFERS {
        let mut rng = StdRng::seed_from_u64(seed_base + i as u64);
        let report = transmit_with_arq(&channel, PAYLOAD_BYTES, DEADLINE_S, &config, &mut rng);
        if report.complete {
            complete += 1;
        } else if report.contiguous_prefix > 0 {
            salvaged += 1;
        }
        payload_fraction_sum += report.salvage_fraction();
        bytes_on_air += report.bytes_on_air;
        retransmits += report.retransmits;
        deadline_misses += usize::from(report.deadline_exceeded);
    }
    SweepPoint {
        loss_rate,
        arq: arq_on,
        scans_complete: complete,
        scans_salvaged: salvaged,
        scans_lost: TRANSFERS - complete,
        scan_recall: complete as f64 / TRANSFERS as f64,
        payload_recall: payload_fraction_sum / TRANSFERS as f64,
        mbit_on_air: bytes_on_air as f64 * 8.0 / 1e6,
        retransmits,
        deadline_misses,
    }
}

fn run_sweep() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for (ri, &rate) in LOSS_RATES.iter().enumerate() {
        for arq_on in [false, true] {
            // Same seed base for both arms of a rate: the comparison
            // sees the same channel draws where the policies coincide.
            points.push(run_point(rate, arq_on, 1000 * (ri as u64 + 1)));
        }
    }
    points
}

fn main() {
    println!("=== Loss sweep: scan recall vs burst loss, ARQ off/on ===\n");
    let points = run_sweep();

    let headers = [
        "loss_rate",
        "arq",
        "complete",
        "salvaged",
        "lost",
        "scan_recall",
        "payload_recall",
        "mbit_on_air",
        "retransmits",
        "deadline_miss",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.loss_rate),
                p.arq.to_string(),
                p.scans_complete.to_string(),
                p.scans_salvaged.to_string(),
                p.scans_lost.to_string(),
                format!("{:.3}", p.scan_recall),
                format!("{:.3}", p.payload_recall),
                format!("{:.1}", p.mbit_on_air),
                p.retransmits.to_string(),
                p.deadline_misses.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    let at = |rate: f64, arq: bool| {
        points
            .iter()
            .find(|p| p.loss_rate == rate && p.arq == arq)
            .expect("sweep covers the point")
    };
    let (no_arq, with_arq) = (at(0.10, false), at(0.10, true));
    let recovered = 1.0 - with_arq.scans_lost as f64 / no_arq.scans_lost.max(1) as f64;
    println!(
        "At 10% burst loss: {} scans lost without ARQ, {} with ARQ ({:.0}% recovered) for {:.1}% extra air time.",
        no_arq.scans_lost,
        with_arq.scans_lost,
        recovered * 100.0,
        (with_arq.mbit_on_air / no_arq.mbit_on_air - 1.0) * 100.0,
    );

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"loss_rate\": {:.2}, \"arq\": {}, \"scans_complete\": {}, \"scans_salvaged\": {}, \"scans_lost\": {}, \"scan_recall\": {:.4}, \"payload_recall\": {:.4}, \"mbit_on_air\": {:.2}, \"retransmits\": {}, \"deadline_misses\": {}}}",
                p.loss_rate,
                p.arq,
                p.scans_complete,
                p.scans_salvaged,
                p.scans_lost,
                p.scan_recall,
                p.payload_recall,
                p.mbit_on_air,
                p.retransmits,
                p.deadline_misses
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"payload_bytes\": {PAYLOAD_BYTES},\n  \"transfers_per_point\": {TRANSFERS},\n  \"deadline_s\": {DEADLINE_S},\n  \"arq_max_retries\": {},\n  \"sweep\": [\n{}\n  ],\n  \"arq_recovery_at_10pct_loss\": {{\"scans_lost_without_arq\": {}, \"scans_lost_with_arq\": {}, \"recovered_fraction\": {:.4}}}\n}}\n",
        ArqConfig::default().max_retries,
        sweep_json.join(",\n"),
        no_arq.scans_lost,
        with_arq.scans_lost,
        recovered,
    );
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_loss.json", &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion, enforced where CI sees it: at 10%
    /// burst loss ARQ must recover at least half of the scans that
    /// plain transmission loses.
    #[test]
    fn arq_recovers_at_least_half_the_lost_scans_at_ten_percent() {
        let no_arq = run_point(0.10, false, 3000);
        let with_arq = run_point(0.10, true, 3000);
        assert!(
            no_arq.scans_lost > 0,
            "10% burst loss must actually lose scans without ARQ"
        );
        assert!(
            2 * with_arq.scans_lost <= no_arq.scans_lost,
            "ARQ left {} of {} lost scans unrecovered",
            with_arq.scans_lost,
            no_arq.scans_lost
        );
    }

    #[test]
    fn lossless_point_is_perfect_and_free() {
        let p = run_point(0.0, true, 500);
        assert_eq!(p.scans_complete, TRANSFERS);
        assert_eq!(p.retransmits, 0);
        assert!((p.scan_recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_degrades_with_loss_without_arq() {
        let light = run_point(0.05, false, 700);
        let heavy = run_point(0.30, false, 700);
        assert!(light.scan_recall >= heavy.scan_recall);
        assert!(heavy.scan_recall < 0.5, "30% burst loss must bite");
    }
}
