//! Extension experiment: cooperative perception for pedestrians and
//! cyclists.
//!
//! §III-A motivates SPOD with how much harder small objects are
//! (VoxelNet: pedestrian AP 30 points below cars), but the paper's
//! cooperative evaluation counts cars only. Small objects should gain
//! *more* from cooperation — fewer returns means single-shot detection
//! dies sooner with range and occlusion. This binary measures the gain
//! per class over random two-vehicle scenes.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::EvaluationConfig;
use cooper_core::ExchangePacket;
use cooper_geometry::{Attitude, Pose, Vec3};
use cooper_lidar_sim::dataset::{generate_scene, SceneConfig};
use cooper_lidar_sim::{BeamModel, LidarScanner, ObjectClass, PoseEstimate};
use cooper_spod::Detection;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let config = EvaluationConfig::default();
    let scene_config = SceneConfig {
        cars: (2, 5),
        pedestrians: (2, 5),
        cyclists: (2, 4),
        ..SceneConfig::default()
    };
    let beams = BeamModel::vlp16();
    let scanner = LidarScanner::new(beams.clone());

    let mut single: std::collections::HashMap<ObjectClass, (usize, usize)> = Default::default();
    let mut coop: std::collections::HashMap<ObjectClass, (usize, usize)> = Default::default();

    eprintln!("evaluating 12 two-vehicle scenes…");
    for seed in 0..12u64 {
        let scene = generate_scene(40_000 + seed, &scene_config, &beams);
        // A second vehicle 15 m away at a random-ish bearing.
        let bearing = seed as f64 * 0.7;
        let second_pose = Pose::new(
            Vec3::new(15.0 * bearing.cos(), 15.0 * bearing.sin(), 1.8),
            Attitude::from_yaw(bearing + 1.2),
        );
        let second_scan = scanner.scan(&scene.world, &second_pose, 700 + seed);
        let est_a = PoseEstimate::from_pose(&scene.sensor_pose, &config.origin);
        let est_b = PoseEstimate::from_pose(&second_pose, &config.origin);
        let packet = ExchangePacket::build(1, 0, &second_scan, est_b).expect("encodes");

        let dets_single = pipeline.perceive_single_all_classes(&scene.cloud);
        let result = pipeline.perceive(&scene.cloud, &est_a, &[packet], &config.origin);
        let dets_coop: Vec<Detection> = pipeline.perceive_single_all_classes(&result.fused_cloud);

        // Labels live in the first sensor's frame already.
        for class in ObjectClass::TARGETS {
            let gts: Vec<_> = scene
                .labels
                .iter()
                .filter(|l| l.class == class)
                .map(|l| l.obb)
                .collect();
            let match_count = |dets: &[Detection]| {
                let class_dets: Vec<Detection> =
                    dets.iter().copied().filter(|d| d.class == class).collect();
                cooper_core::report::match_by_center_distance(
                    &class_dets,
                    &gts,
                    // Scale the match gate with object size.
                    (class.canonical_size().x * 0.75).max(1.0),
                )
                .iter()
                .filter(|s| s.is_some())
                .count()
            };
            let s = single.entry(class).or_insert((0, 0));
            s.0 += match_count(&dets_single);
            s.1 += gts.len();
            let c = coop.entry(class).or_insert((0, 0));
            c.0 += match_count(&dets_coop);
            c.1 += gts.len();
        }
    }

    println!("=== Extension: per-class cooperative gain ===\n");
    let mut rows = Vec::new();
    for class in ObjectClass::TARGETS {
        let (s_hit, total) = single[&class];
        let (c_hit, _) = coop[&class];
        let s_recall = s_hit as f64 / total.max(1) as f64 * 100.0;
        let c_recall = c_hit as f64 / total.max(1) as f64 * 100.0;
        rows.push(vec![
            class.to_string(),
            total.to_string(),
            format!("{s_recall:.0}"),
            format!("{c_recall:.0}"),
            format!("{:+.0}", c_recall - s_recall),
        ]);
    }
    let headers = [
        "class",
        "objects",
        "single_recall_%",
        "coop_recall_%",
        "gain_pts",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: every class gains recall from raw-data cooperation;");
    println!("the paper's car-only evaluation generalizes to the small classes");
    println!("its introduction worries about.");
    write_artifact(
        output_dir().as_deref(),
        "multiclass_cooperation.csv",
        &render_csv(&headers, &rows),
    );
}
