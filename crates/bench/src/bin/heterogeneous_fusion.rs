//! Extension experiment: heterogeneous cooperative perception.
//!
//! §IV-A: "Note that Cooper can also be applied to heterogeneous point
//! clouds input. We elected not to conduct this test due to a lack of
//! suitable LiDAR datasets." The simulator has no such limitation, so
//! this binary runs the experiment the paper could not: one vehicle
//! carries a 16-beam VLP-16, its cooperator a 64-beam HDL-64E (and the
//! reverse), across all scenarios.
//!
//! Expected shape: raw-data fusion is indifferent to the beam-count mix
//! — a sparse receiver gains the most from a dense cooperator, and even
//! a dense receiver still gains viewpoint diversity from a sparse one.

use cooper_bench::{output_dir, render_csv, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::ExchangePacket;
use cooper_geometry::RigidTransform;
use cooper_lidar_sim::scenario::all_scenarios;
use cooper_lidar_sim::{BeamModel, LidarScanner, PoseEstimate};

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let config = EvaluationConfig::default();

    let combos: [(&str, BeamModel, BeamModel); 4] = [
        ("16+16", BeamModel::vlp16(), BeamModel::vlp16()),
        ("16+64", BeamModel::vlp16(), BeamModel::hdl64()),
        ("64+16", BeamModel::hdl64(), BeamModel::vlp16()),
        ("64+64", BeamModel::hdl64(), BeamModel::hdl64()),
    ];

    println!("=== Extension: heterogeneous beam-count fusion ===\n");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (label, rx_beams, tx_beams) in &combos {
        let mut single_total = 0usize;
        let mut coop_total = 0usize;
        let mut gt_total = 0usize;
        for scene in all_scenarios() {
            let (ia, ib) = scene.pairs[0];
            let pose_a = scene.observers[ia];
            let pose_b = scene.observers[ib];
            let scan_a = LidarScanner::new(rx_beams.clone()).scan(&scene.world, &pose_a, 31);
            let scan_b = LidarScanner::new(tx_beams.clone()).scan(&scene.world, &pose_b, 32);
            let est_a = PoseEstimate::from_pose(&pose_a, &config.origin);
            let est_b = PoseEstimate::from_pose(&pose_b, &config.origin);
            let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
            let gt_in_a: Vec<_> = scene
                .ground_truth_cars()
                .iter()
                .map(|g| g.transformed(&world_to_a))
                .collect();

            let single = pipeline.perceive_single(&scan_a);
            let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
            let coop = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);

            let count = |dets: &[cooper_core::Detection]| {
                match_by_center_distance(dets, &gt_in_a, config.match_distance)
                    .iter()
                    .filter(|s| s.is_some())
                    .count()
            };
            single_total += count(&single);
            coop_total += count(&coop.detections);
            gt_total += gt_in_a.len();
        }
        rows.push(vec![
            label.to_string(),
            single_total.to_string(),
            coop_total.to_string(),
            gt_total.to_string(),
            format!("{:+}", coop_total as i64 - single_total as i64),
        ]);
        csv_rows.push(vec![
            label.to_string(),
            single_total.to_string(),
            coop_total.to_string(),
            gt_total.to_string(),
        ]);
    }
    let headers = ["rx+tx beams", "single_rx", "cooperative", "gt_cars", "gain"];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: every mix gains from cooperation; the sparse receiver");
    println!("(16+64) gains the most, and heterogeneity costs nothing — the fused");
    println!("input is just points.");
    write_artifact(
        output_dir().as_deref(),
        "heterogeneous_fusion.csv",
        &render_csv(&headers, &csv_rows),
    );
}
