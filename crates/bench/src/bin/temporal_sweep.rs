//! Temporal perception benchmark: change-proportional perceive cost.
//!
//! The incremental SPOD path (`SpodDetector::detect_incremental`) keeps
//! a [`FeaturizeCache`] alive across steps so per-step cost scales with
//! how much the scene *changed*, not how large it is. This binary
//! drives the from-scratch and incremental paths over three
//! change-profiles of the same drive and reports amortized perceive
//! time per step:
//!
//! - **low change** — the scene is static and every step's scan is
//!   bitwise identical: the cache answers from its memoized detections.
//! - **append change** — each step appends a small cluster of new
//!   returns to the previous scan: voxelization reuses the unchanged
//!   chunk prefix and the VFE reuses rows of untouched voxels.
//! - **high change** — every step is a fresh scan of an advancing
//!   world: nothing is reusable and the incremental path degrades to
//!   roughly from-scratch cost (its overhead is the prefix probe).
//!
//! Every incremental detection list is verified bit-identical to the
//! from-scratch one — the speedup is only admissible because the
//! results are exactly equal. Measurements land in
//! `BENCH_temporal.json`; `--check` appends the normalized result to
//! the bench regression ledger, where `bit_identical` gates at zero
//! slack and `low_change_speedup` has an absolute ≥2x floor.

use std::time::Instant;

use cooper_bench::{ledger, output_dir, render_table, write_artifact};
use cooper_lidar_sim::scenario::tj_scenario_1;
use cooper_lidar_sim::LidarScanner;
use cooper_pointcloud::{Point, PointCloud};
use cooper_spod::{
    DetectOptions, DetectScratch, Detection, FeaturizeCache, SpodConfig, SpodDetector,
};

/// Steps per change-profile. Amortization needs more than one step: the
/// incremental path pays full price on step 0 and earns it back later.
const STEPS: usize = 6;

/// One change-profile: a name and the per-step clouds.
struct Arm {
    name: &'static str,
    clouds: Vec<PointCloud>,
}

/// Builds the three change-profiles from one scenario drive.
fn arms(azimuth_steps: usize) -> Vec<Arm> {
    let scene = tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model().with_azimuth_steps(azimuth_steps));
    let base = scanner.scan(&scene.world, &scene.observers[0], 11);

    // Low change: a parked vehicle in a static world — every step's
    // scan is the same frame, bit for bit.
    let low = Arm {
        name: "low",
        clouds: vec![base.clone(); STEPS],
    };

    // Append change: each step adds a small cluster of new returns
    // (a handful of chunks' worth of suffix) to the previous frame.
    let mut appended = Vec::with_capacity(STEPS);
    let mut cloud = base.clone();
    for step in 0..STEPS {
        appended.push(cloud.clone());
        let mut points: Vec<Point> = cloud.as_slice().to_vec();
        for k in 0..256 {
            let t = (step * 256 + k) as f64;
            points.push(Point::new(
                cooper_geometry::Vec3::new(
                    8.0 + (t * 0.37).sin() * 3.0,
                    -4.0 + (t * 0.61).cos() * 3.0,
                    0.4,
                ),
                0.5,
            ));
        }
        cloud = points.into_iter().collect();
    }
    let append = Arm {
        name: "append",
        clouds: appended,
    };

    // High change: the world advances and the scan seed changes, so
    // every return moves and no prefix survives.
    let mut world = scene.world.clone();
    let mut high_clouds = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        high_clouds.push(scanner.scan(&world, &scene.observers[0], 100 + step as u64));
        world = world.advanced(1.0);
    }
    let high = Arm {
        name: "high",
        clouds: high_clouds,
    };

    vec![low, append, high]
}

/// Per-arm result: amortized per-step cost on both paths, and whether
/// every step's detections matched exactly.
struct ArmResult {
    name: &'static str,
    scratch_us: u64,
    incremental_us: u64,
    bit_identical: bool,
}

impl ArmResult {
    fn speedup(&self) -> f64 {
        self.scratch_us.max(1) as f64 / self.incremental_us.max(1) as f64
    }
}

fn run_arm(detector: &SpodDetector, arm: &Arm) -> ArmResult {
    let options = DetectOptions::default();
    // From-scratch reference, timed amortized over the sequence.
    let mut scratch = DetectScratch::new();
    let started = Instant::now();
    let reference: Vec<Vec<Detection>> = arm
        .clouds
        .iter()
        .map(|cloud| detector.detect_with(cloud, &options, &mut scratch))
        .collect();
    let scratch_us = (started.elapsed().as_micros() as u64) / STEPS as u64;

    // Incremental path: one warm cache across the whole sequence.
    let mut cache = FeaturizeCache::new();
    let started = Instant::now();
    let incremental: Vec<Vec<Detection>> = arm
        .clouds
        .iter()
        .map(|cloud| detector.detect_incremental(cloud, &options, &mut scratch, &mut cache))
        .collect();
    let incremental_us = (started.elapsed().as_micros() as u64) / STEPS as u64;

    ArmResult {
        name: arm.name,
        scratch_us,
        incremental_us,
        bit_identical: reference == incremental,
    }
}

fn run_all(azimuth_steps: usize) -> Vec<ArmResult> {
    let detector = SpodDetector::new(SpodConfig::default());
    arms(azimuth_steps)
        .iter()
        .map(|arm| run_arm(&detector, arm))
        .collect()
}

fn result_by_name<'a>(results: &'a [ArmResult], name: &str) -> &'a ArmResult {
    results
        .iter()
        .find(|r| r.name == name)
        .expect("all arms present")
}

/// `--check`: the CI smoke mode. Runs a reduced sweep, verifies that
/// every arm's incremental detections are bit-identical to from-scratch
/// (exit non-zero otherwise) and appends the normalized result to the
/// bench regression ledger, where the low-change speedup must clear an
/// absolute ≥2x floor.
fn run_check() {
    let results = run_all(300);
    let bit_identical = results.iter().all(|r| r.bit_identical);
    let low = result_by_name(&results, "low");
    let high = result_by_name(&results, "high");
    println!(
        "check: {STEPS} steps/arm, bit-identical: {bit_identical}, \
         low-change speedup {:.2}x, high-change speedup {:.2}x",
        low.speedup(),
        high.speedup()
    );
    if !bit_identical {
        eprintln!("temporal_sweep check FAILED: incremental detections diverged");
        std::process::exit(1);
    }
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    let record = ledger::BenchRecord::new(
        "temporal_sweep",
        &[
            ("bit_identical", 1.0),
            ("low_change_speedup", low.speedup()),
            (
                "append_change_speedup",
                result_by_name(&results, "append").speedup(),
            ),
            ("high_change_speedup", high.speedup()),
            ("scratch_low_us", low.scratch_us as f64),
            ("incremental_low_us", low.incremental_us as f64),
            ("scratch_high_us", high.scratch_us as f64),
            ("incremental_high_us", high.incremental_us as f64),
        ],
    );
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
    println!("temporal_sweep check passed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }
    println!("=== Temporal perception: change-proportional perceive cost ===\n");
    let results = run_all(500);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.1}", r.scratch_us as f64 / 1e3),
                format!("{:.1}", r.incremental_us as f64 / 1e3),
                format!("{:.2}", r.speedup()),
                r.bit_identical.to_string(),
            ]
        })
        .collect();
    let headers = [
        "change",
        "scratch_ms",
        "incremental_ms",
        "speedup",
        "bit_identical",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Amortized per-step perceive cost over {STEPS} steps. The incremental");
    println!("path reuses voxelization chunk prefixes, VFE rows of unchanged voxels");
    println!("and, for bitwise-identical frames, the memoized detections — and is");
    println!("only admissible because its output is exactly the from-scratch one.");

    let arms_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"change\": \"{}\", \"steps\": {STEPS}, \"scratch_us\": {}, \"incremental_us\": {}, \"speedup\": {:.3}, \"bit_identical\": {}}}",
                r.name, r.scratch_us, r.incremental_us, r.speedup(), r.bit_identical
            )
        })
        .collect();
    let json = format!("{{\n  \"arms\": [\n{}\n  ]\n}}\n", arms_json.join(",\n"));
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_temporal.json", &json);
}
