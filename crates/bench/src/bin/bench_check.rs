//! CI gate over the bench regression ledger.
//!
//! Reads `results/BENCH_history.jsonl` (override with `--history
//! <path>`), compares the latest record of each bench against its
//! baseline with the per-metric tolerances in
//! [`cooper_bench::ledger::tolerance_for`], prints the verdict table
//! and exits non-zero when any gated metric regressed. An empty or
//! missing ledger also fails: CI is expected to have run the `--check`
//! benches first.

use std::path::PathBuf;

use cooper_bench::ledger;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--history")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(ledger::default_history_path);

    let records = match ledger::read_history(&path) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(1);
        }
    };
    if records.is_empty() {
        eprintln!(
            "bench_check: {} holds no records — run the --check benches first",
            path.display()
        );
        std::process::exit(1);
    }

    let report = ledger::check_history(&records);
    println!(
        "bench_check: {} records across {} benches in {}",
        records.len(),
        report
            .verdicts
            .iter()
            .map(|v| v.bench.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        path.display()
    );
    print!("{report}");
    if report.failed() {
        eprintln!("bench_check FAILED: gated metric regressed past tolerance");
        std::process::exit(1);
    }
    println!("bench_check passed");
}
