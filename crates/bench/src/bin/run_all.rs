//! Runs every experiment binary in sequence and collects their stdout
//! into one report — the convenient way to regenerate everything in
//! `EXPERIMENTS.md`.
//!
//! `cargo run -p cooper-bench --release --bin run_all -- --out results`

use std::process::Command;

use cooper_bench::{output_dir, write_artifact};

const EXPERIMENTS: &[&str] = &[
    "fig3_kitti_matrix",
    "fig4_kitti_summary",
    "fig6_tj_matrix",
    "fig7_tj_summary",
    "fig8_improvement_cdf",
    "fig9_latency",
    "fig10_gps_drift",
    "fig11_roi_volume",
    "table1_detector_ap",
    "ablations",
    "heterogeneous_fusion",
    "contention_study",
    "multiclass_cooperation",
    "temporal_fusion",
    "staleness_study",
    "tracking_study",
];

fn main() {
    let out = output_dir();
    let exe_dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable directory")
        .to_path_buf();

    let mut report = String::from("# Cooper experiment report\n");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        eprintln!("── running {name} …");
        let mut cmd = Command::new(exe_dir.join(name));
        if let Some(dir) = &out {
            cmd.arg("--out").arg(dir);
        }
        match cmd.output() {
            Ok(output) if output.status.success() => {
                report.push_str(&format!("\n\n## {name}\n\n```text\n"));
                report.push_str(&String::from_utf8_lossy(&output.stdout));
                report.push_str("```\n");
            }
            Ok(output) => {
                eprintln!("{name} failed: {}", output.status);
                eprintln!("{}", String::from_utf8_lossy(&output.stderr));
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "cannot launch {name}: {e} (build all binaries first: \
                     cargo build -p cooper-bench --release --bins)"
                );
                failures.push(*name);
            }
        }
    }
    print!("{report}");
    write_artifact(out.as_deref(), "full_report.md", &report);
    if failures.is_empty() {
        eprintln!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
