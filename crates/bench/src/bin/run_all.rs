//! Runs every experiment binary in sequence and collects their stdout
//! into one report — the convenient way to regenerate everything in
//! `EXPERIMENTS.md`.
//!
//! Also replays a representative cooperative-perception + exchange
//! workload in-process with the `cooper-telemetry` registry enabled and
//! writes the per-stage span distributions to `telemetry_summary.csv`
//! (stage, count, p50_us, p95_us, p99_us) — the machine-readable
//! latency baseline future performance PRs diff against.
//!
//! `cargo run -p cooper-bench --release --bin run_all -- --out results`

use std::process::Command;

use cooper_bench::{output_dir, standard_pipeline, write_artifact};
use cooper_core::report::EvaluationConfig;
use cooper_core::ExchangePacket;
use cooper_lidar_sim::scenario::tj_scenario_1;
use cooper_lidar_sim::{GpsImuModel, LidarScanner};
use cooper_pointcloud::roi::RoiCategory;
use cooper_v2x::{DsrcChannel, DsrcConfig, ExchangeScheduler, SharedMedium};

/// Replays the telemetry baseline workload: a handful of single-shot
/// and cooperative perception rounds plus an ROI exchange over DSRC,
/// so the snapshot covers spans from cooper-core, cooper-spod and
/// cooper-v2x. Child experiment processes cannot contribute to this
/// registry, hence the in-process replay.
fn telemetry_baseline() -> cooper_telemetry::TelemetrySnapshot {
    let pipeline = standard_pipeline();
    let scenario = tj_scenario_1();
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let (ia, ib) = scenario.pairs[0];
    let scan_a = scanner.scan(&scenario.world, &scenario.observers[ia], 1);
    let scan_b = scanner.scan(&scenario.world, &scenario.observers[ib], 2);
    let config = EvaluationConfig::default();
    let mut rng = rand::thread_rng();
    let est_a = GpsImuModel::ideal().measure(&scenario.observers[ia], &config.origin, &mut rng);
    let est_b = GpsImuModel::ideal().measure(&scenario.observers[ib], &config.origin, &mut rng);

    // Warm up outside the measured window.
    let _ = pipeline.perceive_single(&scan_a);

    cooper_telemetry::reset();
    cooper_telemetry::enable();
    for _ in 0..5 {
        let _ = pipeline.perceive_single(&scan_a);
        let packet = ExchangePacket::build(1, 0, &scan_b, est_b).expect("encodes");
        let _ = pipeline.perceive(&scan_a, &est_a, &[packet], &config.origin);
    }
    let medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default()));
    let per_second = vec![(scan_a, scan_b); 3];
    let _ = ExchangeScheduler::paper_default(RoiCategory::FullFrame).simulate(
        &per_second,
        &medium,
        &mut rng,
    );
    cooper_telemetry::disable();
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::reset();
    snapshot
}

const EXPERIMENTS: &[&str] = &[
    "fig3_kitti_matrix",
    "fig4_kitti_summary",
    "fig6_tj_matrix",
    "fig7_tj_summary",
    "fig8_improvement_cdf",
    "fig9_latency",
    "fig10_gps_drift",
    "fig11_roi_volume",
    "table1_detector_ap",
    "ablations",
    "heterogeneous_fusion",
    "contention_study",
    "multiclass_cooperation",
    "temporal_fusion",
    "staleness_study",
    "tracking_study",
];

fn main() {
    let out = output_dir();
    let exe_dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable directory")
        .to_path_buf();

    let mut report = String::from("# Cooper experiment report\n");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        eprintln!("── running {name} …");
        let mut cmd = Command::new(exe_dir.join(name));
        if let Some(dir) = &out {
            cmd.arg("--out").arg(dir);
        }
        match cmd.output() {
            Ok(output) if output.status.success() => {
                report.push_str(&format!("\n\n## {name}\n\n```text\n"));
                report.push_str(&String::from_utf8_lossy(&output.stdout));
                report.push_str("```\n");
            }
            Ok(output) => {
                eprintln!("{name} failed: {}", output.status);
                eprintln!("{}", String::from_utf8_lossy(&output.stderr));
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "cannot launch {name}: {e} (build all binaries first: \
                     cargo build -p cooper-bench --release --bins)"
                );
                failures.push(*name);
            }
        }
    }
    eprintln!("── collecting telemetry baseline …");
    let snapshot = telemetry_baseline();
    report.push_str("\n\n## telemetry baseline\n\n```text\n");
    report.push_str(&snapshot.render_table());
    report.push_str("```\n");

    print!("{report}");
    write_artifact(out.as_deref(), "telemetry_summary.csv", &snapshot.to_csv());
    write_artifact(out.as_deref(), "full_report.md", &report);
    if failures.is_empty() {
        eprintln!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
