//! Fault sweep: fused detection recall vs GPS drift magnitude, with
//! the alignment guard off and on — the robustness extension of the
//! paper's Figure 10.
//!
//! Figure 10 shows what uncorrected GPS skew does to individual
//! detection scores; this benchmark measures the aggregate cost and
//! what the receiver-side alignment guard buys back. For each drift
//! magnitude the transmitter's pose estimate is biased before
//! alignment, and pooled car recall over the T&J scenarios is compared
//! across four arms: ego-only perception, fused with the true pose
//! (clean), fused with the biased pose unguarded (guard off) and fused
//! with the biased pose through the guard's ICP refinement / rejection
//! gate (guard on). Emits `BENCH_fault.json`; `--check` runs the CI
//! acceptance subset.

use cooper_bench::{ledger, output_dir, render_table, standard_pipeline, write_artifact};
use cooper_core::report::{match_by_center_distance, EvaluationConfig};
use cooper_core::{AlignmentGuardConfig, CooperPipeline, ExchangePacket, GuardDecision};
use cooper_geometry::{Obb3, RigidTransform, Vec3};
use cooper_lidar_sim::scenario::tj_scenarios;
use cooper_lidar_sim::{LidarScanner, PoseEstimate};

/// The realistic sensor model's drift ceiling (metres); the acceptance
/// criterion is evaluated at twice this.
const MAX_DRIFT_M: f64 = 1.0;
/// Drift magnitudes swept (metres of planar GPS bias).
const DRIFTS_M: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0 * MAX_DRIFT_M, 3.0];
/// Match threshold for recall, metres. Tighter than the evaluation
/// default (2.5 m) on purpose: misalignment degrades *localization*,
/// and a loose threshold lets a ghosted, offset fusion still "match"
/// ground truth it localized metres off.
const MATCH_DISTANCE_M: f64 = 1.0;

/// One cooperating pair's precomputed inputs.
struct PairContext {
    scan_a: cooper_pointcloud::PointCloud,
    est_a: PoseEstimate,
    scan_b: cooper_pointcloud::PointCloud,
    est_b: PoseEstimate,
    gt_in_a: Vec<Obb3>,
}

/// Pooled recall of one arm plus the guard's verdict tally.
#[derive(Default)]
struct ArmOutcome {
    matched: usize,
    total: usize,
    refined: u64,
    rejected: u64,
}

impl ArmOutcome {
    fn recall(&self) -> f64 {
        self.matched as f64 / self.total.max(1) as f64
    }
}

/// One row of the sweep.
struct SweepPoint {
    drift_m: f64,
    ego: f64,
    clean: f64,
    guard_off: f64,
    guard_on: f64,
    refined: u64,
    rejected: u64,
}

fn contexts(config: &EvaluationConfig) -> Vec<PairContext> {
    tj_scenarios()
        .into_iter()
        .map(|scenario| {
            let scanner = LidarScanner::new(scenario.kind.beam_model());
            let (ia, ib) = scenario.pairs[0];
            let pose_a = scenario.observers[ia];
            let pose_b = scenario.observers[ib];
            let world_to_a = RigidTransform::from_pose(&pose_a).inverse();
            PairContext {
                scan_a: scanner.scan(&scenario.world, &pose_a, 11),
                est_a: PoseEstimate::from_pose(&pose_a, &config.origin),
                scan_b: scanner.scan(&scenario.world, &pose_b, 12),
                est_b: PoseEstimate::from_pose(&pose_b, &config.origin),
                gt_in_a: scenario
                    .ground_truth_cars()
                    .iter()
                    .map(|g| g.transformed(&world_to_a))
                    .collect(),
            }
        })
        .collect()
}

/// Pooled ego-only recall (no exchange at all).
fn ego_arm(pipeline: &CooperPipeline, pairs: &[PairContext]) -> f64 {
    let mut out = ArmOutcome::default();
    for pair in pairs {
        let detections = pipeline.perceive_single(&pair.scan_a);
        let scores = match_by_center_distance(&detections, &pair.gt_in_a, MATCH_DISTANCE_M);
        out.total += scores.len();
        out.matched += scores.iter().flatten().count();
    }
    out.recall()
}

/// Pooled fused recall with the transmitter's GPS biased `drift_m`
/// metres; `pipeline` decides whether the guard is in the loop.
fn fused_arm(
    pipeline: &CooperPipeline,
    pairs: &[PairContext],
    config: &EvaluationConfig,
    drift_m: f64,
) -> ArmOutcome {
    let mut out = ArmOutcome::default();
    for pair in pairs {
        let mut est_b = pair.est_b;
        est_b.gps = est_b.gps.offset_by(Vec3::new(
            drift_m * std::f64::consts::FRAC_1_SQRT_2,
            drift_m * std::f64::consts::FRAC_1_SQRT_2,
            0.0,
        ));
        let packet = ExchangePacket::build(1, 0, &pair.scan_b, est_b).expect("encodes");
        let result = pipeline.perceive(&pair.scan_a, &pair.est_a, &[packet], &config.origin);
        let scores = match_by_center_distance(&result.detections, &pair.gt_in_a, MATCH_DISTANCE_M);
        out.total += scores.len();
        out.matched += scores.iter().flatten().count();
        for record in &result.alignment {
            match record.decision {
                GuardDecision::AcceptedRefined => out.refined += 1,
                GuardDecision::Rejected | GuardDecision::InsufficientOverlap => out.rejected += 1,
                GuardDecision::AcceptedClean => {}
            }
        }
    }
    out
}

fn run_sweep(
    plain: &CooperPipeline,
    guarded: &CooperPipeline,
    pairs: &[PairContext],
    config: &EvaluationConfig,
) -> Vec<SweepPoint> {
    let ego = ego_arm(plain, pairs);
    let clean = fused_arm(plain, pairs, config, 0.0).recall();
    DRIFTS_M
        .iter()
        .map(|&drift_m| {
            let off = fused_arm(plain, pairs, config, drift_m);
            let on = fused_arm(guarded, pairs, config, drift_m);
            SweepPoint {
                drift_m,
                ego,
                clean,
                guard_off: off.recall(),
                guard_on: on.recall(),
                refined: on.refined,
                rejected: on.rejected,
            }
        })
        .collect()
}

fn guarded_pipeline(plain: &CooperPipeline) -> CooperPipeline {
    plain
        .clone()
        .with_alignment_guard(AlignmentGuardConfig::default())
}

/// The acceptance criterion at one sweep point: the guard must recover
/// at least half of the recall gap the drift opened (trivially true
/// when there is no gap) and never do worse than ego-only perception.
fn point_passes(p: &SweepPoint) -> bool {
    let target = p.guard_off + 0.5 * (p.clean - p.guard_off).max(0.0);
    p.guard_on + 1e-9 >= target && p.guard_on + 1e-9 >= p.ego
}

/// `--check`: evaluate only the 2x-max-drift point and verify the
/// acceptance criteria — the CI smoke mode. Exits non-zero on
/// violation, writes no artifact.
fn run_check() {
    let plain = standard_pipeline();
    let guarded = guarded_pipeline(&plain);
    let config = EvaluationConfig::default();
    let pairs = contexts(&config);
    let drift = 2.0 * MAX_DRIFT_M;
    let ego = ego_arm(&plain, &pairs);
    let clean = fused_arm(&plain, &pairs, &config, 0.0).recall();
    let off = fused_arm(&plain, &pairs, &config, drift);
    let on = fused_arm(&guarded, &pairs, &config, drift);
    let point = SweepPoint {
        drift_m: drift,
        ego,
        clean,
        guard_off: off.recall(),
        guard_on: on.recall(),
        refined: on.refined,
        rejected: on.rejected,
    };
    println!(
        "check at {drift:.1} m drift: ego {:.3}, clean {:.3}, guard off {:.3}, guard on {:.3} ({} refined, {} rejected)",
        point.ego, point.clean, point.guard_off, point.guard_on, point.refined, point.rejected
    );
    if !point_passes(&point) {
        eprintln!("fault_sweep check FAILED: guard must recover >= 50% of the drift gap and never fall below ego-only recall");
        std::process::exit(1);
    }
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    let record = ledger::BenchRecord::new(
        "fault_sweep",
        &[
            ("drift_m", point.drift_m),
            ("ego_recall", point.ego),
            ("clean_recall", point.clean),
            ("guard_off_recall", point.guard_off),
            ("guard_on_recall", point.guard_on),
        ],
    );
    if let Err(e) = ledger::append(&dir.join(ledger::HISTORY_FILE), &record) {
        eprintln!("warning: cannot append to bench ledger: {e}");
    }
    println!("fault_sweep check passed");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }
    println!("=== Fault sweep: fused recall vs GPS drift, guard off/on ===\n");
    eprintln!("training SPOD detector…");
    let plain = standard_pipeline();
    let guarded = guarded_pipeline(&plain);
    let config = EvaluationConfig::default();
    let pairs = contexts(&config);
    let points = run_sweep(&plain, &guarded, &pairs, &config);

    let headers = [
        "drift_m",
        "ego",
        "clean_fused",
        "guard_off",
        "guard_on",
        "refined",
        "rejected",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.drift_m),
                format!("{:.3}", p.ego),
                format!("{:.3}", p.clean),
                format!("{:.3}", p.guard_off),
                format!("{:.3}", p.guard_on),
                p.refined.to_string(),
                p.rejected.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    let headline = points
        .iter()
        .find(|p| p.drift_m == 2.0 * MAX_DRIFT_M)
        .expect("sweep covers the acceptance point");
    println!(
        "At {:.1} m drift (2x max): guard off {:.3} -> guard on {:.3} (clean {:.3}, ego {:.3}); criterion {}.",
        headline.drift_m,
        headline.guard_off,
        headline.guard_on,
        headline.clean,
        headline.ego,
        if point_passes(headline) { "met" } else { "NOT met" },
    );

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"drift_m\": {:.2}, \"ego_recall\": {:.4}, \"clean_recall\": {:.4}, \"guard_off_recall\": {:.4}, \"guard_on_recall\": {:.4}, \"refined\": {}, \"rejected\": {}}}",
                p.drift_m, p.ego, p.clean, p.guard_off, p.guard_on, p.refined, p.rejected
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"max_drift_m\": {MAX_DRIFT_M},\n  \"acceptance_drift_m\": {},\n  \"sweep\": [\n{}\n  ],\n  \"acceptance\": {{\"guard_off_recall\": {:.4}, \"guard_on_recall\": {:.4}, \"clean_recall\": {:.4}, \"ego_recall\": {:.4}, \"passes\": {}}}\n}}\n",
        2.0 * MAX_DRIFT_M,
        sweep_json.join(",\n"),
        headline.guard_off,
        headline.guard_on,
        headline.clean,
        headline.ego,
        point_passes(headline),
    );
    let dir = output_dir().unwrap_or_else(|| std::path::PathBuf::from("results"));
    write_artifact(Some(&dir), "BENCH_fault.json", &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion, enforced where CI sees it: at
    /// twice the sensor model's maximum drift the guard must recover at
    /// least half of the recall gap between the unguarded faulted run
    /// and the clean-alignment run, and never fall below the ego-only
    /// baseline.
    #[test]
    fn guard_recovers_half_the_drift_gap_at_double_max_drift() {
        let plain = standard_pipeline();
        let guarded = guarded_pipeline(&plain);
        let config = EvaluationConfig::default();
        let pairs = contexts(&config);
        let drift = 2.0 * MAX_DRIFT_M;
        let ego = ego_arm(&plain, &pairs);
        let clean = fused_arm(&plain, &pairs, &config, 0.0).recall();
        let off = fused_arm(&plain, &pairs, &config, drift);
        let on = fused_arm(&guarded, &pairs, &config, drift);
        let point = SweepPoint {
            drift_m: drift,
            ego,
            clean,
            guard_off: off.recall(),
            guard_on: on.recall(),
            refined: on.refined,
            rejected: on.rejected,
        };
        assert!(
            point_passes(&point),
            "guard on {:.3} must reach >= {:.3} (guard off {:.3}, clean {:.3}) and >= ego {:.3}",
            point.guard_on,
            point.guard_off + 0.5 * (point.clean - point.guard_off).max(0.0),
            point.guard_off,
            point.clean,
            point.ego,
        );
        assert!(
            on.refined + on.rejected > 0,
            "a 2 m bias must trip the guard into refining or rejecting"
        );
    }

    /// With no drift the guard must be invisible: clean alignments pass
    /// (no rejections) and recall matches the unguarded clean arm.
    #[test]
    fn guard_is_transparent_at_zero_drift() {
        let plain = standard_pipeline();
        let guarded = guarded_pipeline(&plain);
        let config = EvaluationConfig::default();
        let pairs = contexts(&config);
        let off = fused_arm(&plain, &pairs, &config, 0.0);
        let on = fused_arm(&guarded, &pairs, &config, 0.0);
        assert_eq!(on.rejected, 0, "clean alignment must never be rejected");
        assert!(
            on.recall() + 1e-9 >= off.recall(),
            "guard on {:.3} vs guard off {:.3} at zero drift",
            on.recall(),
            off.recall()
        );
    }
}
