//! Figure 3 — vehicle detection results in the four KITTI scenarios.
//!
//! Prints one score matrix per cooperative case: per ground-truth car,
//! the detection score in each single shot and in the cooperative
//! cloud, with the paper's near/medium/far distance bands, plus the Δd
//! of each pairing.

use cooper_bench::{
    evaluate_scenarios_parallel, output_dir, render_csv, standard_pipeline, write_artifact,
};
use cooper_core::report::EvaluationConfig;
use cooper_lidar_sim::scenario::kitti_scenarios;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let scenarios = kitti_scenarios();
    let config = EvaluationConfig::default();
    eprintln!("evaluating {} KITTI scenarios…", scenarios.len());
    let evaluations = evaluate_scenarios_parallel(&pipeline, &scenarios, &config);

    let out = output_dir();
    let mut csv_rows = Vec::new();
    println!("=== Figure 3: KITTI scenario score matrices ===\n");
    for evals in &evaluations {
        for eval in evals {
            println!("{}", eval.render_matrix());
            println!(
                "detected: single A = {}, single B = {}, Cooper = {}\n",
                eval.detected_a(),
                eval.detected_b(),
                eval.detected_coop()
            );
            for row in &eval.rows {
                csv_rows.push(vec![
                    eval.scenario_name.clone(),
                    format!("{:.1}", eval.delta_d),
                    row.gt_index.to_string(),
                    row.band.to_string(),
                    row.score_a.map_or("X".into(), |s| format!("{s:.2}")),
                    row.score_b.map_or("X".into(), |s| format!("{s:.2}")),
                    row.score_coop.map_or("X".into(), |s| format!("{s:.2}")),
                ]);
            }
        }
    }
    write_artifact(
        out.as_deref(),
        "fig3_kitti_matrix.csv",
        &render_csv(
            &[
                "scenario",
                "delta_d",
                "car",
                "band",
                "score_a",
                "score_b",
                "score_coop",
            ],
            &csv_rows,
        ),
    );

    // The paper's headline property: the cooperative column dominates.
    let mut regressions = 0;
    for evals in &evaluations {
        for eval in evals {
            if eval.detected_coop() < eval.detected_a().max(eval.detected_b()) {
                regressions += 1;
            }
        }
    }
    println!(
        "cooperative detections >= best single shot in {}/{} cases",
        evaluations.iter().flatten().count() - regressions,
        evaluations.iter().flatten().count()
    );
}
