//! Extension experiment: DSRC contention vs fleet size.
//!
//! The paper's feasibility study accounts a two-vehicle exchange on an
//! uncontended channel; its vision has whole fleets cooperating. This
//! binary asks the next question: with N vehicles broadcasting a
//! full-frame ROI on the same 1 Hz tick (worst-case synchronization),
//! how do CSMA/CA collisions, delivery and delay scale — and where does
//! the paper's 1 Hz / full-frame operating point stop working?

use cooper_bench::{output_dir, render_csv, render_table, write_artifact};
use cooper_lidar_sim::scenario::tj_scenario_2;
use cooper_lidar_sim::LidarScanner;
use cooper_pointcloud::roi::{extract_roi, RoiCategory};
use cooper_v2x::{CsmaConfig, CsmaMedium, DsrcChannel, DsrcConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scenario = tj_scenario_2();
    let scanner = LidarScanner::new(scenario.kind.beam_model());
    let scan = scanner.scan(&scenario.world, &scenario.observers[0], 1);
    let medium = CsmaMedium::new(
        DsrcChannel::new(DsrcConfig::default()),
        CsmaConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(9);

    println!("=== Extension: CSMA/CA contention vs fleet size ===\n");
    let mut rows = Vec::new();
    for category in [RoiCategory::FullFrame, RoiCategory::FrontFov120] {
        let frame = extract_roi(&scan, category);
        let payload = frame.len() * cooper_pointcloud::WIRE_BYTES_PER_POINT;
        for n in [2usize, 4, 8, 16, 32] {
            let report = medium.simulate_rounds(&vec![payload; n], 20, &mut rng);
            rows.push(vec![
                category.to_string(),
                n.to_string(),
                format!("{:.0}", payload as f64 / 1024.0),
                format!("{:.0}", report.delivery_ratio() * 100.0),
                report.collisions.to_string(),
                format!("{:.0}", report.round_time_s * 1e3),
                format!("{:.0}", report.mean_delay_s * 1e3),
            ]);
        }
    }
    let headers = [
        "category",
        "vehicles",
        "frame_KiB",
        "delivered_%",
        "collisions_20rounds",
        "round_ms",
        "mean_delay_ms",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("Shape check: the paper's two-vehicle case is trivially safe; delivery");
    println!("stays high but per-frame delay grows linearly with fleet size, and a");
    println!("full-frame round stops fitting the 1 Hz budget once the cumulative");
    println!("round time approaches 1000 ms — the bandwidth argument for ROI");
    println!("filtering gets stronger with every added cooperator.");
    write_artifact(
        output_dir().as_deref(),
        "contention_study.csv",
        &render_csv(&headers, &rows),
    );
}
