//! Figure 7 — number of cars detected and detection accuracy in the
//! four T&J scenarios (single shot on car1, car2, Cooper).

use cooper_bench::{
    evaluate_scenarios_parallel, output_dir, render_csv, render_table, standard_pipeline,
    write_artifact,
};
use cooper_core::report::EvaluationConfig;
use cooper_lidar_sim::scenario::tj_scenarios;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let scenarios = tj_scenarios();
    let config = EvaluationConfig::default();
    eprintln!("evaluating {} T&J scenarios…", scenarios.len());
    let evaluations = evaluate_scenarios_parallel(&pipeline, &scenarios, &config);

    let mut rows = Vec::new();
    for (case, evals) in evaluations.iter().enumerate() {
        for eval in evals {
            rows.push(vec![
                (case + 1).to_string(),
                eval.detected_a().to_string(),
                eval.detected_b().to_string(),
                eval.detected_coop().to_string(),
                format!("{:.0}", eval.accuracy_a()),
                format!("{:.0}", eval.accuracy_b()),
                format!("{:.0}", eval.accuracy_coop()),
            ]);
        }
    }
    let headers = [
        "case",
        "cars_i",
        "cars_j",
        "cars_coop",
        "acc_i_%",
        "acc_j_%",
        "acc_coop_%",
    ];
    println!("=== Figure 7: T&J detection counts and accuracy ===\n");
    println!("{}", render_table(&headers, &rows));
    write_artifact(
        output_dir().as_deref(),
        "fig7_tj_summary.csv",
        &render_csv(&headers, &rows),
    );
}
