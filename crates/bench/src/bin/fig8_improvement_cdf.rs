//! Figure 8 — CDF of the detection-score improvement from cooperative
//! perception, split by the paper's easy/moderate/hard difficulty.
//!
//! Pools the per-car improvements from all 19 cooperative cases (4
//! KITTI + 15 T&J pairings as in the paper's experiment design; here 4
//! KITTI + 13 T&J pairs) and prints one CDF line per difficulty class.

use cooper_bench::{
    evaluate_scenarios_parallel, output_dir, render_csv, render_table, standard_pipeline,
    write_artifact,
};
use cooper_core::report::EvaluationConfig;
use cooper_core::stats::Cdf;
use cooper_core::CooperDifficulty;
use cooper_lidar_sim::scenario::all_scenarios;

fn main() {
    eprintln!("training SPOD detector…");
    let pipeline = standard_pipeline();
    let scenarios = all_scenarios();
    let config = EvaluationConfig::default();
    eprintln!("evaluating all {} scenarios…", scenarios.len());
    let evaluations = evaluate_scenarios_parallel(&pipeline, &scenarios, &config);

    let mut samples: Vec<(CooperDifficulty, f64)> = Vec::new();
    for eval in evaluations.iter().flatten() {
        for imp in eval.improvements() {
            samples.push((imp.difficulty, imp.increase_percent));
        }
    }

    println!("=== Figure 8: detection-score improvement CDF ===\n");
    let grid: Vec<f64> = (0..=9).map(|i| i as f64 * 10.0).collect();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for difficulty in CooperDifficulty::ALL {
        let cdf = Cdf::from_samples(
            samples
                .iter()
                .filter(|(d, _)| *d == difficulty)
                .map(|(_, v)| *v)
                .collect(),
        );
        let mut cells = vec![difficulty.to_string(), cdf.len().to_string()];
        for &x in &grid {
            let frac = cdf.fraction_at_or_below(x);
            cells.push(format!("{frac:.2}"));
            csv_rows.push(vec![
                difficulty.to_string(),
                format!("{x:.0}"),
                format!("{frac:.4}"),
            ]);
        }
        if let Some(min) = cdf.min() {
            eprintln!("{difficulty}: minimum improvement {min:.1} %");
        }
        rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["difficulty".into(), "n".into()];
    headers.extend(grid.iter().map(|x| format!("≤{x:.0}%")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("Shape check (paper): easy/moderate gains mostly within ~10 %;");
    println!("hard objects (detected by neither single shot) gain a large raw score.");

    write_artifact(
        output_dir().as_deref(),
        "fig8_improvement_cdf.csv",
        &render_csv(&["difficulty", "increase_percent", "cdf"], &csv_rows),
    );
}
