//! Property-based tests for the V2X substrate.

use cooper_v2x::{
    fragment, reassemble, salvage_prefix, CsmaConfig, CsmaMedium, DataRate, DsrcChannel,
    DsrcConfig, ReassemblyError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn fragmentation_round_trips(data in prop::collection::vec(any::<u8>(), 0..5000),
                                 mtu in 1usize..2000,
                                 message_id in any::<u32>()) {
        let fragments = fragment(message_id, &data, mtu);
        // Every fragment respects the MTU and carries consistent metadata.
        for f in &fragments {
            prop_assert!(f.payload.len() <= mtu);
            prop_assert_eq!(f.message_id, message_id);
            prop_assert_eq!(f.total as usize, fragments.len());
        }
        let back = reassemble(&fragments).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn shuffled_fragments_round_trip(data in prop::collection::vec(any::<u8>(), 1..3000),
                                     mtu in 16usize..512,
                                     seed in any::<u64>()) {
        let mut fragments = fragment(7, &data, mtu);
        // Deterministic shuffle.
        let mut rng_state = seed | 1;
        for i in (1..fragments.len()).rev() {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % (i + 1);
            fragments.swap(i, j);
        }
        prop_assert_eq!(reassemble(&fragments).unwrap(), data);
    }

    #[test]
    fn duplicated_fragments_round_trip(data in prop::collection::vec(any::<u8>(), 1..3000),
                                       mtu in 16usize..512,
                                       seed in any::<u64>()) {
        let fragments = fragment(9, &data, mtu);
        // Duplicate a deterministic subset, as a retransmitting channel
        // would on a delayed-then-recovered frame.
        let mut noisy = fragments.clone();
        let mut rng_state = seed | 1;
        for f in &fragments {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if rng_state >> 63 == 1 {
                noisy.push(f.clone());
            }
        }
        prop_assert_eq!(reassemble(&noisy).unwrap(), data);
        let salvaged = salvage_prefix(&noisy).unwrap();
        prop_assert!(salvaged.is_complete());
        prop_assert_eq!(salvaged.bytes, data);
    }

    #[test]
    fn dropped_fragments_salvage_the_exact_prefix(data in prop::collection::vec(any::<u8>(), 1..3000),
                                                  mtu in 16usize..512,
                                                  seed in any::<u64>()) {
        let fragments = fragment(11, &data, mtu);
        // Drop a deterministic subset; shuffle survivors for good measure.
        let mut rng_state = seed | 1;
        let mut survivors: Vec<_> = fragments
            .iter()
            .filter(|_| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                rng_state >> 63 == 0
            })
            .cloned()
            .collect();
        for i in (1..survivors.len()).rev() {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % (i + 1);
            survivors.swap(i, j);
        }
        let delivered: std::collections::HashSet<u32> =
            survivors.iter().map(|f| f.index).collect();
        let expected_prefix = (0..fragments.len() as u32)
            .take_while(|i| delivered.contains(i))
            .count();
        if survivors.is_empty() {
            prop_assert_eq!(salvage_prefix(&survivors), Err(ReassemblyError::Empty));
        } else {
            let salvaged = salvage_prefix(&survivors).unwrap();
            prop_assert_eq!(salvaged.fragments_used as usize, expected_prefix);
            // The salvaged bytes are exactly the original payload prefix.
            let prefix_len: usize = fragments[..expected_prefix]
                .iter()
                .map(|f| f.payload.len())
                .sum();
            prop_assert_eq!(&salvaged.bytes[..], &data[..prefix_len]);
            // Full reassembly only succeeds when nothing was dropped.
            prop_assert_eq!(
                reassemble(&survivors).is_ok(),
                delivered.len() == fragments.len()
            );
        }
    }

    #[test]
    fn airtime_is_monotone_in_payload(a in 0usize..500_000, b in 0usize..500_000) {
        let ch = DsrcChannel::new(DsrcConfig::default());
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(ch.airtime_for(small) <= ch.airtime_for(large) + 1e-12);
        prop_assert!(ch.airtime_for(large) > 0.0);
    }

    #[test]
    fn faster_rates_never_slower(payload in 1usize..500_000) {
        let mut previous = f64::INFINITY;
        for rate in DataRate::ALL {
            let ch = DsrcChannel::new(DsrcConfig { data_rate: rate, ..DsrcConfig::default() });
            let t = ch.airtime_for(payload);
            prop_assert!(t <= previous + 1e-12, "{rate} slower than the previous rate");
            previous = t;
        }
    }

    #[test]
    fn transmission_reports_are_consistent(payload in 0usize..200_000,
                                           loss in 0.0..0.9f64,
                                           seed in any::<u64>()) {
        let ch = DsrcChannel::new(DsrcConfig { loss_probability: loss, ..DsrcConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed);
        let report = ch.transmit_sized(payload, &mut rng);
        prop_assert!(report.frames_delivered <= report.frames);
        prop_assert_eq!(report.complete, report.frames_delivered == report.frames);
        prop_assert!(report.bytes_on_air >= payload);
        prop_assert!(report.frames >= 1);
    }

    #[test]
    fn csma_rounds_conserve_frames(n in 1usize..12, payload in 100usize..20_000, seed in any::<u64>()) {
        let medium = CsmaMedium::new(DsrcChannel::new(DsrcConfig::default()), CsmaConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let report = medium.simulate_round(&vec![payload; n], &mut rng);
        prop_assert_eq!(report.delivered + report.dropped, n);
        prop_assert!(report.round_time_s >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.delivery_ratio()));
        // A single station always delivers collision-free.
        if n == 1 {
            prop_assert_eq!(report.collisions, 0);
            prop_assert_eq!(report.delivered, 1);
        }
    }
}
