//! Fragment-level ARQ (automatic repeat request) over the DSRC model.
//!
//! A ~210 KB ROI scan fragments into ~150 link-layer frames; under the
//! original model a single lost frame voided the whole scan. This
//! module retransmits exactly the lost fragments in rounds separated by
//! an exponentially backed-off timeout, all inside a per-step delivery
//! **deadline budget** (`1/rate_hz` for a periodic exchange). When the
//! budget runs out the caller salvages the contiguous prefix that did
//! arrive instead of discarding the scan — see
//! [`crate::salvage_prefix`].
//!
//! Every random draw comes from the caller-supplied [`Rng`], so a
//! per-(sender, receiver, step) seeded stream keeps fleet runs
//! bit-identical at any thread count.

use crate::dsrc::DsrcChannel;
use cooper_telemetry as telemetry;
use cooper_telemetry::names as telemetry_names;
use rand::Rng;

/// Retransmission policy for one (sender, receiver, message) transfer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArqConfig {
    /// Maximum retransmission rounds after the initial transmission.
    /// Zero disables retransmission (the transfer still honours the
    /// deadline).
    pub max_retries: usize,
    /// Wait before the first retransmission round, seconds — models the
    /// receiver's NACK turnaround.
    pub initial_timeout_s: f64,
    /// Timeout multiplier applied between successive rounds
    /// (exponential backoff).
    pub backoff_factor: f64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_retries: 4,
            initial_timeout_s: 0.02,
            backoff_factor: 2.0,
        }
    }
}

impl ArqConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.initial_timeout_s >= 0.0 && self.initial_timeout_s.is_finite()) {
            return Err("initial timeout must be non-negative and finite".into());
        }
        if !(self.backoff_factor >= 1.0 && self.backoff_factor.is_finite()) {
            return Err("backoff factor must be >= 1".into());
        }
        Ok(())
    }

    /// The per-step delivery deadline budget for a periodic exchange:
    /// everything must land before the next scan, i.e. within
    /// `1/rate_hz` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `rate_hz` is not positive and finite.
    pub fn deadline_for_rate(rate_hz: f64) -> f64 {
        assert!(
            rate_hz > 0.0 && rate_hz.is_finite(),
            "exchange rate must be positive and finite"
        );
        1.0 / rate_hz
    }
}

/// The outcome of one ARQ transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqReport {
    /// Link-layer fragments the payload was split into.
    pub fragments: usize,
    /// Fragments that were delivered (in any round).
    pub fragments_delivered: usize,
    /// Leading fragments delivered without a gap — what prefix salvage
    /// can decode.
    pub contiguous_prefix: usize,
    /// Transmission rounds executed (1 = no retransmission needed).
    pub rounds: usize,
    /// Frames put on the air across all rounds.
    pub frames_sent: usize,
    /// Frames sent beyond the first attempt per fragment.
    pub retransmits: usize,
    /// Bytes put on the air (payload + per-frame overhead, all rounds).
    pub bytes_on_air: usize,
    /// Time consumed: air time, jitter and backoff waits, seconds.
    pub elapsed_s: f64,
    /// `true` when every fragment was delivered within the deadline.
    pub complete: bool,
    /// `true` when the deadline expired before the transfer finished.
    pub deadline_exceeded: bool,
}

impl ArqReport {
    /// Delivered payload fraction the prefix salvage can decode,
    /// in `[0, 1]`.
    pub fn salvage_fraction(&self) -> f64 {
        if self.fragments == 0 {
            return 0.0;
        }
        self.contiguous_prefix as f64 / self.fragments as f64
    }
}

/// Transmits a payload of `payload_bytes` over `channel` with
/// fragment-level ARQ, stopping at `deadline_s` seconds of simulated
/// time.
///
/// Lost fragments are retransmitted in rounds: after each incomplete
/// round the sender waits the (backed-off) timeout, then resends only
/// the fragments still missing. Frames that would start after the
/// deadline are never sent. Burst-loss state
/// ([`crate::LossModel::GilbertElliott`]) persists across rounds of the
/// transfer, so a burst can swallow a retransmission round too.
///
/// Emits the `v2x.arq.retransmits` and `v2x.arq.deadline_miss`
/// telemetry counters.
///
/// # Panics
///
/// Panics when `config` fails [`ArqConfig::validate`] or `deadline_s`
/// is not positive.
pub fn transmit_with_arq<R: Rng + ?Sized>(
    channel: &DsrcChannel,
    payload_bytes: usize,
    deadline_s: f64,
    config: &ArqConfig,
    rng: &mut R,
) -> ArqReport {
    if let Err(msg) = config.validate() {
        panic!("invalid ARQ config: {msg}");
    }
    assert!(deadline_s > 0.0, "deadline must be positive");
    let cfg = channel.config();
    let fragments = channel.frames_for(payload_bytes);
    // Per-fragment payload sizes: full MTU except a ragged tail.
    let frag_payload = |i: usize| -> usize {
        if i + 1 < fragments {
            cfg.mtu
        } else {
            payload_bytes - cfg.mtu * (fragments - 1)
        }
    };
    let frame_airtime = |payload: usize| -> f64 {
        (payload + cfg.per_frame_overhead) as f64 * 8.0 / cfg.data_rate.bits_per_second()
            + cfg.per_frame_access_time
    };

    let mut process = channel.loss_process(rng);
    let mut delivered = vec![false; fragments];
    let mut elapsed = 0.0_f64;
    let mut frames_sent = 0usize;
    let mut bytes_on_air = 0usize;
    let mut rounds = 0usize;
    let mut timeout = config.initial_timeout_s;
    let mut deadline_exceeded = false;

    'transfer: loop {
        rounds += 1;
        for (i, slot) in delivered.iter_mut().enumerate() {
            if *slot {
                continue;
            }
            let payload = frag_payload(i);
            let airtime = frame_airtime(payload);
            if elapsed + airtime > deadline_s {
                deadline_exceeded = true;
                break 'transfer;
            }
            elapsed += airtime + channel.frame_jitter(rng);
            frames_sent += 1;
            bytes_on_air += payload + cfg.per_frame_overhead;
            if !process.frame_lost(rng) {
                *slot = true;
            }
        }
        if delivered.iter().all(|d| *d) {
            break;
        }
        if rounds > config.max_retries {
            break;
        }
        elapsed += timeout;
        timeout *= config.backoff_factor;
        if elapsed >= deadline_s {
            deadline_exceeded = true;
            break;
        }
    }

    let fragments_delivered = delivered.iter().filter(|d| **d).count();
    let contiguous_prefix = delivered.iter().take_while(|d| **d).count();
    let retransmits = frames_sent.saturating_sub(fragments.min(frames_sent));
    if telemetry::is_enabled() {
        telemetry::counter_add(telemetry_names::V2X_ARQ_RETRANSMITS, retransmits as u64);
        if deadline_exceeded {
            telemetry::counter_add(telemetry_names::V2X_ARQ_DEADLINE_MISS, 1);
        }
    }
    ArqReport {
        fragments,
        fragments_delivered,
        contiguous_prefix,
        rounds,
        frames_sent,
        retransmits,
        bytes_on_air,
        elapsed_s: elapsed,
        complete: fragments_delivered == fragments,
        deadline_exceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsrc::{DsrcConfig, GilbertElliott, LossModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lossy(loss: f64) -> DsrcChannel {
        DsrcChannel::new(DsrcConfig {
            loss_probability: loss,
            ..DsrcConfig::default()
        })
    }

    #[test]
    fn lossless_transfer_completes_in_one_round() {
        let ch = lossy(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let r = transmit_with_arq(&ch, 100_000, 1.0, &ArqConfig::default(), &mut rng);
        assert!(r.complete);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.retransmits, 0);
        assert!(!r.deadline_exceeded);
        assert_eq!(r.contiguous_prefix, r.fragments);
        assert!((r.salvage_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arq_recovers_losses_the_plain_channel_drops() {
        let ch = lossy(0.2);
        let mut completed = 0usize;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = transmit_with_arq(&ch, 100_000, 1.0, &ArqConfig::default(), &mut rng);
            assert!(r.retransmits > 0 || r.complete);
            if r.complete {
                completed += 1;
            }
        }
        // 69 frames at 20% loss: a plain transfer essentially never
        // completes; ARQ almost always does.
        assert!(completed >= 45, "only {completed}/50 completed");
    }

    #[test]
    fn deadline_bounds_elapsed_time_and_flags_misses() {
        let ch = lossy(0.4);
        let deadline = 0.05; // far too tight for 100 KB at 6 Mbit/s
        let mut rng = StdRng::seed_from_u64(2);
        let r = transmit_with_arq(&ch, 100_000, deadline, &ArqConfig::default(), &mut rng);
        assert!(r.deadline_exceeded);
        assert!(!r.complete);
        assert!(r.elapsed_s <= deadline + 1e-9);
        assert!(r.fragments_delivered < r.fragments);
    }

    #[test]
    fn zero_retries_sends_each_fragment_once() {
        let ch = lossy(0.3);
        let cfg = ArqConfig {
            max_retries: 0,
            ..ArqConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = transmit_with_arq(&ch, 50_000, 1.0, &cfg, &mut rng);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.frames_sent, r.fragments);
        assert_eq!(r.retransmits, 0);
    }

    #[test]
    fn burst_state_persists_across_rounds() {
        // An extreme burst profile: once bad, stays bad for a long
        // time. ARQ rounds inside one burst keep failing, so some
        // transfers stay incomplete even with retries.
        let ge = GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.002,
            loss_good: 0.0,
            loss_bad: 0.99,
        };
        let ch = DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(ge),
            ..DsrcConfig::default()
        });
        let mut incomplete = 0usize;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = transmit_with_arq(&ch, 60_000, 10.0, &ArqConfig::default(), &mut rng);
            if !r.complete {
                incomplete += 1;
            }
        }
        assert!(incomplete > 0, "bursts should defeat some transfers");
    }

    #[test]
    fn empty_payload_still_transfers() {
        let ch = lossy(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let r = transmit_with_arq(&ch, 0, 1.0, &ArqConfig::default(), &mut rng);
        assert!(r.complete);
        assert_eq!(r.fragments, 1);
    }

    #[test]
    fn deadline_for_rate_is_reciprocal() {
        assert!((ArqConfig::deadline_for_rate(1.0) - 1.0).abs() < 1e-12);
        assert!((ArqConfig::deadline_for_rate(10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid ARQ config")]
    fn invalid_config_panics() {
        let cfg = ArqConfig {
            backoff_factor: 0.5,
            ..ArqConfig::default()
        };
        let ch = lossy(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = transmit_with_arq(&ch, 10, 1.0, &cfg, &mut rng);
    }
}
