//! MTU fragmentation and reassembly of exchange packets.

use bytes::Bytes;

/// One link-layer fragment of a serialized exchange packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Message identifier shared by all fragments of one packet.
    pub message_id: u32,
    /// Fragment position within the message.
    pub index: u32,
    /// Total fragments in the message.
    pub total: u32,
    /// The payload slice.
    pub payload: Bytes,
}

/// Errors recovering a message from fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyError {
    /// No fragments were supplied.
    Empty,
    /// Fragments declare different message ids or totals.
    MixedMessages,
    /// One or more fragment indices are absent.
    MissingFragments {
        /// Indices that never arrived.
        missing: Vec<u32>,
    },
    /// The same index appeared twice with different payloads.
    ConflictingDuplicate {
        /// The conflicting index.
        index: u32,
    },
}

impl std::fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyError::Empty => write!(f, "no fragments supplied"),
            ReassemblyError::MixedMessages => write!(f, "fragments belong to different messages"),
            ReassemblyError::MissingFragments { missing } => {
                write!(f, "missing fragments: {missing:?}")
            }
            ReassemblyError::ConflictingDuplicate { index } => {
                write!(f, "conflicting duplicate fragment {index}")
            }
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// Splits `data` into MTU-sized fragments.
///
/// # Panics
///
/// Panics when `mtu` is zero.
pub fn fragment(message_id: u32, data: &[u8], mtu: usize) -> Vec<Fragment> {
    assert!(mtu > 0, "MTU must be positive");
    if data.is_empty() {
        return vec![Fragment {
            message_id,
            index: 0,
            total: 1,
            payload: Bytes::new(),
        }];
    }
    let total = data.len().div_ceil(mtu) as u32;
    data.chunks(mtu)
        .enumerate()
        .map(|(i, chunk)| Fragment {
            message_id,
            index: i as u32,
            total,
            payload: Bytes::copy_from_slice(chunk),
        })
        .collect()
}

/// Reassembles fragments (any order, duplicates tolerated) into the
/// original byte stream.
///
/// # Errors
///
/// Returns a [`ReassemblyError`] when fragments are missing, mixed
/// between messages, or conflicting.
pub fn reassemble(fragments: &[Fragment]) -> Result<Vec<u8>, ReassemblyError> {
    let first = fragments.first().ok_or(ReassemblyError::Empty)?;
    let (message_id, total) = (first.message_id, first.total);
    if fragments
        .iter()
        .any(|f| f.message_id != message_id || f.total != total)
    {
        return Err(ReassemblyError::MixedMessages);
    }
    let mut slots: Vec<Option<&Fragment>> = vec![None; total as usize];
    for f in fragments {
        if f.index >= total {
            return Err(ReassemblyError::MixedMessages);
        }
        match slots[f.index as usize] {
            Some(existing) if existing.payload != f.payload => {
                return Err(ReassemblyError::ConflictingDuplicate { index: f.index });
            }
            _ => slots[f.index as usize] = Some(f),
        }
    }
    let missing: Vec<u32> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i as u32)
        .collect();
    if !missing.is_empty() {
        return Err(ReassemblyError::MissingFragments { missing });
    }
    let mut out = Vec::with_capacity(slots.iter().map(|s| s.unwrap().payload.len()).sum());
    for s in slots {
        out.extend_from_slice(&s.unwrap().payload);
    }
    Ok(out)
}

/// The result of a partial reassembly via [`salvage_prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedPrefix {
    /// The reassembled contiguous prefix of the message.
    pub bytes: Vec<u8>,
    /// Number of leading fragments the prefix covers.
    pub fragments_used: u32,
    /// Total fragments the message was split into.
    pub total: u32,
}

impl SalvagedPrefix {
    /// `true` when every fragment arrived — the prefix is the whole
    /// message.
    pub fn is_complete(&self) -> bool {
        self.fragments_used == self.total
    }
}

/// Reassembles the longest contiguous prefix of a message from
/// whatever fragments arrived — the deadline-expiry salvage path.
/// Missing fragments are expected here, not an error: the prefix stops
/// at the first gap (and may be empty when fragment 0 never arrived).
///
/// # Errors
///
/// Returns a [`ReassemblyError`] only for structural problems: no
/// fragments at all, fragments from different messages, or conflicting
/// duplicates.
pub fn salvage_prefix(fragments: &[Fragment]) -> Result<SalvagedPrefix, ReassemblyError> {
    let first = fragments.first().ok_or(ReassemblyError::Empty)?;
    let (message_id, total) = (first.message_id, first.total);
    if fragments
        .iter()
        .any(|f| f.message_id != message_id || f.total != total)
    {
        return Err(ReassemblyError::MixedMessages);
    }
    let mut slots: Vec<Option<&Fragment>> = vec![None; total as usize];
    for f in fragments {
        if f.index >= total {
            return Err(ReassemblyError::MixedMessages);
        }
        match slots[f.index as usize] {
            Some(existing) if existing.payload != f.payload => {
                return Err(ReassemblyError::ConflictingDuplicate { index: f.index });
            }
            _ => slots[f.index as usize] = Some(f),
        }
    }
    let prefix: Vec<&Fragment> = slots.iter().map_while(|s| *s).collect();
    let mut bytes = Vec::with_capacity(prefix.iter().map(|f| f.payload.len()).sum());
    for f in &prefix {
        bytes.extend_from_slice(&f.payload);
    }
    Ok(SalvagedPrefix {
        bytes,
        fragments_used: prefix.len() as u32,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn round_trip_exact_and_ragged() {
        for n in [0, 1, 99, 100, 101, 1000] {
            let d = data(n);
            let frags = fragment(7, &d, 100);
            let back = reassemble(&frags).unwrap();
            assert_eq!(back, d, "n = {n}");
        }
    }

    #[test]
    fn out_of_order_reassembly() {
        let d = data(500);
        let mut frags = fragment(1, &d, 100);
        frags.reverse();
        assert_eq!(reassemble(&frags).unwrap(), d);
    }

    #[test]
    fn duplicates_tolerated() {
        let d = data(300);
        let mut frags = fragment(1, &d, 100);
        frags.push(frags[1].clone());
        assert_eq!(reassemble(&frags).unwrap(), d);
    }

    #[test]
    fn missing_fragment_reported() {
        let d = data(500);
        let mut frags = fragment(1, &d, 100);
        frags.remove(2);
        match reassemble(&frags) {
            Err(ReassemblyError::MissingFragments { missing }) => assert_eq!(missing, vec![2]),
            other => panic!("expected missing fragments, got {other:?}"),
        }
    }

    #[test]
    fn mixed_messages_rejected() {
        let a = fragment(1, &data(200), 100);
        let b = fragment(2, &data(200), 100);
        let mixed: Vec<Fragment> = a.into_iter().chain(b).collect();
        assert_eq!(
            reassemble(&mixed).unwrap_err(),
            ReassemblyError::MixedMessages
        );
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let d = data(200);
        let mut frags = fragment(1, &d, 100);
        let mut corrupt = frags[0].clone();
        corrupt.payload = Bytes::from_static(b"garbage");
        frags.push(corrupt);
        assert_eq!(
            reassemble(&frags).unwrap_err(),
            ReassemblyError::ConflictingDuplicate { index: 0 }
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(reassemble(&[]).unwrap_err(), ReassemblyError::Empty);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut frags = fragment(1, &data(100), 100);
        frags[0].index = 9;
        assert_eq!(
            reassemble(&frags).unwrap_err(),
            ReassemblyError::MixedMessages
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            ReassemblyError::Empty,
            ReassemblyError::MixedMessages,
            ReassemblyError::MissingFragments { missing: vec![1] },
            ReassemblyError::ConflictingDuplicate { index: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "MTU")]
    fn zero_mtu_panics() {
        let _ = fragment(0, &[1, 2, 3], 0);
    }

    #[test]
    fn salvage_recovers_the_contiguous_prefix() {
        let d = data(500);
        let mut frags = fragment(1, &d, 100);
        frags.remove(3); // gap at index 3: prefix is fragments 0..=2
        let s = salvage_prefix(&frags).unwrap();
        assert_eq!(s.fragments_used, 3);
        assert_eq!(s.total, 5);
        assert!(!s.is_complete());
        assert_eq!(s.bytes, d[..300]);
    }

    #[test]
    fn salvage_of_complete_message_is_whole() {
        let d = data(250);
        let s = salvage_prefix(&fragment(2, &d, 100)).unwrap();
        assert!(s.is_complete());
        assert_eq!(s.bytes, d);
    }

    #[test]
    fn salvage_without_first_fragment_is_empty() {
        let d = data(300);
        let frags = fragment(1, &d, 100);
        let s = salvage_prefix(&frags[1..]).unwrap();
        assert_eq!(s.fragments_used, 0);
        assert!(s.bytes.is_empty());
    }

    #[test]
    fn salvage_rejects_structural_errors() {
        assert_eq!(salvage_prefix(&[]).unwrap_err(), ReassemblyError::Empty);
        let mut frags = fragment(1, &data(200), 100);
        let mut corrupt = frags[0].clone();
        corrupt.payload = Bytes::from_static(b"garbage");
        frags.push(corrupt);
        assert_eq!(
            salvage_prefix(&frags).unwrap_err(),
            ReassemblyError::ConflictingDuplicate { index: 0 }
        );
    }
}
