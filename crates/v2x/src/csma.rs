//! Slotted CSMA/CA contention — what happens when *several* vehicles
//! broadcast frames on one DSRC channel at once.
//!
//! The paper's feasibility study (§IV-G) accounts a two-vehicle
//! exchange; its broader vision has whole fleets cooperating. 802.11p
//! has no RTS/CTS for broadcast, so simultaneous transmissions collide
//! and are lost. This module provides a slotted CSMA/CA model (binary
//! exponential backoff, EDCA-style parameters) to quantify how many
//! cooperators one channel sustains.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::DsrcChannel;

/// CSMA/CA parameters (802.11p OFDM defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsmaConfig {
    /// Backoff slot time, seconds (13 µs for 802.11p).
    pub slot_time: f64,
    /// Initial contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Attempts per frame before it is dropped.
    pub max_retries: u32,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        CsmaConfig {
            slot_time: 13e-6,
            cw_min: 15,
            cw_max: 1023,
            max_retries: 7,
        }
    }
}

impl CsmaConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.slot_time <= 0.0 {
            return Err("slot time must be positive".into());
        }
        if self.cw_min == 0 || self.cw_max < self.cw_min {
            return Err("contention window bounds are inverted".into());
        }
        if self.max_retries == 0 {
            return Err("need at least one attempt".into());
        }
        Ok(())
    }
}

/// The outcome of one contention round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsmaReport {
    /// Stations that entered the round.
    pub stations: usize,
    /// Frames delivered.
    pub delivered: usize,
    /// Frames dropped after exhausting retries.
    pub dropped: usize,
    /// Collision events observed.
    pub collisions: usize,
    /// Wall-clock time until the last frame resolved, seconds.
    pub round_time_s: f64,
    /// Mean per-frame delay (arrival to delivery), seconds, over
    /// delivered frames; 0 when none were delivered.
    pub mean_delay_s: f64,
}

impl CsmaReport {
    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.stations == 0 {
            1.0
        } else {
            self.delivered as f64 / self.stations as f64
        }
    }
}

/// A shared channel with slotted CSMA/CA contention.
///
/// # Examples
///
/// ```
/// use cooper_v2x::{CsmaConfig, CsmaMedium, DsrcChannel, DsrcConfig};
///
/// let medium = CsmaMedium::new(DsrcChannel::new(DsrcConfig::default()), CsmaConfig::default());
/// // Two vehicles broadcast a ~100 KB ROI frame simultaneously.
/// let report = medium.simulate_round(&[100_000, 100_000], &mut rand::thread_rng());
/// assert_eq!(report.delivered + report.dropped, 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsmaMedium {
    channel: DsrcChannel,
    config: CsmaConfig,
}

impl CsmaMedium {
    /// Creates a contention medium over a channel.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`CsmaConfig::validate`].
    pub fn new(channel: DsrcChannel, config: CsmaConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid CSMA config: {msg}");
        }
        CsmaMedium { channel, config }
    }

    /// The underlying channel.
    pub fn channel(&self) -> &DsrcChannel {
        &self.channel
    }

    /// Simulates one saturated round: every station has one frame ready
    /// at `t = 0` (the worst-case synchronized broadcast, e.g. all
    /// vehicles sampling on the same 1 Hz tick) and contends until
    /// delivery or drop.
    pub fn simulate_round<R: Rng + ?Sized>(&self, payloads: &[usize], rng: &mut R) -> CsmaReport {
        struct Station {
            payload: usize,
            backoff: u32,
            cw: u32,
            retries: u32,
            done: Option<Result<f64, ()>>, // Ok(delivery time) | Err(dropped)
        }
        let mut stations: Vec<Station> = payloads
            .iter()
            .map(|&payload| Station {
                payload,
                backoff: rng.gen_range(0..=self.config.cw_min),
                cw: self.config.cw_min,
                retries: 0,
                done: None,
            })
            .collect();

        let mut now = 0.0f64;
        let mut collisions = 0usize;
        loop {
            let pending: Vec<usize> = stations
                .iter()
                .enumerate()
                .filter(|(_, s)| s.done.is_none())
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            // Advance to the smallest backoff; stations holding it fire.
            let min_backoff = pending
                .iter()
                .map(|&i| stations[i].backoff)
                .min()
                .expect("pending");
            now += f64::from(min_backoff) * self.config.slot_time;
            let firing: Vec<usize> = pending
                .iter()
                .copied()
                .filter(|&i| stations[i].backoff == min_backoff)
                .collect();
            for &i in &pending {
                stations[i].backoff -= min_backoff;
            }
            // The channel is busy for the longest frame either way.
            let busy = firing
                .iter()
                .map(|&i| self.channel.airtime_for(stations[i].payload))
                .fold(0.0f64, f64::max);
            now += busy;
            if firing.len() == 1 {
                stations[firing[0]].done = Some(Ok(now));
            } else {
                collisions += 1;
                for &i in &firing {
                    let s = &mut stations[i];
                    s.retries += 1;
                    if s.retries >= self.config.max_retries {
                        s.done = Some(Err(()));
                    } else {
                        s.cw = (s.cw * 2 + 1).min(self.config.cw_max);
                        s.backoff = rng.gen_range(0..=s.cw);
                    }
                }
            }
            // Survivors redraw nothing; their backoff already counted
            // down. Stations at zero backoff that did not fire (only
            // possible after a collision redraw) simply contend again.
            for &i in &pending {
                let s = &mut stations[i];
                if s.done.is_none() && s.backoff == 0 && !firing.contains(&i) {
                    s.backoff = rng.gen_range(0..=s.cw);
                }
            }
        }

        let delivered_times: Vec<f64> = stations
            .iter()
            .filter_map(|s| match s.done {
                Some(Ok(t)) => Some(t),
                _ => None,
            })
            .collect();
        let dropped = stations
            .iter()
            .filter(|s| matches!(s.done, Some(Err(()))))
            .count();
        CsmaReport {
            stations: payloads.len(),
            delivered: delivered_times.len(),
            dropped,
            collisions,
            round_time_s: now,
            mean_delay_s: if delivered_times.is_empty() {
                0.0
            } else {
                delivered_times.iter().sum::<f64>() / delivered_times.len() as f64
            },
        }
    }

    /// Averages [`CsmaMedium::simulate_round`] over `rounds` independent
    /// rounds.
    pub fn simulate_rounds<R: Rng + ?Sized>(
        &self,
        payloads: &[usize],
        rounds: usize,
        rng: &mut R,
    ) -> CsmaReport {
        assert!(rounds > 0, "need at least one round");
        let mut acc = CsmaReport {
            stations: payloads.len(),
            delivered: 0,
            dropped: 0,
            collisions: 0,
            round_time_s: 0.0,
            mean_delay_s: 0.0,
        };
        for _ in 0..rounds {
            let r = self.simulate_round(payloads, rng);
            acc.delivered += r.delivered;
            acc.dropped += r.dropped;
            acc.collisions += r.collisions;
            acc.round_time_s += r.round_time_s;
            acc.mean_delay_s += r.mean_delay_s;
        }
        acc.delivered /= rounds;
        acc.dropped /= rounds;
        acc.round_time_s /= rounds as f64;
        acc.mean_delay_s /= rounds as f64;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DsrcConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium() -> CsmaMedium {
        CsmaMedium::new(
            DsrcChannel::new(DsrcConfig::default()),
            CsmaConfig::default(),
        )
    }

    #[test]
    fn single_station_never_collides() {
        let m = medium();
        let mut rng = StdRng::seed_from_u64(0);
        let r = m.simulate_round(&[50_000], &mut rng);
        assert_eq!(r.delivered, 1);
        assert_eq!(r.collisions, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.delivery_ratio() == 1.0);
        // Round time ≈ backoff + airtime.
        assert!(r.round_time_s >= m.channel().airtime_for(50_000));
    }

    #[test]
    fn contention_grows_with_station_count() {
        let m = medium();
        let mut rng = StdRng::seed_from_u64(1);
        let two = m.simulate_rounds(&[20_000; 2], 30, &mut rng);
        let ten = m.simulate_rounds(&[20_000; 10], 30, &mut rng);
        assert!(
            ten.collisions > two.collisions,
            "{} vs {}",
            ten.collisions,
            two.collisions
        );
        assert!(ten.round_time_s > two.round_time_s);
    }

    #[test]
    fn all_frames_resolve() {
        let m = medium();
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 3, 8, 16] {
            let r = m.simulate_round(&vec![10_000; n], &mut rng);
            assert_eq!(r.delivered + r.dropped, n, "n = {n}");
        }
    }

    #[test]
    fn moderate_fleets_deliver_everything() {
        // Backoff spreads 4 stations comfortably: drops are rare enough
        // that 30 rounds of 4 stations see near-total delivery.
        let m = medium();
        let mut rng = StdRng::seed_from_u64(3);
        let r = m.simulate_rounds(&[100_000; 4], 30, &mut rng);
        assert!(r.delivery_ratio() > 0.9, "ratio {}", r.delivery_ratio());
    }

    #[test]
    fn delay_exceeds_pure_airtime_under_contention() {
        let m = medium();
        let mut rng = StdRng::seed_from_u64(4);
        let airtime = m.channel().airtime_for(100_000);
        let r = m.simulate_rounds(&[100_000; 6], 10, &mut rng);
        // Six stations sharing the channel: the last finisher waits for
        // the other five at least.
        assert!(r.round_time_s > 5.0 * airtime, "round {}", r.round_time_s);
    }

    #[test]
    fn report_delivery_ratio_edge() {
        let r = CsmaReport {
            stations: 0,
            delivered: 0,
            dropped: 0,
            collisions: 0,
            round_time_s: 0.0,
            mean_delay_s: 0.0,
        };
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid CSMA config")]
    fn bad_config_panics() {
        let _ = CsmaMedium::new(
            DsrcChannel::new(DsrcConfig::default()),
            CsmaConfig {
                cw_min: 8,
                cw_max: 4,
                ..CsmaConfig::default()
            },
        );
    }

    #[test]
    fn config_validation_messages() {
        let c = CsmaConfig {
            slot_time: 0.0,
            ..CsmaConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("slot"));
        let c2 = CsmaConfig {
            max_retries: 0,
            ..CsmaConfig::default()
        };
        assert!(c2.validate().unwrap_err().contains("attempt"));
    }
}
