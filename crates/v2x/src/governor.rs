//! The reference bandwidth governor: demand-driven ROI selection with
//! graceful degradation under an air-time budget.
//!
//! Implements `cooper_core::GovernorPolicy` for the fleet's governed
//! exchange path. Per directed transfer the governor:
//!
//! 1. picks a **base ROI** from the receiver's demand — no blind
//!    sectors means the cheap car-following wedge suffices
//!    ([`RoiCategory::ForwardOneWay`]); blind sectors confined to the
//!    frontal ±60° mean the junction exchange
//!    ([`RoiCategory::FrontFov120`]); anything blocked behind or beside
//!    the receiver demands the full frame — capped at the configured
//!    widest category;
//! 2. walks a **degradation ladder** until a candidate fits the
//!    channel's remaining air time: the cadence frame kind at the base
//!    ROI, then at progressively narrower ROIs, then delta-only frames
//!    at every ROI, and finally [`GovernorVerdict::Skip`] when nothing
//!    fits — the fleet records the skip as a budget drop rather than
//!    blowing the exchange window for every later sender.
//!
//! With [`BandwidthGovernor::with_features`], a rung precedes the raw
//! ladder: the widest fitting [`FrameKind::Features`] candidate (a
//! quantized BEV feature frame, wire-format v3) at or inside the
//! demanded ROI is sent instead of points — the F-Cooper exchange
//! level, typically an order of magnitude fewer bytes than the raw
//! front-FoV delta at comparable recall.
//!
//! Candidates whose air time is unknown (the channel model keeps no
//! accounting) always fit: an unmetered channel imposes no budget.
//!
//! The governor is a pure function of the offer and its configuration —
//! telemetry counters (`v2x.governor.*`) are its only side effects — so
//! governed fleet runs stay bit-identical at any thread count.

use cooper_core::{GovernorPolicy, GovernorVerdict, TransferCandidate, TransferOffer};
use cooper_pointcloud::roi::{BlindSector, RoiCategory};
use cooper_pointcloud::FrameKind;
use cooper_telemetry::names as telemetry_names;

/// Half-angle of the frontal wedge used to classify demand: blind
/// sectors whose centers all lie within ±60° are served by the
/// bidirectional 120° front-FoV exchange.
const FRONT_HALF_ANGLE: f64 = std::f64::consts::PI / 3.0;

/// Slack added to the headroom comparison so a candidate sized exactly
/// to the remaining window is not rejected by floating-point noise.
const HEADROOM_EPS: f64 = 1e-12;

/// ROI categories from widest to narrowest — the degradation order.
const WIDEST_FIRST: [RoiCategory; 3] = [
    RoiCategory::FullFrame,
    RoiCategory::FrontFov120,
    RoiCategory::ForwardOneWay,
];

fn narrowness(roi: RoiCategory) -> usize {
    match roi {
        RoiCategory::FullFrame => 0,
        RoiCategory::FrontFov120 => 1,
        RoiCategory::ForwardOneWay => 2,
    }
}

/// The ROI category the receiver's blind sectors demand, before the
/// governor's cap is applied.
pub fn demand_roi(blind_sectors: &[BlindSector]) -> RoiCategory {
    if blind_sectors.is_empty() {
        return RoiCategory::ForwardOneWay;
    }
    if blind_sectors
        .iter()
        .all(|s| s.center().abs() <= FRONT_HALF_ANGLE)
    {
        return RoiCategory::FrontFov120;
    }
    RoiCategory::FullFrame
}

/// Budget-aware ROI + frame-kind selection (see the module docs for the
/// decision ladder).
#[derive(Debug, Clone, Copy)]
pub struct BandwidthGovernor {
    /// Widest ROI category the governor may ever choose.
    cap: RoiCategory,
    /// Prefer the feature-exchange tier: when the offer carries
    /// [`FrameKind::Features`] candidates, pick the widest fitting one
    /// before walking the raw-point ladder.
    prefer_features: bool,
}

impl BandwidthGovernor {
    /// A governor allowed to use ROIs up to and including `cap`.
    pub fn new(cap: RoiCategory) -> Self {
        BandwidthGovernor {
            cap,
            prefer_features: false,
        }
    }

    /// Prefers quantized BEV feature frames (wire-format v3) over raw
    /// points whenever the sender offers them: the widest fitting
    /// feature candidate at or inside the demanded ROI wins; the raw
    /// ladder remains the fallback when no feature candidate fits.
    /// Offers without feature candidates decide exactly as before.
    pub fn with_features(mut self) -> Self {
        self.prefer_features = true;
        self
    }

    /// Whether the feature-exchange tier is preferred.
    pub fn prefers_features(&self) -> bool {
        self.prefer_features
    }

    /// The configured widest category.
    pub fn cap(&self) -> RoiCategory {
        self.cap
    }

    /// The base (pre-degradation) ROI for a receiver with these blind
    /// sectors: its demand, narrowed to the cap when the cap is tighter.
    pub fn base_roi(&self, blind_sectors: &[BlindSector]) -> RoiCategory {
        let demand = demand_roi(blind_sectors);
        if narrowness(demand) >= narrowness(self.cap) {
            demand
        } else {
            self.cap
        }
    }

    fn fits(candidate: &TransferCandidate, headroom_s: Option<f64>) -> bool {
        match (candidate.airtime_s, headroom_s) {
            (Some(airtime), Some(headroom)) => airtime <= headroom + HEADROOM_EPS,
            _ => true,
        }
    }
}

impl Default for BandwidthGovernor {
    /// Caps at [`RoiCategory::FullFrame`], i.e. no cap: demand alone
    /// picks the base ROI.
    fn default() -> Self {
        BandwidthGovernor::new(RoiCategory::FullFrame)
    }
}

impl GovernorPolicy for BandwidthGovernor {
    fn decide(&mut self, offer: &TransferOffer<'_>) -> GovernorVerdict {
        let base = self.base_roi(offer.receiver_blind_sectors);
        if self.prefer_features {
            for roi in WIDEST_FIRST
                .into_iter()
                .filter(|r| narrowness(*r) >= narrowness(base))
            {
                let Some(candidate) = offer.candidate(roi, FrameKind::Features) else {
                    continue;
                };
                if !Self::fits(&candidate, offer.headroom_s) {
                    continue;
                }
                if roi != base {
                    cooper_telemetry::counter_add(telemetry_names::V2X_GOVERNOR_ROI_NARROWED, 1);
                }
                cooper_telemetry::counter_add(telemetry_names::V2X_GOVERNOR_FEATURE_FRAMES, 1);
                return GovernorVerdict::Send(candidate);
            }
        }
        // Cadence kind first; delta-only is the late degradation rung.
        let kinds = if offer.keyframe_due {
            [FrameKind::Keyframe, FrameKind::Delta]
        } else {
            [FrameKind::Delta, FrameKind::Keyframe]
        };
        for kind in kinds {
            for roi in WIDEST_FIRST
                .into_iter()
                .filter(|r| narrowness(*r) >= narrowness(base))
            {
                let Some(candidate) = offer.candidate(roi, kind) else {
                    continue;
                };
                if !Self::fits(&candidate, offer.headroom_s) {
                    continue;
                }
                if roi != base {
                    cooper_telemetry::counter_add(telemetry_names::V2X_GOVERNOR_ROI_NARROWED, 1);
                }
                if kind == FrameKind::Delta {
                    cooper_telemetry::counter_add(telemetry_names::V2X_GOVERNOR_DELTA_FRAMES, 1);
                }
                return GovernorVerdict::Send(candidate);
            }
        }
        cooper_telemetry::counter_add(telemetry_names::V2X_GOVERNOR_BUDGET_SKIPS, 1);
        GovernorVerdict::Skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(
        roi: RoiCategory,
        kind: FrameKind,
        wire_bytes: usize,
        airtime_s: Option<f64>,
    ) -> TransferCandidate {
        TransferCandidate {
            roi,
            kind,
            wire_bytes,
            airtime_s,
        }
    }

    /// All six (ROI, kind) combinations, full frame priced highest.
    fn full_menu() -> Vec<TransferCandidate> {
        let mut menu = Vec::new();
        for (roi, bytes) in [
            (RoiCategory::FullFrame, 70_000usize),
            (RoiCategory::FrontFov120, 24_000),
            (RoiCategory::ForwardOneWay, 6_000),
        ] {
            for (kind, scale) in [(FrameKind::Keyframe, 1.0), (FrameKind::Delta, 0.05)] {
                let b = (bytes as f64 * scale) as usize;
                menu.push(candidate(roi, kind, b, Some(b as f64 * 1e-6)));
            }
        }
        menu
    }

    fn offer<'a>(
        candidates: &'a [TransferCandidate],
        sectors: &'a [BlindSector],
        keyframe_due: bool,
        headroom_s: Option<f64>,
    ) -> TransferOffer<'a> {
        TransferOffer {
            step: 3,
            from: 1,
            to: 2,
            keyframe_due,
            receiver_blind_sectors: sectors,
            candidates,
            headroom_s,
        }
    }

    fn sector_at(center: f64) -> BlindSector {
        BlindSector {
            start: center - 0.2,
            end: center + 0.2,
            occluder_range: 8.0,
        }
    }

    #[test]
    fn demand_maps_blind_sectors_to_categories() {
        assert_eq!(demand_roi(&[]), RoiCategory::ForwardOneWay);
        assert_eq!(demand_roi(&[sector_at(0.3)]), RoiCategory::FrontFov120);
        assert_eq!(
            demand_roi(&[sector_at(0.3), sector_at(3.0)]),
            RoiCategory::FullFrame
        );
        assert_eq!(demand_roi(&[sector_at(-2.0)]), RoiCategory::FullFrame);
    }

    #[test]
    fn unconstrained_choice_follows_demand_and_cadence() {
        let menu = full_menu();
        let mut gov = BandwidthGovernor::default();
        // No demand, keyframe due: cheapest wedge, keyframe.
        match gov.decide(&offer(&menu, &[], true, None)) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.roi, RoiCategory::ForwardOneWay);
                assert_eq!(c.kind, FrameKind::Keyframe);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        // Demand behind the receiver, delta step: full frame, delta.
        let behind = [sector_at(3.0)];
        match gov.decide(&offer(&menu, &behind, false, None)) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.roi, RoiCategory::FullFrame);
                assert_eq!(c.kind, FrameKind::Delta);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
    }

    #[test]
    fn tight_budget_narrows_roi_before_dropping_to_delta() {
        let menu = full_menu();
        let behind = [sector_at(3.0)];
        let mut gov = BandwidthGovernor::default();
        // Headroom fits the 120° keyframe (24 ms) but not the full
        // frame (70 ms): the ROI narrows, the kind survives.
        match gov.decide(&offer(&menu, &behind, true, Some(0.030))) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.roi, RoiCategory::FrontFov120);
                assert_eq!(c.kind, FrameKind::Keyframe);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        // Headroom below every keyframe but above the full-frame delta:
        // delta-only degradation keeps the widest demanded ROI.
        match gov.decide(&offer(&menu, &behind, true, Some(0.0058))) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.roi, RoiCategory::FullFrame);
                assert_eq!(c.kind, FrameKind::Delta);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
    }

    #[test]
    fn exhausted_budget_skips() {
        let menu = full_menu();
        let mut gov = BandwidthGovernor::default();
        assert_eq!(
            gov.decide(&offer(&menu, &[], true, Some(1e-9))),
            GovernorVerdict::Skip
        );
        // An empty menu also skips.
        assert_eq!(
            gov.decide(&offer(&[], &[], true, None)),
            GovernorVerdict::Skip
        );
    }

    #[test]
    fn cap_overrides_demand() {
        let menu = full_menu();
        let behind = [sector_at(-3.0)];
        let mut gov = BandwidthGovernor::new(RoiCategory::ForwardOneWay);
        match gov.decide(&offer(&menu, &behind, true, None)) {
            GovernorVerdict::Send(c) => assert_eq!(c.roi, RoiCategory::ForwardOneWay),
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        assert_eq!(gov.base_roi(&behind), RoiCategory::ForwardOneWay);
        assert_eq!(gov.base_roi(&[]), RoiCategory::ForwardOneWay);
    }

    #[test]
    fn unmetered_candidates_always_fit() {
        // Candidates without air-time pricing ignore the headroom.
        let menu = [candidate(
            RoiCategory::ForwardOneWay,
            FrameKind::Keyframe,
            1_000_000,
            None,
        )];
        let mut gov = BandwidthGovernor::default();
        match gov.decide(&offer(&menu, &[], true, Some(1e-9))) {
            GovernorVerdict::Send(c) => assert_eq!(c.wire_bytes, 1_000_000),
            GovernorVerdict::Skip => panic!("expected a send"),
        }
    }

    #[test]
    fn feature_preference_picks_feature_candidates_first() {
        let mut menu = full_menu();
        menu.push(candidate(
            RoiCategory::FullFrame,
            FrameKind::Features,
            4_000,
            Some(4e-3),
        ));
        menu.push(candidate(
            RoiCategory::ForwardOneWay,
            FrameKind::Features,
            900,
            Some(9e-4),
        ));
        // Without the preference the feature candidates are ignored.
        let mut plain = BandwidthGovernor::default();
        match plain.decide(&offer(&menu, &[], true, None)) {
            GovernorVerdict::Send(c) => assert_eq!(c.kind, FrameKind::Keyframe),
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        // With it, the demanded ROI's feature frame wins.
        let mut gov = BandwidthGovernor::default().with_features();
        assert!(gov.prefers_features());
        let behind = [sector_at(3.0)];
        match gov.decide(&offer(&menu, &behind, true, None)) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.kind, FrameKind::Features);
                assert_eq!(c.roi, RoiCategory::FullFrame);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        // Over-budget feature frames degrade to narrower feature ROIs,
        // then fall back to the raw ladder.
        match gov.decide(&offer(&menu, &behind, true, Some(1e-3))) {
            GovernorVerdict::Send(c) => {
                assert_eq!(c.kind, FrameKind::Features);
                assert_eq!(c.roi, RoiCategory::ForwardOneWay);
            }
            GovernorVerdict::Skip => panic!("expected a send"),
        }
        let feature_free = full_menu();
        match gov.decide(&offer(&feature_free, &[], true, None)) {
            GovernorVerdict::Send(c) => assert_eq!(c.kind, FrameKind::Keyframe),
            GovernorVerdict::Skip => panic!("expected a send"),
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let menu = full_menu();
        let behind = [sector_at(2.0)];
        let mut a = BandwidthGovernor::default();
        let mut b = BandwidthGovernor::default();
        for headroom in [None, Some(0.030), Some(0.0058), Some(1e-9)] {
            let o = offer(&menu, &behind, false, headroom);
            assert_eq!(a.decide(&o), b.decide(&o));
        }
    }
}
