//! The region-of-interest exchange scheduler (Figures 11 and 12).
//!
//! "With efficiency and lightweight traffic as a constraint, we decided
//! that a sample rate of 1 frame per second is enough to satisfy the
//! needs of Cooper whilst remaining within our set of constraints"
//! (§IV-G). The scheduler applies an ROI category to each vehicle's
//! scan, wraps it in an exchange packet, sends it over a [`SharedMedium`]
//! and accounts the per-second data volume.

use cooper_core::{ChannelModel, Delivery, ExchangePacket, TransferCtx};
use cooper_geometry::{Attitude, GpsFix};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::roi::{extract_roi, RoiCategory};
use cooper_pointcloud::PointCloud;
use cooper_telemetry::names as telemetry_names;
use cooper_telemetry::trace::stage as trace_stage;
use cooper_telemetry::TraceId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arq::transmit_with_arq;
use crate::{ArqConfig, DsrcChannel, TransmissionReport};

/// Length of one air-time accounting window, seconds. The paper's
/// 1 Hz exchange cadence makes the window one second; utilization is
/// always reported as a fraction *of this window*, so the two numbers
/// coinciding numerically is a consequence, not the definition.
pub const WINDOW_S: f64 = 1.0;

/// A channel shared by all transmitting vehicles within radio range:
/// air time spent by anyone is unavailable to everyone else.
///
/// Internally synchronized (`parking_lot::Mutex`), so concurrent
/// vehicle simulations can share one medium.
///
/// Implements [`ChannelModel`], so a fleet simulation can run directly
/// over the medium: each simulation step opens a fresh one-second air
/// time window, and a transfer is delivered when the window has air
/// time left *and* every link-layer frame survives.
#[derive(Debug)]
pub struct SharedMedium {
    channel: DsrcChannel,
    airtime_used_s: Mutex<f64>,
    /// Step the current window belongs to when driven as a
    /// [`ChannelModel`]; `None` until the first delivery question.
    window_step: Option<usize>,
    /// Base seed for the per-transfer frame-loss streams drawn when
    /// driven as a [`ChannelModel`].
    seed: u64,
    /// Fragment-level ARQ policy applied per transfer when driven as a
    /// [`ChannelModel`]; `None` keeps the original complete-or-drop
    /// semantics.
    arq: Option<ArqConfig>,
    /// Per-transfer delivery deadline budget, seconds (only consulted
    /// on the ARQ path).
    deadline_s: f64,
}

impl SharedMedium {
    /// Wraps a channel into a shared medium with an empty air-time
    /// budget.
    pub fn new(channel: DsrcChannel) -> Self {
        SharedMedium {
            channel,
            airtime_used_s: Mutex::new(0.0),
            window_step: None,
            seed: 0,
            arq: None,
            deadline_s: 1.0,
        }
    }

    /// Sets the base seed of the per-transfer randomness used when the
    /// medium acts as a [`ChannelModel`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables fragment-level ARQ for transfers driven through the
    /// [`ChannelModel`] interface: lost fragments are retransmitted
    /// within the delivery deadline, and an expired deadline yields a
    /// partial (salvageable) delivery instead of a drop.
    pub fn with_arq(mut self, config: ArqConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid ARQ config: {msg}");
        }
        self.arq = Some(config);
        self
    }

    /// Sets the per-transfer delivery deadline from a periodic exchange
    /// rate: the budget is `1/rate_hz` seconds
    /// ([`ArqConfig::deadline_for_rate`]).
    ///
    /// # Panics
    ///
    /// Panics when `rate_hz` is not positive and finite.
    pub fn with_rate_hz(mut self, rate_hz: f64) -> Self {
        self.deadline_s = ArqConfig::deadline_for_rate(rate_hz);
        self
    }

    /// The per-transfer delivery deadline, seconds.
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// The underlying channel.
    pub fn channel(&self) -> &DsrcChannel {
        &self.channel
    }

    /// Attempts to send `payload_bytes` within the current one-second
    /// window. Returns `None` when the window has no air time left
    /// (channel saturated).
    pub fn try_send<R: Rng + ?Sized>(
        &self,
        payload_bytes: usize,
        rng: &mut R,
    ) -> Option<TransmissionReport> {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_V2X_TRY_SEND);
        let needed = self.channel.airtime_for(payload_bytes);
        let mut used = self.airtime_used_s.lock();
        if *used + needed > WINDOW_S {
            cooper_telemetry::counter_add(telemetry_names::V2X_WINDOW_SATURATED, 1);
            return None;
        }
        *used += needed;
        drop(used);
        let report = self.channel.transmit_sized(payload_bytes, rng);
        cooper_telemetry::counter_add(telemetry_names::V2X_FRAMES, report.frames as u64);
        cooper_telemetry::counter_add(
            telemetry_names::V2X_FRAMES_LOST,
            (report.frames - report.frames_delivered) as u64,
        );
        cooper_telemetry::counter_add(telemetry_names::V2X_TX_BYTES, report.bytes_on_air as u64);
        Some(report)
    }

    /// Fraction of the current window's air time already consumed
    /// (0 at a fresh window, 1 at saturation; transiently above 1 when
    /// an admitted transfer's retransmissions overshoot).
    ///
    /// This is `airtime_used_s / WINDOW_S` — a dimensionless ratio. The
    /// raw seconds are available as
    /// [`SharedMedium::airtime_used_s`]; with a one-second window the
    /// two values coincide numerically, which is why the old
    /// seconds-returning implementation went unnoticed.
    pub fn utilization(&self) -> f64 {
        *self.airtime_used_s.lock() / WINDOW_S
    }

    /// Air time consumed in the current window, seconds.
    pub fn airtime_used_s(&self) -> f64 {
        *self.airtime_used_s.lock()
    }

    /// Air time still unspent in the current window, seconds (clamped
    /// at zero when retransmission overshoot spent past the window).
    pub fn airtime_headroom_s(&self) -> f64 {
        (WINDOW_S - *self.airtime_used_s.lock()).max(0.0)
    }

    /// Opens a new one-second window.
    pub fn next_second(&self) {
        *self.airtime_used_s.lock() = 0.0;
    }
}

/// Samples the link-layer corruption process over `frames` delivered
/// frames: each frame is independently damaged with the channel's
/// corruption probability. Returns `(clean_prefix, corrupted)` — the
/// frames before the first damaged one (the per-fragment FCS lets the
/// receiver trust exactly that contiguous prefix) and the total number
/// damaged. Draws **no** randomness when the probability is zero, so
/// enabling corruption never perturbs the streams of corruption-free
/// runs; when it does draw, it draws strictly *after* every loss/ARQ
/// draw of the same per-transfer stream.
fn sample_corruption<R: rand::Rng + ?Sized>(p: f64, frames: usize, rng: &mut R) -> (usize, u64) {
    if p <= 0.0 {
        return (frames, 0);
    }
    let mut clean_prefix = frames;
    let mut corrupted = 0u64;
    for i in 0..frames {
        if rng.gen::<f64>() < p {
            clean_prefix = clean_prefix.min(i);
            corrupted += 1;
        }
    }
    (clean_prefix, corrupted)
}

/// Derives the seed of one transfer's frame-loss stream from the
/// transfer's identity, so delivery randomness is independent of how
/// many transfers preceded it (SplitMix64 finalizer).
fn transfer_seed(seed: u64, tx: &TransferCtx) -> u64 {
    let mut z = seed
        ^ (tx.step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(tx.from).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ u64::from(tx.to).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChannelModel for SharedMedium {
    /// Delivers when the current step's one-second window still has air
    /// time for the packet and every link-layer frame arrives (directly
    /// or, with [`SharedMedium::with_arq`], after retransmission). The
    /// frame-loss randomness is drawn from a stream derived per
    /// transfer, so outcomes do not depend on transfer count or order
    /// across unrelated links.
    fn deliver(&mut self, tx: &TransferCtx) -> bool {
        matches!(self.deliver_verdict(tx), Delivery::Delivered)
    }

    /// The graded answer: with ARQ enabled, an expired deadline with a
    /// salvageable prefix reports [`Delivery::Partial`], and one with
    /// nothing contiguous reports [`Delivery::DeadlineExceeded`].
    /// Records the `v2x.partial.fraction` value distribution (per
    /// mille) for partial deliveries.
    fn deliver_verdict(&mut self, tx: &TransferCtx) -> Delivery {
        // Lazy window turnover for media driven outside a fleet loop;
        // the fleet calls `on_step_begin` which resets unconditionally.
        if self.window_step != Some(tx.step) {
            self.next_second();
            self.window_step = Some(tx.step);
        }
        let mut rng = StdRng::seed_from_u64(transfer_seed(self.seed, tx));
        let corruption_p = self.channel.config().corruption_probability;
        let Some(arq) = self.arq else {
            return match self.try_send(tx.wire_bytes, &mut rng) {
                Some(report) if report.complete => {
                    // Without ARQ there is no per-fragment salvage path:
                    // one damaged frame spoils the whole packet.
                    let (_, corrupted) = sample_corruption(corruption_p, report.frames, &mut rng);
                    if corrupted > 0 {
                        cooper_telemetry::counter_add(
                            telemetry_names::V2X_INTEGRITY_CORRUPTED_FRAMES,
                            corrupted,
                        );
                        Delivery::Corrupted
                    } else {
                        Delivery::Delivered
                    }
                }
                Some(_) | None => Delivery::Dropped,
            };
        };

        // Window admission: the transfer must fit the remaining air
        // time of this step's one-second window at least once.
        let needed = self.channel.airtime_for(tx.wire_bytes);
        {
            let used = self.airtime_used_s.lock();
            if *used + needed > WINDOW_S {
                cooper_telemetry::counter_add(telemetry_names::V2X_WINDOW_SATURATED, 1);
                return Delivery::Dropped;
            }
        }
        // The deadline cannot outlast the window that remains.
        let remaining_window = WINDOW_S - *self.airtime_used_s.lock();
        let deadline = self.deadline_s.min(remaining_window);
        let report = transmit_with_arq(&self.channel, tx.wire_bytes, deadline, &arq, &mut rng);
        if cooper_telemetry::is_tracing() {
            let trace = TraceId::new(tx.step, tx.from, tx.to);
            cooper_telemetry::trace_mark_with(
                trace,
                trace_stage::V2X_TRANSMIT,
                false,
                report.frames_sent as u64,
            );
            if report.retransmits > 0 {
                cooper_telemetry::trace_mark_with(
                    trace,
                    trace_stage::V2X_ARQ_RETRY,
                    false,
                    report.retransmits as u64,
                );
            }
        }
        // Spend the air time actually used (retransmissions included;
        // backoff waits cost no air time).
        let airtime_spent = report.bytes_on_air as f64 * 8.0
            / self.channel.config().data_rate.bits_per_second()
            + report.frames_sent as f64 * self.channel.config().per_frame_access_time;
        *self.airtime_used_s.lock() += airtime_spent;
        cooper_telemetry::counter_add(telemetry_names::V2X_FRAMES, report.frames_sent as u64);
        cooper_telemetry::counter_add(
            telemetry_names::V2X_FRAMES_LOST,
            (report.frames_sent - report.fragments_delivered.min(report.frames_sent)) as u64,
        );
        cooper_telemetry::counter_add(telemetry_names::V2X_TX_BYTES, report.bytes_on_air as u64);

        // Per-fragment FCS semantics: damage inside a delivered fragment
        // cuts the trustworthy contiguous prefix at the first damaged
        // frame — salvage then proceeds exactly as for a deadline-
        // truncated delivery. A damaged first fragment leaves nothing
        // usable at all.
        let delivered_frames = if report.complete {
            self.channel.frames_for(tx.wire_bytes)
        } else {
            report.contiguous_prefix
        };
        let (clean_prefix, corrupted) = sample_corruption(corruption_p, delivered_frames, &mut rng);
        if corrupted > 0 {
            cooper_telemetry::counter_add(
                telemetry_names::V2X_INTEGRITY_CORRUPTED_FRAMES,
                corrupted,
            );
        }
        if report.complete && corrupted == 0 {
            return Delivery::Delivered;
        }
        if clean_prefix == 0 {
            if corrupted > 0 {
                return Delivery::Corrupted;
            }
            return if report.deadline_exceeded {
                Delivery::DeadlineExceeded
            } else {
                Delivery::Dropped
            };
        }
        let delivered_bytes = (clean_prefix * self.channel.config().mtu).min(tx.wire_bytes);
        let verdict = Delivery::Partial {
            delivered_bytes,
            total_bytes: tx.wire_bytes,
        };
        if cooper_telemetry::is_enabled() {
            cooper_telemetry::record_value(
                telemetry_names::V2X_PARTIAL_FRACTION,
                (verdict.fraction() * 1000.0).round() as u64,
            );
        }
        verdict
    }

    /// Opens a fresh one-second air-time window for `step`,
    /// **unconditionally**. This is the authoritative window turnover:
    /// the lazy reset in [`ChannelModel::deliver_verdict`] only fires
    /// when the step *changes*, which wrongly carries air time across
    /// two runs that both start at step 0 on a reused medium.
    fn on_step_begin(&mut self, step: usize) {
        self.next_second();
        self.window_step = Some(step);
    }

    /// Air time the payload needs on the underlying DSRC channel —
    /// the bandwidth governor's size signal.
    fn airtime_for(&self, payload_bytes: usize) -> Option<f64> {
        Some(self.channel.airtime_for(payload_bytes))
    }

    fn airtime_headroom_s(&self) -> Option<f64> {
        Some(SharedMedium::airtime_headroom_s(self))
    }
}

/// The per-second record of one simulated exchange trace — the data
/// behind one line of Figure 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoiTrace {
    /// The ROI category simulated.
    pub category: RoiCategory,
    /// Total data volume placed on the air per second, Mbit.
    pub per_second_mbit: Vec<f64>,
    /// Peak channel utilization observed in any window (0–1+).
    pub peak_utilization: f64,
    /// Transfers that could not be sent because the window saturated.
    pub transfers_dropped: usize,
}

impl RoiTrace {
    /// The largest per-second volume, Mbit.
    pub fn peak_mbit(&self) -> f64 {
        self.per_second_mbit.iter().copied().fold(0.0, f64::max)
    }

    /// `true` when the whole trace fit in the channel.
    pub fn feasible(&self) -> bool {
        self.transfers_dropped == 0 && self.peak_utilization <= 1.0
    }
}

/// The exchange scheduler: applies an ROI category and a message rate
/// to a pair of cooperating vehicles.
#[derive(Debug, Clone)]
pub struct ExchangeScheduler {
    rate_hz: f64,
    category: RoiCategory,
}

impl ExchangeScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics when `rate_hz` is not positive and finite.
    pub fn new(rate_hz: f64, category: RoiCategory) -> Self {
        assert!(
            rate_hz > 0.0 && rate_hz.is_finite(),
            "exchange rate must be positive"
        );
        ExchangeScheduler { rate_hz, category }
    }

    /// The paper's operating point: 1 Hz.
    pub fn paper_default(category: RoiCategory) -> Self {
        ExchangeScheduler::new(1.0, category)
    }

    /// The message rate, Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// The ROI category applied before transmission.
    pub fn category(&self) -> RoiCategory {
        self.category
    }

    /// The wire size (bytes) of one vehicle's ROI-filtered frame.
    pub fn frame_wire_size(&self, scan: &PointCloud) -> usize {
        let roi = extract_roi(scan, self.category);
        let pose = PoseEstimate {
            gps: GpsFix::new(0.0, 0.0, 0.0),
            attitude: Attitude::level(),
        };
        ExchangePacket::build(0, 0, &roi, pose)
            .expect("sensor-frame cloud always encodes")
            .wire_size()
    }

    /// Simulates `per_second_scans.len()` seconds of exchange between
    /// two vehicles: each second both cars produce the given scans and
    /// exchange per the category's direction count at this scheduler's
    /// rate.
    ///
    /// Returns the Figure-12 trace.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        per_second_scans: &[(PointCloud, PointCloud)],
        medium: &SharedMedium,
        rng: &mut R,
    ) -> RoiTrace {
        let _span = cooper_telemetry::span!(telemetry_names::SPAN_V2X_SIMULATE);
        let mut per_second_mbit = Vec::with_capacity(per_second_scans.len());
        let mut peak_utilization = 0.0f64;
        let mut transfers_dropped = 0usize;
        // Sub-1 Hz rates send on every k-th second.
        let send_every = if self.rate_hz >= 1.0 {
            1
        } else {
            (1.0 / self.rate_hz).round() as usize
        };
        let sends_per_second = self.rate_hz.max(1.0).round() as usize;

        for (second, (scan_a, scan_b)) in per_second_scans.iter().enumerate() {
            medium.next_second();
            let mut bits = 0.0;
            if second % send_every == 0 {
                let directions: Vec<&PointCloud> = match self.category.transfers_per_pair() {
                    1 => vec![scan_b],
                    _ => vec![scan_a, scan_b],
                };
                for _ in 0..sends_per_second {
                    for scan in &directions {
                        let size = self.frame_wire_size(scan);
                        match medium.try_send(size, rng) {
                            Some(report) => bits += report.bytes_on_air as f64 * 8.0,
                            None => transfers_dropped += 1,
                        }
                    }
                }
            }
            peak_utilization = peak_utilization.max(medium.utilization());
            per_second_mbit.push(bits / 1e6);
        }
        RoiTrace {
            category: self.category,
            per_second_mbit,
            peak_utilization,
            transfers_dropped,
        }
    }
}

impl ChannelModel for ExchangeScheduler {
    /// Applies the scheduler's policy to one fleet transfer: sub-1 Hz
    /// rates deliver only on every k-th step (one step ≈ one second),
    /// and one-way ROI categories
    /// ([`RoiCategory::transfers_per_pair`] `== 1`) carry only the
    /// lower-id → higher-id direction of each pair.
    fn deliver(&mut self, tx: &TransferCtx) -> bool {
        let send_every = if self.rate_hz >= 1.0 {
            1
        } else {
            (1.0 / self.rate_hz).round() as usize
        };
        if !tx.step.is_multiple_of(send_every) {
            return false;
        }
        if self.category.transfers_per_pair() == 1 && tx.from > tx.to {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataRate, DsrcConfig};
    use cooper_geometry::Vec3;
    use cooper_pointcloud::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_scan(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let az = i as f64 / n as f64 * std::f64::consts::TAU - std::f64::consts::PI;
                Point::new(Vec3::new(15.0 * az.cos(), 15.0 * az.sin(), -1.0), 0.4)
            })
            .collect()
    }

    fn medium() -> SharedMedium {
        SharedMedium::new(DsrcChannel::new(DsrcConfig::default()))
    }

    #[test]
    fn roi_categories_order_data_volume() {
        let scans: Vec<(PointCloud, PointCloud)> = (0..8)
            .map(|_| (ring_scan(20_000), ring_scan(20_000)))
            .collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut peaks = Vec::new();
        for cat in RoiCategory::ALL {
            let trace = ExchangeScheduler::paper_default(cat).simulate(&scans, &medium(), &mut rng);
            assert_eq!(trace.per_second_mbit.len(), 8);
            peaks.push(trace.peak_mbit());
        }
        // Full frame ≥ 120° FoV ≥ one-way forward.
        assert!(peaks[0] >= peaks[1]);
        assert!(peaks[1] >= peaks[2]);
    }

    #[test]
    fn full_frame_volume_matches_paper_scale() {
        // ~30k-point scans → ~210 KB/frame → ~1.7 Mbit × 2 cars ≈ 3.4.
        let scans = vec![(ring_scan(30_000), ring_scan(30_000))];
        let mut rng = StdRng::seed_from_u64(0);
        let trace = ExchangeScheduler::paper_default(RoiCategory::FullFrame).simulate(
            &scans,
            &medium(),
            &mut rng,
        );
        let mbit = trace.per_second_mbit[0];
        assert!((2.5..5.0).contains(&mbit), "volume {mbit} Mbit");
        assert!(trace.feasible());
    }

    #[test]
    fn one_way_category_sends_single_direction() {
        let scans = vec![(ring_scan(10_000), ring_scan(10_000))];
        let mut rng = StdRng::seed_from_u64(0);
        let one_way = ExchangeScheduler::paper_default(RoiCategory::ForwardOneWay).simulate(
            &scans,
            &medium(),
            &mut rng,
        );
        let both = ExchangeScheduler::paper_default(RoiCategory::FrontFov120).simulate(
            &scans,
            &medium(),
            &mut rng,
        );
        assert!(one_way.per_second_mbit[0] < both.per_second_mbit[0]);
    }

    #[test]
    fn saturation_drops_transfers() {
        // A 3 Mbit/s channel cannot carry two full 30k-point frames at
        // 4 Hz.
        let slow = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        }));
        let scans = vec![(ring_scan(30_000), ring_scan(30_000))];
        let mut rng = StdRng::seed_from_u64(0);
        let trace =
            ExchangeScheduler::new(4.0, RoiCategory::FullFrame).simulate(&scans, &slow, &mut rng);
        assert!(trace.transfers_dropped > 0);
        assert!(!trace.feasible());
    }

    #[test]
    fn sub_hertz_rate_skips_seconds() {
        let scans: Vec<(PointCloud, PointCloud)> = (0..4)
            .map(|_| (ring_scan(5_000), ring_scan(5_000)))
            .collect();
        let mut rng = StdRng::seed_from_u64(0);
        let trace = ExchangeScheduler::new(0.5, RoiCategory::FullFrame).simulate(
            &scans,
            &medium(),
            &mut rng,
        );
        assert!(trace.per_second_mbit[0] > 0.0);
        assert_eq!(trace.per_second_mbit[1], 0.0);
        assert!(trace.per_second_mbit[2] > 0.0);
        assert_eq!(trace.per_second_mbit[3], 0.0);
    }

    #[test]
    fn medium_window_resets() {
        let m = medium();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.try_send(100_000, &mut rng).is_some());
        assert!(m.utilization() > 0.0);
        m.next_second();
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ExchangeScheduler::new(0.0, RoiCategory::FullFrame);
    }

    #[test]
    fn utilization_is_a_window_fraction_not_seconds() {
        // Pins the semantics the name promises: utilization is the
        // consumed fraction of the accounting window, airtime_used_s is
        // the raw seconds, and the two relate through WINDOW_S.
        let m = medium();
        let mut rng = StdRng::seed_from_u64(0);
        let payload = 150_000;
        m.try_send(payload, &mut rng).unwrap();
        let spent_s = m.channel().airtime_for(payload);
        assert!((m.airtime_used_s() - spent_s).abs() < 1e-12);
        assert!((m.utilization() - spent_s / WINDOW_S).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&m.utilization()));
        assert!((m.airtime_headroom_s() - (WINDOW_S - spent_s)).abs() < 1e-12);
        m.next_second();
        assert_eq!(m.utilization(), 0.0);
        assert!((m.airtime_headroom_s() - WINDOW_S).abs() < 1e-12);
    }

    #[test]
    fn channel_model_airtime_hooks_report_medium_state() {
        use cooper_core::ChannelModel as _;
        let mut m = medium();
        let cost = ChannelModel::airtime_for(&m, 100_000).unwrap();
        assert!((cost - m.channel().airtime_for(100_000)).abs() < 1e-12);
        m.on_step_begin(0);
        assert!((ChannelModel::airtime_headroom_s(&m).unwrap() - WINDOW_S).abs() < 1e-12);
        assert!(m.deliver(&tx(0, 1, 2, 100_000)));
        let left = ChannelModel::airtime_headroom_s(&m).unwrap();
        assert!(left < WINDOW_S && left > 0.0);
    }

    fn tx(step: usize, from: u32, to: u32, bytes: usize) -> TransferCtx {
        TransferCtx {
            step,
            from,
            to,
            wire_bytes: bytes,
        }
    }

    #[test]
    fn shared_medium_channel_model_saturates_within_a_step() {
        // A 3 Mbit/s window holds well under 375 KB of payload: the
        // third 150 KB transfer of the same step must be refused, and a
        // new step must open a fresh window.
        let mut m = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        }))
        .with_seed(7);
        assert!(m.deliver(&tx(0, 1, 2, 150_000)));
        assert!(m.deliver(&tx(0, 2, 1, 150_000)));
        assert!(!m.deliver(&tx(0, 3, 1, 150_000)), "window saturated");
        assert!(m.deliver(&tx(1, 3, 1, 150_000)), "new step, new window");
    }

    #[test]
    fn window_resets_across_reused_runs_regression() {
        // Regression: the lazy reset in `deliver_verdict` only fires
        // when the step *changes*. A medium reused for a second run
        // that also starts at step 0 used to inherit the first run's
        // air time. `on_step_begin` (which the fleet loop calls every
        // step) must reset unconditionally.
        let mut m = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        }))
        .with_seed(7);
        // Run 1 saturates step 0's window.
        m.on_step_begin(0);
        assert!(m.deliver(&tx(0, 1, 2, 150_000)));
        assert!(m.deliver(&tx(0, 2, 1, 150_000)));
        assert!(!m.deliver(&tx(0, 3, 1, 150_000)), "window saturated");
        assert!(m.utilization() > 0.5);
        // Run 2 starts at step 0 again: a fresh window must open.
        m.on_step_begin(0);
        assert_eq!(m.utilization(), 0.0, "stale air time carried over");
        assert!(m.deliver(&tx(0, 1, 2, 150_000)), "fresh window delivers");
    }

    #[test]
    fn arq_medium_recovers_frame_loss() {
        // 10% iid frame loss kills most ~100-frame transfers outright;
        // with ARQ the same transfer completes.
        let lossy = || {
            DsrcChannel::new(DsrcConfig {
                loss_probability: 0.1,
                ..DsrcConfig::default()
            })
        };
        let mut plain = SharedMedium::new(lossy()).with_seed(5);
        let mut arq = SharedMedium::new(lossy())
            .with_seed(5)
            .with_arq(ArqConfig::default());
        let t = tx(0, 1, 2, 150_000);
        assert_eq!(plain.deliver_verdict(&t), Delivery::Dropped);
        assert_eq!(arq.deliver_verdict(&t), Delivery::Delivered);
    }

    #[test]
    fn arq_medium_salvages_partial_on_tight_deadline() {
        // 200 KB at 3 Mbit/s needs ~0.55 s of air time; a 0.2 s
        // deadline (5 Hz exchange) cuts the transfer mid-flight. The
        // contiguous prefix that did arrive is reported for salvage.
        let mut m = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        }))
        .with_seed(5)
        .with_arq(ArqConfig::default())
        .with_rate_hz(5.0);
        match m.deliver_verdict(&tx(0, 1, 2, 200_000)) {
            Delivery::Partial {
                delivered_bytes,
                total_bytes,
            } => {
                assert_eq!(total_bytes, 200_000);
                assert!(delivered_bytes > 0 && delivered_bytes < total_bytes);
            }
            other => panic!("expected partial delivery, got {other:?}"),
        }
    }

    #[test]
    fn shared_medium_delivery_is_per_transfer_deterministic() {
        let outcome = |order_flipped: bool| {
            let mut m = SharedMedium::new(DsrcChannel::new(DsrcConfig::default())).with_seed(3);
            let (a, b) = (tx(0, 1, 2, 120_000), tx(0, 2, 1, 120_000));
            if order_flipped {
                let rb = m.deliver(&b);
                (m.deliver(&a), rb)
            } else {
                (m.deliver(&a), m.deliver(&b))
            }
        };
        // Same per-transfer outcome whichever transfer asks first (the
        // windows are large enough that neither order saturates).
        assert_eq!(outcome(false), outcome(true));
    }

    #[test]
    fn scheduler_channel_model_gates_rate_and_direction() {
        let mut half_hz = ExchangeScheduler::new(0.5, RoiCategory::FullFrame);
        assert!(half_hz.deliver(&tx(0, 1, 2, 1000)));
        assert!(!half_hz.deliver(&tx(1, 1, 2, 1000)), "off-step at 0.5 Hz");
        assert!(half_hz.deliver(&tx(2, 1, 2, 1000)));

        let mut one_way = ExchangeScheduler::paper_default(RoiCategory::ForwardOneWay);
        assert!(one_way.deliver(&tx(0, 1, 2, 1000)));
        assert!(!one_way.deliver(&tx(0, 2, 1, 1000)), "reverse direction");

        let mut two_way = ExchangeScheduler::paper_default(RoiCategory::FrontFov120);
        assert!(two_way.deliver(&tx(0, 2, 1, 1000)));
    }
}
